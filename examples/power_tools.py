"""Power tools: Datalog views, the plan optimizer, the query builder, and
persisted navigation maps.

Run:  python examples/power_tools.py

Everything beyond the core paper pipeline that a webbase operator would
reach for day to day.
"""

from repro import QueryBuilder, WebBase
from repro.logical.datalog import define_datalog_views
from repro.logical.schema import LogicalSchema
from repro.navigation.serialize import dumps, loads
from repro.relational.algebra import Base, Join, Select
from repro.relational.conditions import Attr, Comparison, Const, conj, eq
from repro.relational.optimize import optimize


def main() -> None:
    webbase = WebBase.create()

    print("=== 1. Datalog views over the VPS ===")
    logical = LogicalSchema(webbase.vps)
    define_datalog_views(
        logical,
        """
        % Bargain hunting as a Datalog view: newsday ads joined with the
        % blue book.  Atom arguments are positional, following each VPS
        % relation's schema order:
        %   newsday(contact, make, model, price, url, year)
        %   kellys(bb_price, condition, make, model, year)
        bargains(Make, Model, Year, Price, Bb) :-
            newsday(Contact, Make, Model, Price, Url, Year),
            kellys(Bb, 'good', Make, Model, Year).
        """,
    )
    relation = logical.relation("bargains")
    print("view schema:", tuple(relation.schema))
    print("view bindings:", [sorted(m) for m in relation.binding_sets])
    result = logical.fetch("bargains", {"make": "jaguar"})
    print(result.pretty(limit=5))

    print("\n=== 2. The algebraic optimizer at work ===")
    expr = Select(
        Join(Base("classifieds"), Base("blue_price")),
        conj(
            eq("make", "jaguar"),
            eq("condition", "good"),
            Comparison(Attr("year"), ">=", Const(1996)),
            Comparison(Attr("price"), "<", Attr("bb_price")),
        ),
    )
    optimized = optimize(expr, webbase.logical)
    print("rewrites:")
    print(optimized.explain())

    print("\n=== 3. Building a query through the concept hierarchy ===")
    builder = QueryBuilder(webbase.ur)
    print("top-level concepts:", builder.concepts())
    print("under 'Value':", builder.attributes_of("Value"))
    result = (
        builder.select("Car", "price", "bb_price")
        .where("make", "=", "jaguar")
        .where("condition", "=", "good")
        .where("price", "<", "@bb_price")
        .run()
    )
    print(result.pretty(limit=5))

    print("\n=== 4. Persisting navigation maps ===")
    original = webbase.builders["www.newsday.com"].map
    blob = dumps(original)
    restored = loads(blob)
    print(
        "serialized %d bytes; restored map: %d nodes, %d edges (identical: %s)"
        % (
            len(blob),
            len(restored.nodes),
            len(restored.edges),
            restored.edges == original.edges,
        )
    )

    print("\n=== 5. Multiple handles (alternative access forms) ===")
    relation = webbase.vps.relation("usedcarmart")
    for handle in relation.handles:
        print(
            "  handle mandatory=%s -> goal %s"
            % (sorted(handle.mandatory), handle.goal)
        )
    print(
        "by make: %d tuples; by zip: %d tuples"
        % (
            len(webbase.fetch_vps("usedcarmart", {"make": "ford"})),
            len(webbase.fetch_vps("usedcarmart", {"zip": "10001"})),
        )
    )


if __name__ == "__main__":
    main()
