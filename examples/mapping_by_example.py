"""Mapping by example: watch a navigation map grow as a designer browses.

Run:  python examples/mapping_by_example.py

Recreates Section 7's map-builder session for the Newsday site, narrating
each browsing step and the map state after it — then compiles the map into
Transaction F-logic navigation expressions and executes them.
"""

from repro.navigation.builder import MapBuilder
from repro.navigation.compiler import compile_map
from repro.navigation.executor import NavigationExecutor
from repro.sites.world import build_world
from repro.web.browser import Browser


def show(step: str, builder: MapBuilder) -> None:
    print("\n>>> %s" % step)
    print(
        "    map now: %d nodes, %d edges"
        % (len(builder.map.nodes), len(builder.map.edges))
    )


def main() -> None:
    world = build_world()
    browser = Browser(world.server)
    builder = MapBuilder("www.newsday.com")
    browser.subscribe(builder)  # the JavaScript-event-capture stand-in

    browser.get("http://www.newsday.com/")
    show("designer opens the Newsday front page", builder)

    browser.follow_named("Auto")
    show("designer follows link(auto) to the used-car section", builder)

    browser.submit_by_attribute({"make": "ford"})
    show("designer fills form f1 with make=ford -> too many ads, form f2 appears", builder)

    page = browser.submit_by_attribute({"model": "escort"})
    show("designer refines with model=escort -> a data page", builder)

    row = page.tables()[0][1]
    builder.mark_data_page(
        "newsday",
        {
            "make": row[0],
            "model": row[1],
            "year": row[2],
            "price": row[3],
            "contact": row[4],
            "url": str(page.link_named("Car Features").address),
        },
    )
    show("designer points at one example tuple -> wrapper induced", builder)

    browser.get("http://www.newsday.com/classified/cars")
    browser.submit_by_attribute({"make": "saab"})
    show("designer tries make=saab -> few ads, data page directly (the other branch)", builder)

    while browser.page.has_link_named("More"):
        browser.follow_named("More")
    show("designer clicks More to the end -> the pagination self-loop", builder)

    detail = browser.follow(
        next(l for l in browser.page.links if l.name == "Car Features")
    )
    dds = [dd.text() for dd in detail.dom.find_all("dd")]
    builder.mark_data_page("newsday_car_features", {"features": dds[0], "picture": dds[1]})
    show("designer opens a Car Features page and marks the detail relation", builder)

    print("\n=== the finished navigation map (Figure 2) ===")
    print(builder.map.summary())

    report = builder.automation_report()
    print(
        "\nAutomation: %d objects, %d attribute facts extracted automatically;"
        "\n%d facts supplied manually (%.1f%% of the map)."
        % (report.objects, report.attributes, report.manual_facts, report.manual_ratio * 100)
    )

    print("\n=== compiled navigation expressions (Figure 4) ===")
    site = compile_map(builder.map)
    print(site.program.pretty())

    print("\n=== executing them ===")
    executor = NavigationExecutor(world.server)
    executor.add_site(site)
    rows = executor.fetch("newsday", {"make": "jaguar"})
    print("newsday[make=jaguar] -> %d tuples; first: %r" % (len(rows), rows[0]))
    detail_rows = executor.fetch("newsday_car_features", {"url": rows[0]["url"]})
    print("its features page -> %r" % (detail_rows[0],))


if __name__ == "__main__":
    main()
