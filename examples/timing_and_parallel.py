"""The Section 7 evaluation, reproduced: per-site timings and the case for
parallel query evaluation.

Run:  python examples/timing_and_parallel.py

Runs ``SELECT make, model, year, price WHERE make=ford AND model=escort``
against all ten timing-table sites, printing pages navigated, cpu and
elapsed time per site — then repeats the sweep with one worker per site
and compares elapsed times, and shows what the VPS result cache does for
repeated queries.
"""

from repro.core.parallel import parallel_site_query, sequential_site_query
from repro.core.stats import format_timing_table, site_query_timings
from repro.core.webbase import WebBase


def main() -> None:
    webbase = WebBase.build(caching=True)

    print("Per-site query: SELECT make,model,year,price WHERE make=ford AND model=escort\n")
    timings = site_query_timings(webbase)
    print(format_timing_table(timings))
    print(
        "\n(elapsed = measured cpu + simulated network seconds;"
        "\n the cpu-vs-elapsed gap is the paper's: fetching dominates)"
    )

    print("\n--- sequential vs parallel (the paper's conclusion) ---")
    sequential = sequential_site_query(webbase)
    parallel = parallel_site_query(webbase)
    print("sequential elapsed: %6.2fs" % sequential.sequential_elapsed)
    print("parallel elapsed:   %6.2fs   (%.1fx speedup, 10 workers)" % (
        parallel.parallel_elapsed,
        parallel.sequential_elapsed / parallel.parallel_elapsed,
    ))

    print("\n--- the cache (repeat shopper) ---")
    query = "SELECT make, model, price WHERE make = 'jaguar'"
    webbase.query(query)
    before = webbase.cache.stats
    webbase.query(query)
    after = webbase.cache.stats
    print("first run:  %s" % before)
    print("second run: %s  (no new misses: every fetch served locally)" % after)


if __name__ == "__main__":
    main()
