"""The Section 7 evaluation, reproduced: per-site timings and the case for
parallel query evaluation.

Run:  python examples/timing_and_parallel.py

Runs ``SELECT make, model, year, price WHERE make=ford AND model=escort``
against all ten timing-table sites, printing pages navigated, cpu and
elapsed time per site — then repeats the sweep through the parallel
execution engine (one worker per site) and compares elapsed times, shows
what the VPS result cache does for repeated queries, and renders one
query's structured trace.
"""

from repro.core.execution import WebBaseConfig
from repro.core.parallel import parallel_site_query, sequential_site_query
from repro.core.stats import format_timing_table, site_query_timings
from repro.core.webbase import WebBase
from repro.vps.cache import CachePolicy


def main() -> None:
    webbase = WebBase.create(
        WebBaseConfig(cache=CachePolicy.lru(), max_workers=10)
    )

    print("Per-site query: SELECT make,model,year,price WHERE make=ford AND model=escort\n")
    timings = site_query_timings(webbase)
    print(format_timing_table(timings))
    print(
        "\n(elapsed = measured cpu + simulated network seconds;"
        "\n the cpu-vs-elapsed gap is the paper's: fetching dominates)"
    )

    print("\n--- sequential vs parallel (the paper's conclusion) ---")
    sequential = sequential_site_query(webbase)
    parallel = parallel_site_query(webbase)
    print("sequential elapsed: %6.2fs" % sequential.sequential_elapsed)
    print("parallel elapsed:   %6.2fs   (%.1fx speedup, 10 workers)" % (
        parallel.parallel_elapsed,
        parallel.speedup,
    ))

    print("\n--- the cache (repeat shopper) ---")
    query = "SELECT make, model, price WHERE make = 'jaguar'"
    webbase.query(query)
    before = webbase.cache.stats
    webbase.query(query)
    after = webbase.cache.stats
    print("first run:  %s" % before)
    print("second run: %s  (no new misses: every fetch served locally)" % after)

    print("\n--- one query, traced through the engine ---")
    ctx = webbase.execution_context(label="example")
    webbase.query("SELECT make, model, price WHERE make = 'saab'", context=ctx)
    print(ctx.root.render())
    print(
        "\nelapsed %.2fs with %d workers (sequential would be %.2fs)"
        % (ctx.elapsed_seconds, ctx.max_workers, ctx.sequential_elapsed_seconds)
    )


if __name__ == "__main__":
    main()
