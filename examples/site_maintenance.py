"""Map maintenance: detecting and absorbing site changes.

Run:  python examples/site_maintenance.py

Recreates the paper's maintenance scenario ("in Kelley's Blue Book new
links with information about 1999 cars have been added ... we only had to
navigate through the modified pages"): the Newsday site changes in three
ways, and the maintenance checker classifies each change as automatically
absorbable or needing the designer.
"""

from repro.core.sessions import map_newsday
from repro.navigation.maintenance import apply_auto_changes, check_site
from repro.sites.world import build_world
from repro.web import html as H
from repro.web.browser import Browser


def main() -> None:
    world = build_world()
    print("Mapping www.newsday.com by example...")
    builder = map_newsday(world)

    print("\n--- check 1: nothing changed ---")
    report = check_site(builder.map, Browser(world.server))
    print(report.summary())

    print("\n--- the site changes: new make in the selection list,")
    print("--- a brand-new 'Max Price' form field, a new front-page link ---")
    site = world.server.site("www.newsday.com")

    def new_search_page(request):
        form = H.form(
            "/cgi-bin/nclassy",
            H.labeled("Make", H.select("make", ["ford", "jaguar", "delorean"])),
            H.labeled("Max Price", H.text_input("maxprice")),
            H.submit_button("Search"),
            method="post",
        )
        return H.page("Newsday Classifieds Search", form)

    def new_front_page(request):
        return H.page(
            "Newsday Classifieds",
            H.bullet_links(
                [
                    ("Auto", "/classified/cars"),
                    ("New Car Dealer", "/classified/dealers"),
                    ("Collectible Cars", "/classified/collectibles"),
                    ("Sport Utility", "/classified/suv"),
                    ("Boats", "/classified/boats"),
                ]
            ),
        )

    site.route("/classified/cars", new_search_page)
    site.route("/", new_front_page)

    print("\n--- check 2: the divergence report ---")
    report = check_site(builder.map, Browser(world.server))
    print(report.summary())

    print("\n--- absorbing the automatic changes ---")
    applied = apply_auto_changes(builder.map, report, Browser(world.server))
    print("applied %d automatic update(s)" % applied)
    search_node = next(
        n for n in builder.map.nodes.values() if n.signature.path == "/classified/cars"
    )
    form = next(iter(search_node.forms.values()))
    print("make domain is now:", form.widget_for_attr("make").domain)
    print(
        "\nThe new form attribute and the new link remain flagged for the"
        "\ndesigner — re-demonstrating that flow takes a minute of browsing."
    )


if __name__ == "__main__":
    main()
