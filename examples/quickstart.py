"""Quickstart: build a webbase and query it like a Web shopper.

Run:  python examples/quickstart.py

Builds the simulated car-domain Web (twelve sites), maps every site by
example, assembles the three layers, and answers ad-hoc queries against
the universal relation — no joins written by the user, ever.
"""

from repro import WebBase


def main() -> None:
    print("Assembling the webbase (mapping 12 sites by example)...")
    webbase = WebBase.create()

    print("\n=== The three layers ===")
    print(webbase.vps_summary())
    print()
    print(webbase.logical_summary())
    print()
    print("Universal relation attributes:", ", ".join(webbase.ur.attributes))

    print("\n=== Ad-hoc query #1: cheap Ford Escorts ===")
    query = (
        "SELECT make, model, year, price, contact "
        "WHERE make = 'ford' AND model = 'escort' AND price < 5000"
    )
    print(query)
    print(webbase.query(query).pretty())

    print("\n=== Ad-hoc query #2: what's my Civic worth? ===")
    query = (
        "SELECT make, model, year, condition, bb_price "
        "WHERE make = 'honda' AND model = 'civic' AND condition = 'good' "
        "AND year >= 1996"
    )
    print(query)
    print(webbase.query(query).pretty())

    print("\n=== How the system answered: the plan ===")
    plan = webbase.plan(
        "SELECT make, model, price, safety WHERE make = 'toyota' AND year >= 1995"
    )
    print(plan.describe())


if __name__ == "__main__":
    main()
