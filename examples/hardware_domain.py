"""The computer-equipment webbase (the paper's other named domain).

Run:  python examples/hardware_domain.py

Two mail-order vendors with different vocabularies ("category/brand" vs
"type/maker") and a hardware-review site, mapped by example and queried
through a HardwareUR: *laptops under $2,500 with a rating of 4 or
better*, prices and ratings joined across sites.
"""

from repro.domains.hardware import HardwareWebBase


def main() -> None:
    print("Assembling the computer-equipment webbase...")
    hardware = HardwareWebBase()

    print("\nVPS relations:")
    for name in hardware.vps.relation_names:
        relation = hardware.vps.relation(name)
        print("  %-10s(%s)" % (name, ", ".join(relation.schema)))

    query = (
        "SELECT brand, model, price, rating "
        "WHERE category = 'laptop' AND price < 2500 AND rating >= 4"
    )
    print("\nThe shopper's question:\n  %s\n" % query)
    print(hardware.plan(query).describe())
    result = hardware.query(query)
    print(result.pretty())
    print("\n%d well-reviewed bargain laptops across both vendors." % len(result))


if __name__ == "__main__":
    main()
