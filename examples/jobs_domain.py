"""A second application domain on the same framework: job hunting.

Run:  python examples/jobs_domain.py

The paper expects webbases to be built per application domain ("cars,
jobs, houses") by domain experts.  This example is the jobs webbase: two
job boards with different vocabularies plus a salary survey, mapped by
example and queried through a JobsUR — with the flagship cross-site
question no single 1999 job board could answer: *which New York postings
pay above the market median?*
"""

from repro.domains.jobs import JobsWebBase


def main() -> None:
    print("Assembling the jobs webbase (3 sites, mapped by example)...")
    jobs = JobsWebBase()

    print("\nVPS relations (site vocabularies intact):")
    for name in jobs.vps.relation_names:
        relation = jobs.vps.relation(name)
        print(
            "  %-12s(%s)  mandatory=%s"
            % (
                name,
                ", ".join(relation.schema),
                [sorted(h.mandatory) for h in relation.handles],
            )
        )

    print("\nLogical relations (vocabularies unified):")
    for name in jobs.logical.relation_names:
        print("  %-10s(%s)" % (name, ", ".join(jobs.logical.relation(name).schema)))

    query = (
        "SELECT title, city, company, salary, median_salary "
        "WHERE title = 'software engineer' AND city = 'new york' "
        "AND salary > median_salary"
    )
    print("\nThe job hunter's question:\n  %s" % query)
    print("\n%s" % jobs.plan(query).describe())
    result = jobs.query(query)
    print(result.pretty())
    print("\n%d above-median offers, drawn from both boards." % len(result))


if __name__ == "__main__":
    main()
