"""The paper's running example (Example 2.1): shopping for a used Jaguar.

Run:  python examples/jaguar_shopping.py

"Make a list of used Jaguars advertised in New York City area sites, such
that each car is a 1993 or later model, has good safety ratings, and its
selling price is less than its Blue Book value."

The script shows every level of the answer: the UR query a shopper types,
the maximal objects the planner derives, the join orders that satisfy the
mandatory-attribute bindings, the navigation expressions that ultimately
run against the raw Web, and the final bargain list.
"""

from repro import WebBase


JAGUAR_QUERY = (
    "SELECT make, model, year, price, bb_price, safety, contact "
    "WHERE make = 'jaguar' AND year >= 1993 AND condition = 'good' "
    "AND safety IN ('good', 'excellent') AND price < bb_price"
)


def main() -> None:
    webbase = WebBase.create()

    print("The shopper's query (no joins, no site names):\n")
    print("  " + JAGUAR_QUERY)

    print("\n--- external schema: planning over the universal relation ---")
    plan = webbase.plan(JAGUAR_QUERY)
    print(plan.describe())
    print(
        "\nEach maximal object is a join ordered so that every relation's\n"
        "mandatory attributes are bound when its turn comes (blue_price\n"
        "needs make+model+condition; model is fed from the ads relation)."
    )

    print("\n--- virtual physical schema: what actually runs ---")
    print("The compiled navigation expression for the newsday relation:\n")
    print(webbase.navigation_expression("newsday"))

    print("\n--- the answer ---")
    result = webbase.query(JAGUAR_QUERY)
    print(result.pretty(limit=15))
    print("\n%d Jaguars priced under blue book." % len(result))

    pages = sum(s.pages_ok for s in webbase.world.server.stats.values())
    network = webbase.executor.browser.clock.network_seconds
    print(
        "Work done against the raw Web: %d pages fetched, %.1fs simulated network time."
        % (pages, network)
    )


if __name__ == "__main__":
    main()
