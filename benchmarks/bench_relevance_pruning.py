"""Runtime relevance pruning + slow-host isolation (the resilience layer).

Two claims, one per test:

1. **Pruning.** Speculative dependent-join probes launch against the
   candidate bindings of the outer's leftmost base before the full outer
   finishes.  When outer partitions empty mid-flight (here: the
   ``year >= 1997`` filter disproves most ``(make, model, year)``
   candidates), the join revokes the affected probes.  Acceptance: with
   the probe stagger calibrated so revocation can land, at least 30% of
   the issued probes are cancelled before completing — with byte-identical
   answer rows versus the pruning-off baseline.  (The cancelled count is
   the one race-dependent number in this file: it depends on how far each
   probe got before the outer finished, so the committed JSON records a
   representative run, and the assertions gate the fresh run.)

2. **Isolation.** One host is degraded with latency spikes
   (``FaultPlan(spike_rate=1.0, hosts=(slow,))``).  The slow-call breaker
   trips on it, quarantines it in the result cache (``serve_stale``
   degrades its answers to flagged-stale instead of stalling the pool),
   and the bulkhead caps its worker-slot share.  Acceptance: the other
   hosts' fetch p95 stays within 1.5× the healthy baseline, and the
   steady-state workload elapsed (passes after the breaker opened) drops
   back to within 1.5× of healthy — while the same faults with resilience
   off keep paying the spike on every pass.

Results land in ``BENCH_relevance_pruning.json`` (see ``emit.py``).
"""

from __future__ import annotations

import emit

from repro.core.execution import WebBaseConfig
from repro.core.parallel import cached_site_query
from repro.core.resilience import ResiliencePolicy
from repro.core.webbase import WebBase
from repro.vps.cache import CachePolicy
from repro.web.server import FaultPlan

SEED = 1999
ADS_PER_HOST = 60

#: The 3-way bargain query: classifieds ⋈ bluebook, with the year filter
#: living *above* the leftmost base — so probe candidates (every listed
#: ``(make, model, year)``) are a strict superset of the surviving outer
#: partitions, and the join has something real to revoke.
PRUNING_QUERY = (
    "SELECT make, model, year, price, bb_price "
    "WHERE make = 'toyota' AND year >= 1997 AND condition = 'good' "
    "AND price < bb_price"
)

PRUNE_TARGET = 0.30
#: Stagger ladder for self-calibration: a longer stagger keeps more
#: probes pending when the outer finishes, so revocation can land.
STAGGERS = (0.3, 0.6, 1.2, 2.4)

SLOW_HOST = "www.newsday.com"
SPIKE_SECONDS = 6.0
PASSES = 5
ISOLATION_HEADROOM = 1.5


def _pruning_run(policy: ResiliencePolicy) -> dict:
    webbase = WebBase.create(
        WebBaseConfig(seed=SEED, ads_per_host=ADS_PER_HOST, resilience=policy)
    )
    rows = sorted(webbase.query(PRUNING_QUERY).rows)
    counters = webbase.metrics.snapshot()["counters"]
    return {
        "rows": rows,
        "issued": int(counters.get("resilience.speculated", 0)),
        "cancelled": int(counters.get("resilience.cancelled", 0)),
        "pruned": int(counters.get("planner.pruned_probes", 0)),
        "reclaimed_pages": int(counters.get("resilience.reclaimed_pages", 0)),
    }


def test_relevance_pruning():
    baseline = _pruning_run(ResiliencePolicy.off())
    run = None
    stagger_used = None
    for stagger in STAGGERS:
        run = _pruning_run(
            ResiliencePolicy(
                speculate_probes=True,
                prune=True,
                speculate_stagger_seconds=stagger,
            )
        )
        stagger_used = stagger
        assert run["rows"] == baseline["rows"]  # every calibration step
        if run["issued"] and run["cancelled"] / run["issued"] >= PRUNE_TARGET:
            break
    assert run is not None and run["issued"] > 0
    ratio = run["cancelled"] / run["issued"]

    print("\nRuntime relevance pruning — %s" % PRUNING_QUERY)
    print(
        "  stagger %.1fs: %d probe(s) issued, %d cancelled (%.0f%%), "
        "%d pruned by the join, ~%d page(s) reclaimed"
        % (
            stagger_used,
            run["issued"],
            run["cancelled"],
            100 * ratio,
            run["pruned"],
            run["reclaimed_pages"],
        )
    )
    print("  %d answer row(s), byte-identical to the pruning-off baseline"
          % len(run["rows"]))

    assert ratio >= PRUNE_TARGET, (
        "pruning cancelled only %.0f%% of issued probes (target %.0f%%)"
        % (100 * ratio, 100 * PRUNE_TARGET)
    )

    emit.emit(
        "relevance_pruning",
        {
            "benchmark": "relevance_pruning",
            "query": PRUNING_QUERY,
            "ads_per_host": ADS_PER_HOST,
            "rows": len(run["rows"]),
            "rows_match_baseline": run["rows"] == baseline["rows"],
            "stagger_seconds": stagger_used,
            "probes_issued": run["issued"],
            "probes_cancelled": run["cancelled"],
            "cancel_ratio": round(ratio, 2),
            "pages_reclaimed": run["reclaimed_pages"],
        },
    )


def _isolation_run(faults: FaultPlan | None, policy: ResiliencePolicy) -> dict:
    webbase = WebBase.create(
        WebBaseConfig(
            seed=SEED,
            ads_per_host=24,
            faults=faults,
            # TTL 0 forces live fetches every pass (so the breaker keeps
            # seeing the slow host); serve_stale lets the quarantine
            # degrade the slow host to flagged-stale answers.
            cache=CachePolicy.lru(ttl_seconds=0.0, stale_mode="serve_stale"),
            resilience=policy,
        )
    )
    elapsed: list[float] = []
    other_seconds: list[float] = []
    slow_seconds: list[float] = []
    for run in range(PASSES):
        outcome = cached_site_query(webbase, label="isolation-pass-%d" % (run + 1))
        ctx = outcome.context
        elapsed.append(ctx.elapsed_seconds)
        for span in ctx.root.spans("fetch"):
            if span.cache == "hit" or span.cache == "stale":
                continue
            bucket = (
                slow_seconds
                if span.attrs.get("host", "") == SLOW_HOST
                else other_seconds
            )
            bucket.append(span.network_seconds)
    counters = webbase.metrics.snapshot()["counters"]
    return {
        "elapsed": elapsed,
        "steady_elapsed": sum(elapsed[2:]) / len(elapsed[2:]),
        "other_p95": _p95(other_seconds),
        "slow_p95": _p95(slow_seconds) if slow_seconds else 0.0,
        "breaker_opened": int(counters.get("resilience.breaker_opened", 0)),
        "stale_serves": int(counters.get("cache.stale_serves", 0)),
        "quarantined": sorted(webbase.cache.quarantined_hosts()),
    }


def _p95(values: list[float]) -> float:
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, int(0.95 * len(ordered)))]


def test_slow_host_isolation():
    spikes = FaultPlan(
        seed=7, spike_rate=1.0, spike_seconds=SPIKE_SECONDS, hosts=(SLOW_HOST,)
    )
    guarded_policy = ResiliencePolicy(
        failure_threshold=2, slow_seconds=10.0, bulkhead_per_host=2
    )
    healthy = _isolation_run(None, guarded_policy)
    guarded = _isolation_run(spikes, guarded_policy)
    unguarded = _isolation_run(spikes, ResiliencePolicy.off())

    print("\nSlow-host isolation — %s spiked +%.0fs/page for %d passes"
          % (SLOW_HOST, SPIKE_SECONDS, PASSES))
    for name, run in (("healthy", healthy), ("guarded", guarded),
                      ("unguarded", unguarded)):
        print(
            "  %-9s other-host p95 %.2fs, slow-host p95 %.2fs, "
            "steady elapsed %.2fs, breaker opened %d, stale serves %d"
            % (
                name,
                run["other_p95"],
                run["slow_p95"],
                run["steady_elapsed"],
                run["breaker_opened"],
                run["stale_serves"],
            )
        )

    # The breaker saw the slow host and quarantined it.
    assert guarded["breaker_opened"] >= 1
    assert SLOW_HOST in guarded["quarantined"]
    assert guarded["stale_serves"] > 0  # quarantine degraded to flagged-stale
    # Other hosts' fetch latency is unaffected by the degraded host.
    assert guarded["other_p95"] <= ISOLATION_HEADROOM * healthy["other_p95"]
    # Steady state (after the trip) recovers to the healthy envelope —
    # while the unguarded run keeps paying the spike on every pass.
    assert guarded["steady_elapsed"] <= ISOLATION_HEADROOM * healthy["steady_elapsed"]
    assert unguarded["steady_elapsed"] > ISOLATION_HEADROOM * healthy["steady_elapsed"]

    emit.emit(
        "slow_host_isolation",
        {
            "benchmark": "slow_host_isolation",
            "slow_host": SLOW_HOST,
            "spike_seconds": SPIKE_SECONDS,
            "passes": PASSES,
            "healthy_other_p95": round(healthy["other_p95"], 3),
            "guarded_other_p95": round(guarded["other_p95"], 3),
            # Elapsed includes measured cpu seconds, so round to one
            # decimal to keep the committed artifact byte-stable.
            "healthy_steady_elapsed": round(healthy["steady_elapsed"], 1),
            "guarded_steady_elapsed": round(guarded["steady_elapsed"], 1),
            "unguarded_steady_elapsed": round(unguarded["steady_elapsed"], 1),
            "breaker_opened": guarded["breaker_opened"],
            "stale_serves": guarded["stale_serves"],
        },
    )
