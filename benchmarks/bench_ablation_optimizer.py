"""Ablation A4 — algebraic optimization of composed queries.

Section 1: after user queries are composed with navigation expressions,
"the entire query can be optimized using techniques that are akin to
relational algebra transformations".  The payoff on a webbase is measured
in *fetches*: pushing a selection into the outer side of a dependent join
shrinks the set of binding combinations fed to the inner relation, i.e.
fewer trips to the inner site.
"""

from __future__ import annotations

from repro.relational.algebra import Base, Join, Select, evaluate
from repro.relational.conditions import Attr, Comparison, Const, conj, eq
from repro.relational.optimize import optimize


class CountingCatalog:
    """Delegates to the logical schema, counting base-relation fetches."""

    def __init__(self, inner):
        self.inner = inner
        self.fetches: list[str] = []

    def base_schema(self, name):
        return self.inner.base_schema(name)

    def base_binding_sets(self, name):
        return self.inner.base_binding_sets(name)

    def fetch(self, name, given):
        self.fetches.append(name)
        return self.inner.fetch(name, given)


def _query_expr():
    condition = conj(
        eq("make", "jaguar"),
        eq("condition", "good"),
        Comparison(Attr("year"), ">=", Const(1996)),
        Comparison(Attr("price"), "<", Attr("bb_price")),
    )
    return Select(Join(Base("classifieds"), Base("blue_price")), condition)


def test_ablation_optimizer_fetch_reduction(benchmark, webbase):
    expr = _query_expr()

    plain_catalog = CountingCatalog(webbase.logical)
    baseline = evaluate(expr, plain_catalog)
    plain_inner = plain_catalog.fetches.count("blue_price")

    optimized = optimize(expr, webbase.logical)

    def run_optimized():
        catalog = CountingCatalog(webbase.logical)
        return evaluate(optimized.expression, catalog), catalog

    (result, counted) = benchmark(run_optimized)
    optimized_inner = counted.fetches.count("blue_price")

    print("\nAblation — selection pushdown vs dependent-join fan-out")
    print("  rewrites applied:")
    print(optimized.explain())
    print(
        "  blue_price fetches: %d (plain) -> %d (optimized); %d answer rows"
        % (plain_inner, optimized_inner, len(result))
    )

    assert result == baseline
    # The year>=1996 conjunct filtered the outer side before binding
    # combinations were enumerated, so the inner site is visited less.
    assert optimized_inner < plain_inner
