"""Ablation A2 — result caching at the VPS layer.

The paper names caching (with parallelization) as the other key technique
for acceptable response times.  We run the same UR query against a cold
and a warm cache and compare pages fetched and network seconds.

The staleness arm measures the cache *under churn*: one site mutates
mid-workload, a maintenance sweep invalidates exactly that host, and the
warm pass must stay byte-identical to a cold evaluation of the mutated
world while keeping most of its fetch savings on the unaffected sites.
"""

from __future__ import annotations

from repro.core.execution import WebBaseConfig
from repro.core.parallel import cached_site_query
from repro.core.stats import primary_relation, site_given
from repro.core.webbase import WebBase
from repro.sites.world import TIMING_TABLE_HOSTS, build_world, mutate_site_listings
from repro.vps.cache import CachePolicy

QUERY = "SELECT make, model, year, price, contact WHERE make = 'jaguar'"


def test_ablation_caching(benchmark):
    webbase = WebBase.create(WebBaseConfig(cache=CachePolicy.lru()))
    server = webbase.world.server

    # Cold run: populate the cache.
    pages_before = sum(s.pages_ok for s in server.stats.values())
    cold = webbase.query(QUERY)
    cold_pages = sum(s.pages_ok for s in server.stats.values()) - pages_before
    cold_network = webbase.last_context.network_seconds_total

    # Warm runs: everything served from the cache.
    pages_before = sum(s.pages_ok for s in server.stats.values())
    warm = benchmark(webbase.query, QUERY)
    warm_pages = sum(s.pages_ok for s in server.stats.values()) - pages_before

    print("\nAblation — VPS result cache (query: %s)" % QUERY)
    print("  cold: %4d pages fetched, %6.2fs simulated network" % (cold_pages, cold_network))
    print("  warm: %4d pages fetched  (cache: %s)" % (warm_pages, webbase.cache.stats))

    assert warm == cold
    assert cold_pages > 0
    assert warm_pages == 0  # not a single page re-fetched
    assert webbase.cache.hits > 0


def test_ablation_cache_staleness(benchmark):
    """Site churn mid-workload: invalidation keeps the warm cache honest
    (byte-identical to a cold evaluation of the mutated world) while
    retaining at least half of the full-warm fetch savings."""
    world = build_world()
    cached_wb = WebBase(world, WebBaseConfig(cache=CachePolicy.lru()))
    cold_wb = WebBase(world, WebBaseConfig(cache=CachePolicy.noop()))
    server = world.server
    site_query = {"make": "ford", "model": "escort"}
    mutated_host = "www.newsday.com"

    def pages_total() -> int:
        return sum(s.pages_ok for s in server.stats.values())

    # Cold pass over the ten timing-table sites populates the cache.
    before = pages_total()
    cold_outcome = cached_site_query(cached_wb, site_query)
    cold_pages = pages_total() - before

    # One site churns (new matching ads + a detectable structural change);
    # the maintenance sweep absorbs it and invalidates only that host.
    mutate_site_listings(world, mutated_host, change="auto")
    assert mutated_host in cached_wb.run_maintenance()

    before = pages_total()
    warm_outcome = cached_site_query(cached_wb, site_query)
    warm_pages = pages_total() - before

    # Honesty: every site's warm answer is byte-identical to the cold
    # evaluation of the *mutated* world — including the changed host.
    for host in TIMING_TABLE_HOSTS:
        relation = primary_relation(cached_wb, host)
        given = site_given(cached_wb, relation, site_query)
        assert cached_wb.cache.fetch(relation, dict(given)) == cold_wb.vps.fetch(
            relation, dict(given)
        ), "stale answer served for %s after invalidation" % host

    print("\nAblation — cache staleness arm (per-site query: %r)" % site_query)
    print("  cold:               %4d pages fetched" % cold_pages)
    print("  warm after churn:   %4d pages fetched  (only %s refetched)"
          % (warm_pages, mutated_host))
    print("  cache: %s" % cached_wb.cache.stats)

    # The mutation posted new matching ads; the warm pass must see them.
    assert (
        warm_outcome.rows_by_host[mutated_host]
        > cold_outcome.rows_by_host[mutated_host]
    )
    # Efficiency: unaffected relations stayed warm, so the pass keeps at
    # least 50% of the full-warm savings (full-warm refetches 0 pages).
    assert cold_pages > 0
    assert warm_pages <= cold_pages * 0.5

    # Steady state after the sweep: fully warm again.
    outcome = benchmark(cached_site_query, cached_wb, site_query)
    assert outcome.rows_by_host == warm_outcome.rows_by_host
