"""Ablation A2 — result caching at the VPS layer.

The paper names caching (with parallelization) as the other key technique
for acceptable response times.  We run the same UR query against a cold
and a warm cache and compare pages fetched and network seconds.
"""

from __future__ import annotations

from repro.core.webbase import WebBase

QUERY = "SELECT make, model, year, price, contact WHERE make = 'jaguar'"


def test_ablation_caching(benchmark):
    webbase = WebBase.build(caching=True)
    server = webbase.world.server

    # Cold run: populate the cache.
    pages_before = sum(s.pages_ok for s in server.stats.values())
    cold = webbase.query(QUERY)
    cold_pages = sum(s.pages_ok for s in server.stats.values()) - pages_before
    cold_network = webbase.last_context.network_seconds_total

    # Warm runs: everything served from the cache.
    pages_before = sum(s.pages_ok for s in server.stats.values())
    warm = benchmark(webbase.query, QUERY)
    warm_pages = sum(s.pages_ok for s in server.stats.values()) - pages_before

    print("\nAblation — VPS result cache (query: %s)" % QUERY)
    print("  cold: %4d pages fetched, %6.2fs simulated network" % (cold_pages, cold_network))
    print("  warm: %4d pages fetched  (cache: %s)" % (warm_pages, webbase.cache.stats))

    assert warm == cold
    assert cold_pages > 0
    assert warm_pages == 0  # not a single page re-fetched
    assert webbase.cache.hits > 0
