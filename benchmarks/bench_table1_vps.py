"""Table 1 — VPS level relations.

Regenerates the paper's inventory of virtual physical relations: one (or
two, with the car-features detail) relation per site, populated through
compiled navigation expressions.  The benchmark times one representative
populate of every relation.
"""

from __future__ import annotations

# The paper's Table 1, translated to our schemas.  (Car == make/model/year;
# site vocabularies are intentionally preserved at this layer.)
EXPECTED_VPS = {
    "newsday": {"make", "model", "year", "price", "contact", "url"},
    "newsday_car_features": {"url", "features", "picture"},
    "nytimes": {"manufacturer", "model", "year", "features", "asking_price", "contact"},
    "carpoint": {"make", "model", "year", "price", "features", "zip", "dealer"},
    "autoweb": {"year", "make", "model", "options", "price", "zip_code", "seller"},
    "kellys": {"make", "model", "year", "condition", "bb_price"},
    "caranddriver": {"make", "model", "year", "safety"},
    "carfinance": {"zip_code", "duration", "rate"},
}

# A representative access per relation (mandatory attributes bound).
PROBES = {
    "newsday": {"make": "saab"},
    "nytimes": {"manufacturer": "saab"},
    "carpoint": {"make": "saab"},
    "autoweb": {"make": "saab"},
    "kellys": {"make": "ford", "model": "escort", "condition": "good"},
    "caranddriver": {"make": "ford"},
    "carfinance": {"zip_code": "10001"},
    "nydaily": {"make": "saab"},
    "carreviews": {"make": "saab"},
    "wwwheels": {"make": "saab"},
    "autoconnect": {"make": "saab"},
    "yahoocars": {"make": "saab"},
    "usedcarmart": {"make": "saab"},
}


def test_table1_vps_relations(benchmark, webbase):
    for name, attrs in EXPECTED_VPS.items():
        assert set(webbase.vps.base_schema(name).attrs) == attrs, name

    def populate_all():
        total = 0
        for name, given in PROBES.items():
            total += len(webbase.fetch_vps(name, given))
        return total

    total = benchmark(populate_all)
    assert total > 0

    print("\nTable 1 — VPS level relations")
    for name in webbase.vps.relation_names:
        relation = webbase.vps.relation(name)
        print("  %-22s(%s)" % (name, ", ".join(relation.schema)))
    if "newsday" in PROBES:
        rows = webbase.fetch_vps("newsday", PROBES["newsday"])
        print("  e.g. newsday[make=saab] -> %d tuples" % len(rows))
