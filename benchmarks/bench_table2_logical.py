"""Table 2 — Logical level relations and their definitions.

Regenerates the five site-independent logical relations as views over the
VPS and times their evaluation (which performs live navigation at every
underlying site, including the newsday ⋈ newsday_car_features dependent
join).
"""

from __future__ import annotations

EXPECTED_LOGICAL = {
    "classifieds": {"make", "model", "year", "price", "contact", "features"},
    "dealers": {"make", "model", "year", "price", "contact", "features", "zip"},
    "blue_price": {"make", "model", "year", "condition", "bb_price"},
    "reliability": {"make", "model", "year", "safety"},
    "interest": {"zip", "duration", "rate"},
}

PROBES = {
    "classifieds": {"make": "saab"},
    "dealers": {"make": "saab"},
    "blue_price": {"make": "ford", "model": "escort", "condition": "good"},
    "reliability": {"make": "ford"},
    "interest": {"zip": "10001"},
}


def test_table2_logical_relations(benchmark, webbase):
    for name, attrs in EXPECTED_LOGICAL.items():
        assert set(webbase.logical.base_schema(name).attrs) == attrs, name

    def evaluate_all():
        return {
            name: len(webbase.fetch_logical(name, given))
            for name, given in PROBES.items()
        }

    counts = benchmark(evaluate_all)
    assert all(count > 0 for count in counts.values()), counts

    print("\nTable 2 — Logical level relations")
    for name in ("classifieds", "dealers", "blue_price", "reliability", "interest"):
        relation = webbase.logical.relation(name)
        print(
            "  %-12s(%s)   bindings=%s   e.g. %d tuples"
            % (
                name,
                ", ".join(relation.schema),
                [sorted(m) for m in relation.binding_sets],
                counts[name],
            )
        )
