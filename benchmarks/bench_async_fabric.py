"""Ablation A5 — the async navigation fabric vs the bundle-capped pool.

A dependent join that probes one site with 64 distinct bindings is
exactly the workload the thread-per-bundle pool caps: ``max_workers``
lanes each walk their chunk serially, so the simulated makespan is the
busiest lane's serial latency.  The async fabric multiplexes every
binding as a coroutine on one virtual-time loop, bounded only by the
per-host connection semaphore — the same 64 bindings overlap their
navigation latency and the makespan collapses toward
``waves × per-binding latency``.

The workload binds ``make × zip_code`` on autoweb: every pair submits a
*distinct* form (distinct result URL), so the query-scoped page cache
cannot collapse the batch into a handful of shared pages — each binding
drives live navigation, which is what the fabric exists to overlap.

Acceptance: byte-identical per-binding rows, identical live fetch and
server page counts, identical total simulated network seconds (the work
is the same; only the overlap differs), and ≥ 2× lower simulated
makespan (threaded critical lane vs fabric window).  Results land in
``BENCH_async_fabric.json``; CI's perf-smoke re-runs this and fails if
the fabric makespan regresses more than 10% above the committed
baseline.
"""

from __future__ import annotations

import itertools

import emit

from repro.core.execution import WebBaseConfig
from repro.core.webbase import WebBase
from repro.sites.dataset import MAKES, NY_ZIPCODES, OTHER_ZIPCODES

#: The small world: enough ads that several bindings return rows, small
#: enough for CI's perf-smoke.
ADS_PER_HOST = 24
#: The bundle-capped pool under test (both configs share it; only the
#: fabric differs, so the comparison isolates the concurrency model).
MAX_WORKERS = 4
SEED = 1999
#: 64+ concurrent bindings, every one a distinct form submission.
BINDINGS = 64
RELATION = "autoweb"

TARGET_RATIO = 2.0
#: CI fails when the fabric makespan exceeds the committed baseline by
#: more than this.
REGRESSION_HEADROOM = 1.10


def _givens() -> list[dict[str, str]]:
    zips = sorted(set(NY_ZIPCODES) | set(OTHER_ZIPCODES))
    pairs = itertools.product(sorted(MAKES), zips)
    return [{"make": m, "zip_code": z} for m, z in pairs][:BINDINGS]


def _run(fabric: str) -> dict:
    webbase = WebBase.create(
        WebBaseConfig(
            seed=SEED,
            ads_per_host=ADS_PER_HOST,
            max_workers=MAX_WORKERS,
            batch=True,
            fabric=fabric,
        )
    )
    relation = webbase.vps.relation(RELATION)
    context = webbase.execution_context(label="bench-fabric-%s" % fabric)
    results = context.run_fetch_batch(relation, _givens()).results()
    counters = webbase.metrics.snapshot()["counters"]
    # The simulated makespan: threaded = busiest lane's serial network
    # seconds; async = the fabric window (virtual loop time from first
    # submission to last completion).  Both are purely simulated, so a
    # re-run emits byte-identical numbers.
    makespan = max(
        context.network_seconds_critical, context.fabric_window_seconds
    )
    return {
        "rows": [sorted(map(tuple, r.rows)) for r in results],
        "makespan_seconds": round(makespan, 3),
        "network_seconds_total": round(context.network_seconds_total, 3),
        "fetches": int(counters.get("engine.fetches", 0)),
        "pages": sum(s.requests for s in webbase.world.server.stats.values()),
    }


def test_async_fabric_ablation(benchmark):
    threaded = _run("thread")
    fabric = _run("async")

    print("\nAblation — async navigation fabric vs the bundle-capped pool")
    print(
        "  workload: %d distinct bindings on %s, %d-worker pool"
        % (BINDINGS, RELATION, MAX_WORKERS)
    )
    print(
        "  thread: makespan %7.2fs  (%.1fs network total, %d fetches, %d pages)"
        % (
            threaded["makespan_seconds"],
            threaded["network_seconds_total"],
            threaded["fetches"],
            threaded["pages"],
        )
    )
    print(
        "  async:  makespan %7.2fs  (%.1fs network total, %d fetches, %d pages)"
        % (
            fabric["makespan_seconds"],
            fabric["network_seconds_total"],
            fabric["fetches"],
            fabric["pages"],
        )
    )
    ratio = threaded["makespan_seconds"] / fabric["makespan_seconds"]
    rows = sum(len(r) for r in fabric["rows"])
    print("  ratio: %.2fx lower simulated makespan, %d row(s) either way" % (ratio, rows))

    # Correctness first: byte-identical per-binding answers, identical
    # live work — the fabric only reorders the waiting.
    assert fabric["rows"] == threaded["rows"]
    assert rows > 0
    assert fabric["fetches"] == threaded["fetches"] == BINDINGS
    assert fabric["pages"] == threaded["pages"]
    assert fabric["network_seconds_total"] == threaded["network_seconds_total"]

    # The perf claim: a multiplicative drop in simulated makespan.
    assert ratio >= TARGET_RATIO

    # Perf-smoke gate: no silent regression against the committed numbers.
    baseline = emit.load_baseline("async_fabric")
    if baseline is not None:
        budget = baseline["async"]["makespan_seconds"] * REGRESSION_HEADROOM
        assert fabric["makespan_seconds"] <= budget, (
            "fabric makespan regressed: %.3f > %.3f (baseline %.3f + %d%% headroom)"
            % (
                fabric["makespan_seconds"],
                budget,
                baseline["async"]["makespan_seconds"],
                round((REGRESSION_HEADROOM - 1) * 100),
            )
        )

    emit.emit(
        "async_fabric",
        {
            "benchmark": "async_fabric",
            "config": {
                "seed": SEED,
                "ads_per_host": ADS_PER_HOST,
                "max_workers": MAX_WORKERS,
                "bindings": BINDINGS,
                "relation": RELATION,
            },
            "thread": {k: v for k, v in threaded.items() if k != "rows"},
            "async": {k: v for k, v in fabric.items() if k != "rows"},
            "makespan_ratio": round(ratio, 2),
            "rows": rows,
        },
    )

    # Steady state under the timer: the fabric session.
    timed = benchmark(_run, "async")
    assert timed["rows"] == fabric["rows"]
