"""Service-load benchmark — N clients sharing one webbase vs N alone.

Section 7 measures per-site latency because users wait on live form
fetches; the ROADMAP's north star is heavy concurrent traffic.  This
benchmark closes that loop: a closed-loop load generator sweeps client
counts against one :class:`~repro.service.server.WebBaseService` and
reports throughput, tail latency (p50/p95 from the client side), shed
rate and cache hit rate — then runs the *same* per-client workloads on
isolated per-client WebBases (one cache each, nothing shared) and
compares total live Web fetches.  The cross-query cache and single-flight
coalescing only earn their keep across clients here: overlapping queries
from different connections collapse onto one live fetch per unique
``(relation, bindings)`` key.

Acceptance (pinned by ``test_shared_service_beats_isolated_clients`` and
CI's ``--smoke`` run): with >= 8 concurrent clients issuing overlapping
queries, the shared server issues strictly fewer total live fetches than
the isolated arrangement, and at low concurrency (queue ample) the shed
rate is exactly zero.

Run standalone: ``python benchmarks/bench_service_load.py [--smoke]``
or under pytest: ``pytest benchmarks/bench_service_load.py -s``.
"""

from __future__ import annotations

import argparse
import sys
import threading
import time
from dataclasses import dataclass, field

from repro.core.execution import WebBaseConfig
from repro.core.webbase import WebBase
from repro.service.client import Overloaded, ServiceClient
from repro.service.server import ServiceConfig, WebBaseService
from repro.vps.cache import CachePolicy

# The overlapping workload: every client draws from this same pool (offset
# by its index), so concurrent clients repeatedly ask for the same keys.
QUERIES = [
    "SELECT make, model, price WHERE make = 'saab'",
    "SELECT make, model, price WHERE make = 'honda'",
    "SELECT make, model, year, price, contact WHERE make = 'ford' AND model = 'escort'",
    "SELECT make, model, rate WHERE make = 'honda' AND duration = 36",
]

SMOKE_CLIENTS = 8
SMOKE_ROUNDS = 4


def _webbase() -> WebBase:
    return WebBase.create(WebBaseConfig(cache=CachePolicy.lru()))


def _client_workload(index: int, rounds: int) -> list[str]:
    """Client ``index``'s query sequence — offset so clients overlap
    without being identical."""
    return [QUERIES[(index + r) % len(QUERIES)] for r in range(rounds)]


@dataclass
class LoadReport:
    """One load point: client-side latencies plus server-side counters."""

    clients: int
    requests: int
    completed: int
    shed: int
    retries: int
    wall_seconds: float
    latencies: list[float] = field(repr=False, default_factory=list)
    live_fetches: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def throughput(self) -> float:
        return self.completed / self.wall_seconds if self.wall_seconds else 0.0

    def percentile(self, q: float) -> float:
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        rank = max(1, round(q / 100.0 * len(ordered)))
        return ordered[rank - 1]

    @property
    def shed_rate(self) -> float:
        offered = self.requests + self.shed
        return self.shed / offered if offered else 0.0

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0


def run_load(
    clients: int,
    rounds: int,
    queue_limit: int = 64,
    workers: int = 4,
    per_client_limit: int = 2,
) -> LoadReport:
    """One closed-loop load point against a fresh service instance.

    Each client thread opens its own connection and issues its workload
    one query at a time; an ``OVERLOADED`` shed is retried with backoff
    (and counted), so every request eventually completes.
    """
    webbase = _webbase()
    service = WebBaseService(
        webbase,
        ServiceConfig(
            port=0,
            queue_limit=queue_limit,
            workers=workers,
            per_client_limit=per_client_limit,
        ),
    )
    host, port = service.start()
    barrier = threading.Barrier(clients)
    lock = threading.Lock()
    latencies: list[float] = []
    completed = 0
    retries = 0
    errors: list[BaseException] = []

    def drive(index: int) -> None:
        nonlocal completed, retries
        try:
            with ServiceClient(host=host, port=port, connect_timeout=10.0) as client:
                barrier.wait()
                for text in _client_workload(index, rounds):
                    started = time.monotonic()
                    attempt = 0
                    while True:
                        try:
                            client.query(text)
                            break
                        except Overloaded:
                            attempt += 1
                            with lock:
                                retries += 1
                            time.sleep(min(0.25, 0.01 * 2**attempt))
                    with lock:
                        latencies.append(time.monotonic() - started)
                        completed += 1
        except BaseException as exc:  # noqa: BLE001 - surfaced to the caller
            with lock:
                errors.append(exc)

    threads = [
        threading.Thread(target=drive, args=(i,), daemon=True) for i in range(clients)
    ]
    started = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.monotonic() - started
    if errors:
        raise errors[0]
    counters = webbase.metrics.snapshot()["counters"]
    service.shutdown()
    return LoadReport(
        clients=clients,
        requests=completed,
        completed=completed,
        shed=int(counters.get("service.shed", 0)),
        retries=retries,
        wall_seconds=wall,
        latencies=latencies,
        live_fetches=int(counters.get("engine.fetches", 0)),
        cache_hits=int(counters.get("cache.hits", 0)),
        cache_misses=int(counters.get("cache.misses", 0)),
    )


def isolated_fetches(clients: int, rounds: int) -> int:
    """The no-service baseline: the same per-client workloads, each on its
    own private WebBase (own cache, nothing shared across clients), as N
    independent one-shot processes would run them.  Returns total live
    fetches."""
    total = 0
    for index in range(clients):
        webbase = _webbase()
        for text in _client_workload(index, rounds):
            webbase.query(text)
        total += int(webbase.metrics.value("engine.fetches"))
    return total


def _report_line(report: LoadReport) -> str:
    return (
        "  %2d clients: %5.1f q/s  p50 %6.1fms  p95 %6.1fms  "
        "shed %5.1f%% (%d retried)  cache hit %5.1f%%  %3d live fetches"
        % (
            report.clients,
            report.throughput,
            report.percentile(50) * 1000,
            report.percentile(95) * 1000,
            report.shed_rate * 100,
            report.retries,
            report.cache_hit_rate * 100,
            report.live_fetches,
        )
    )


def run_smoke(clients: int = SMOKE_CLIENTS, rounds: int = SMOKE_ROUNDS) -> tuple[LoadReport, int]:
    """The CI gate: one ample-queue load point plus the isolated baseline.
    Returns (shared report, isolated fetch total); asserts the acceptance
    criteria."""
    report = run_load(clients=clients, rounds=rounds, queue_limit=64, workers=4)
    isolated = isolated_fetches(clients=clients, rounds=rounds)
    print("service load smoke — %d clients x %d rounds, overlapping queries" % (clients, rounds))
    print(_report_line(report))
    print(
        "  shared server: %d live fetches; isolated per-client WebBases: %d"
        % (report.live_fetches, isolated)
    )
    assert report.completed == clients * rounds, "some requests never completed"
    assert report.shed == 0, (
        "shed %d requests at low concurrency (queue 64 >= %d outstanding)"
        % (report.shed, clients)
    )
    assert report.live_fetches < isolated, (
        "shared service should issue strictly fewer live fetches "
        "(%d vs %d isolated)" % (report.live_fetches, isolated)
    )
    print(
        "  ok: %.1fx fewer live fetches shared, zero shed"
        % (isolated / report.live_fetches)
    )
    return report, isolated


def run_sweep(rounds: int = 6, queue_limit: int = 8) -> list[LoadReport]:
    """The full table: client counts swept against one bounded queue (small
    enough that high concurrency must shed)."""
    reports = []
    print(
        "service load sweep — queue_limit=%d, workers=4, %d rounds per client"
        % (queue_limit, rounds)
    )
    for clients in (1, 2, 4, 8, 16):
        report = run_load(
            clients=clients, rounds=rounds, queue_limit=queue_limit, workers=4
        )
        reports.append(report)
        print(_report_line(report))
    isolated = isolated_fetches(clients=8, rounds=rounds)
    shared = next(r for r in reports if r.clients == 8)
    print(
        "  8-client comparison: shared %d live fetches vs isolated %d (%.1fx)"
        % (shared.live_fetches, isolated, isolated / max(1, shared.live_fetches))
    )
    return reports


# -- pytest entry points -----------------------------------------------------------


def test_shared_service_beats_isolated_clients():
    """>=8 concurrent clients with overlapping queries: strictly fewer live
    fetches through one shared service than through isolated WebBases, and
    zero shed when the queue is ample."""
    run_smoke()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="one 8-client load point + isolated baseline; asserts zero "
        "shed and strictly fewer shared fetches (the CI gate)",
    )
    parser.add_argument("--rounds", type=int, default=None)
    args = parser.parse_args(argv)
    if args.smoke:
        run_smoke(rounds=args.rounds or SMOKE_ROUNDS)
    else:
        run_sweep(rounds=args.rounds or 6)
    return 0


if __name__ == "__main__":
    sys.exit(main())
