"""Section 7 — the per-site timing table.

Regenerates the paper's table for ``SELECT make,model,year,price WHERE
make=ford AND model=escort`` over the ten car-related sites: pages
navigated, cpu time (measured) and elapsed time (cpu + simulated network
seconds from each site's latency model).

Shape expectations (we cannot match a 1999 testbed's absolute numbers):
elapsed > cpu everywhere (network dominates), deeper sites cost more, and
the total motivates the parallelization the paper's conclusions call for.
"""

from __future__ import annotations

from repro.core.stats import format_timing_table, site_query_timings
from repro.sites.world import TIMING_TABLE_HOSTS


def test_sec7_timing_table(benchmark, webbase):
    timings = benchmark(site_query_timings, webbase)

    print("\nSection 7 — per-site timings for make=ford, model=escort")
    print(format_timing_table(timings))
    total_elapsed = sum(t.elapsed_seconds for t in timings)
    print("  total elapsed (sequential): %.2fs" % total_elapsed)

    assert [t.host for t in timings] == TIMING_TABLE_HOSTS
    for t in timings:
        assert t.rows > 0, t.host
        assert t.pages >= 3, t.host
        # The paper's elapsed/cpu shape: network time dominates cpu time.
        assert t.elapsed_seconds > t.cpu_seconds
    # Sites differ: the table is not flat.
    page_counts = {t.pages for t in timings}
    assert len(page_counts) > 1
