"""Machine-readable benchmark results (``BENCH_<name>.json``).

Benchmarks print human-readable tables, but the perf trajectory across
PRs needs numbers a machine can diff: each benchmark calls :func:`emit`
with a plain JSON payload, which lands in ``BENCH_<name>.json`` at the
repository root and is committed alongside the code.  CI's perf-smoke
job reloads the committed file with :func:`load_baseline` *before*
re-running the benchmark and fails the run if a tracked measure
regressed beyond its headroom — so a perf win stays won.

The payloads are deterministic (seeded world, simulated clock); every
file also carries a ``provenance`` stamp (git SHA, ``REPRO_TEST_SEED``,
python version) so a number in a committed baseline can always be traced
back to the exact tree and toolchain that produced it.  Measures stay
byte-identical run to run — only the stamp moves with the commit.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from typing import Any

#: Repository root — result files sit next to README.md, not inside
#: benchmarks/, so the perf trajectory is visible at the top level.
ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def result_path(name: str) -> str:
    """Where ``BENCH_<name>.json`` lives."""
    return os.path.join(ROOT, "BENCH_%s.json" % name)


def load_baseline(name: str) -> dict[str, Any] | None:
    """The committed results of a previous run (``None`` if never emitted).

    Call this *before* :func:`emit` — emitting overwrites the file.
    """
    path = result_path(name)
    if not os.path.exists(path):
        return None
    with open(path) as handle:
        return json.load(handle)


def _git_sha() -> str:
    """The current commit, or ``""`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=ROOT,
            capture_output=True,
            timeout=10.0,
            check=False,
        )
    except (OSError, subprocess.TimeoutExpired):
        return ""
    return out.stdout.decode("ascii", errors="replace").strip() if out.returncode == 0 else ""


def provenance() -> dict[str, str]:
    """The run's traceability stamp: tree, seed override, toolchain."""
    return {
        "git_sha": _git_sha(),
        "repro_test_seed": os.environ.get("REPRO_TEST_SEED", ""),
        "python": "%d.%d.%d" % sys.version_info[:3],
    }


def emit(name: str, payload: dict[str, Any]) -> str:
    """Write one benchmark's results *atomically*; returns the file path.

    A ``provenance`` stamp (:func:`provenance`) is added to the payload
    unless the benchmark already supplied one.  The payload lands in a
    temp file beside the target and is renamed into place, so an
    interrupted benchmark (ctrl-C, OOM, a crashing assertion after
    partial write) can never leave a truncated ``BENCH_*.json`` for the
    next CI run to trip over."""
    payload = dict(payload)
    payload.setdefault("provenance", provenance())
    path = result_path(name)
    tmp = path + ".tmp"
    try:
        with open(tmp, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)
    return path
