"""Machine-readable benchmark results (``BENCH_<name>.json``).

Benchmarks print human-readable tables, but the perf trajectory across
PRs needs numbers a machine can diff: each benchmark calls :func:`emit`
with a plain JSON payload, which lands in ``BENCH_<name>.json`` at the
repository root and is committed alongside the code.  CI's perf-smoke
job reloads the committed file with :func:`load_baseline` *before*
re-running the benchmark and fails the run if a tracked measure
regressed beyond its headroom — so a perf win stays won.

The payloads are deterministic (seeded world, simulated clock), so a
re-run that changes nothing produces a byte-identical file and no diff.
"""

from __future__ import annotations

import json
import os
from typing import Any

#: Repository root — result files sit next to README.md, not inside
#: benchmarks/, so the perf trajectory is visible at the top level.
ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def result_path(name: str) -> str:
    """Where ``BENCH_<name>.json`` lives."""
    return os.path.join(ROOT, "BENCH_%s.json" % name)


def load_baseline(name: str) -> dict[str, Any] | None:
    """The committed results of a previous run (``None`` if never emitted).

    Call this *before* :func:`emit` — emitting overwrites the file.
    """
    path = result_path(name)
    if not os.path.exists(path):
        return None
    with open(path) as handle:
        return json.load(handle)


def emit(name: str, payload: dict[str, Any]) -> str:
    """Write one benchmark's results *atomically*; returns the file path.

    The payload lands in a temp file beside the target and is renamed
    into place, so an interrupted benchmark (ctrl-C, OOM, a crashing
    assertion after partial write) can never leave a truncated
    ``BENCH_*.json`` for the next CI run to trip over."""
    path = result_path(name)
    tmp = path + ".tmp"
    try:
        with open(tmp, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)
    return path
