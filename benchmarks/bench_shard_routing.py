"""Shard-routing benchmark — 16 clients on a 3-worker cluster vs one process.

The ROADMAP's north star is heavy multi-client traffic; the cluster tier
(DESIGN.md §14) shards ``WebBaseService`` across worker processes with
host-affinity routing, load spillover and a federation cache so the GIL
stops being the ceiling.  This benchmark drives the *same* 16-client
workload through (a) one single-process service and (b) a 3-worker
``LocalCluster``, and compares **modeled elapsed**: every request's
``modelled_seconds`` stat (cpu + the simulated-network critical path,
the repo's standard elapsed measure since the async fabric PR) is
attributed to the machine that served it.  A machine's busy time is the
sum of its requests; the single process is one machine, so its makespan
is the whole workload, while the cluster's makespan is its *busiest
shard* — wall clock on a shared CI box measures core count, not the
architecture, which is exactly why the modeled clock exists.

Acceptance (pinned by ``test_cluster_halves_modeled_makespan`` and the
CI ``cluster`` job):

* byte-identical rows from both arms against a reference webbase,
* modeled speedup >= 2.0 for 16 clients on 3 workers,
* a kill-one-worker arm where every in-flight query still completes
  (via takeover + client retry) and a standing query loses zero deltas,
* no regression beyond 10% of the committed ``BENCH_shard_routing.json``.

Run standalone: ``python benchmarks/bench_shard_routing.py [--smoke]``
or under pytest: ``pytest benchmarks/bench_shard_routing.py -s``.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import threading
import time

import emit

from repro.cluster.router import ClusterConfig, LocalCluster
from repro.core.execution import WebBaseConfig
from repro.core.webbase import WebBase
from repro.service.client import ServiceClient
from repro.service.server import ServiceConfig, WebBaseService
from repro.sites.world import mutate_site_listings
from repro.vps.cache import CachePolicy

ADS_PER_HOST = 32
SEED = 1999
CLIENTS = 16
SPEEDUP_FLOOR = 2.0
SMOKE_SPEEDUP_FLOOR = 1.5
REGRESSION_HEADROOM = 0.90  # new speedup must keep 90% of the baseline

MAKES = ["saab", "honda", "ford", "toyota", "jaguar", "mazda"]

#: Query families and where affinity routing sends them (empirically:
#: rate/zip -> the carpoint owner, safety -> the caranddriver owner,
#: blue-book joins -> the newsday/kbb owner, bare price scatters).  Each
#: distinct make walks a distinct listing slice, so the families stay
#: expensive per query instead of collapsing into one warm walk.
FAMILIES = [
    ("rate", "SELECT make, model, rate WHERE make = '%s' AND duration = 36"),
    ("safety", "SELECT make, model, safety WHERE make = '%s'"),
    (
        "bb",
        "SELECT make, model, price, bb_price WHERE make = '%s' "
        "AND condition = 'good' AND price < bb_price",
    ),
    ("zip", "SELECT make, model, price, zip WHERE make = '%s'"),
    ("price", "SELECT make, model, price WHERE make = '%s'"),
]

STANDING_QUERY = "SELECT make, model, price WHERE make = 'ford'"
MUTATION = {
    "host": "www.newsday.com",
    "make": "ford",
    "model": "escort",
    "count": 2,
    "seed": 11,
}


EXPENSIVE_FAMILIES = {"rate", "safety", "bb"}


def build_pool(makes: list[str]) -> list[str]:
    """The workload: the expensive families first (interleaved make-major
    so the opening burst mixes every affinity owner), then the cheap
    zip/price tail, whose fills the expensive walks already published —
    the scatter merges at the end ride the federation."""
    expensive = [
        tmpl % make
        for make in makes
        for fam, tmpl in FAMILIES
        if fam in EXPENSIVE_FAMILIES
    ]
    cheap = [
        tmpl % make
        for make in makes
        for fam, tmpl in FAMILIES
        if fam not in EXPENSIVE_FAMILIES
    ]
    return expensive + cheap


def reference_rows(reference: WebBase, pool: list[str]) -> dict[str, list]:
    return {text: sorted(set(reference.query(text).rows)) for text in pool}


class _Workload:
    """A closed-loop shared work queue: 16 client threads drain it
    against one address, asserting byte-identical rows per query and
    accumulating per-machine modeled busy seconds."""

    def __init__(self, pool: list[str], truth: dict[str, list]) -> None:
        self.pool = list(pool)
        self.truth = truth
        self.lock = threading.Lock()
        self.next_index = 0
        self.busy: dict[str, float] = {}
        self.spills = 0
        self.completed = 0
        self.errors: list[BaseException] = []

    def _take(self) -> str | None:
        with self.lock:
            if self.next_index >= len(self.pool):
                return None
            text = self.pool[self.next_index]
            self.next_index += 1
            return text

    def _account(self, stats: dict) -> None:
        # Cluster results carry per-shard seconds; a plain service result
        # carries one modelled_seconds for the single machine.
        shard_seconds = stats.get("shard_seconds")
        if shard_seconds is None:
            shard_seconds = {"single": float(stats.get("modelled_seconds", 0.0))}
        with self.lock:
            for machine, seconds in shard_seconds.items():
                self.busy[machine] = self.busy.get(machine, 0.0) + seconds
            if stats.get("spilled"):
                self.spills += 1
            self.completed += 1

    def _client_loop(
        self, address: tuple[str, int], delay: float = 0.0
    ) -> None:
        try:
            # Staggered arrivals: real clients do not connect in perfect
            # lockstep, and a zero-jitter herd makes the router's placement
            # reservations race each other, turning the measurement into a
            # thread-scheduler lottery.  A tenth of a second per client
            # keeps early placements ordered without changing the modeled
            # cost of anything.
            if delay:
                time.sleep(delay)
            with ServiceClient(*address, timeout=600.0) as client:
                while True:
                    text = self._take()
                    if text is None:
                        return
                    # No redirect-following: the measurement needs every
                    # request relayed (and accounted) through the router.
                    outcome = client.query_retry(
                        text, retries=8, follow_redirects=False
                    )
                    got = sorted(set(outcome.rows))
                    want = self.truth[text]
                    assert got == want, (
                        "rows diverged for %r: %d vs %d reference"
                        % (text, len(got), len(want))
                    )
                    self._account(outcome.stats)
        except BaseException as exc:  # re-raised by run()
            with self.lock:
                self.errors.append(exc)

    def run(self, address: tuple[str, int], clients: int) -> None:
        threads = [
            threading.Thread(
                target=self._client_loop,
                args=(address, index * 0.1),
                daemon=True,
            )
            for index in range(clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if self.errors:
            raise self.errors[0]
        assert self.completed == len(self.pool)


def run_single_arm(
    pool: list[str], truth: dict[str, list], clients: int, ads: int
) -> float:
    """Total modeled busy seconds for one process serving everything."""
    store_dir = tempfile.mkdtemp(prefix="bench-shard-single-")
    service = WebBaseService(
        WebBase.create(
            WebBaseConfig(
                seed=SEED,
                ads_per_host=ads,
                store_dir=store_dir,
                cache=CachePolicy.lru(),
            )
        ),
        ServiceConfig(
            port=0, queue_limit=32, workers=4, per_client_limit=32
        ),
    )
    address = service.start()
    try:
        load = _Workload(pool, truth)
        load.run(address, clients)
        return load.busy.get("single", 0.0)
    finally:
        service.shutdown()
        shutil.rmtree(store_dir, ignore_errors=True)


def run_cluster_arm(
    cluster: LocalCluster,
    pool: list[str],
    truth: dict[str, list],
    clients: int,
) -> tuple[dict[str, float], int]:
    """Per-shard modeled busy seconds + spill count on the live cluster."""
    load = _Workload(pool, truth)
    load.run(cluster.address, clients)
    return dict(load.busy), load.spills


def run_failover_arm(
    cluster: LocalCluster,
    reference: WebBase,
    pool: list[str],
    truth: dict[str, list],
) -> dict:
    """Kill the shard holding a standing query while queries are in
    flight: every query must still complete byte-identically (takeover +
    retry) and the subscriber must converge on the post-mutation truth
    with zero lost deltas."""
    router = cluster.router
    with ServiceClient(*cluster.address, timeout=600.0) as client:
        subscription = client.subscribe(STANDING_QUERY, page_size=200)
        assert subscription.rows == set(truth[STANDING_QUERY])
        deadline = time.monotonic() + 10.0
        while not router._relays and time.monotonic() < deadline:
            time.sleep(0.02)  # the relay registers just after the ack
        victim = router._relays[0].shard_id

        load = _Workload(pool, truth)
        threads = [
            threading.Thread(
                target=load._client_loop, args=(cluster.address,), daemon=True
            )
            for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        time.sleep(0.2)  # let a burst get in flight, then pull the plug
        cluster.kill_worker(victim)
        for thread in threads:
            thread.join()
        if load.errors:
            raise load.errors[0]
        assert load.completed == len(pool), (
            "lost %d in-flight queries to the takeover"
            % (len(pool) - load.completed)
        )

        # World churn across the takeover window.
        client.mutate(json.dumps(MUTATION))
        mutate_site_listings(
            reference.world,
            MUTATION["host"],
            make=MUTATION["make"],
            model=MUTATION["model"],
            count=MUTATION["count"],
            seed=MUTATION["seed"],
        )
        client.sweep(MUTATION["host"])
        expected = set(
            sorted(set(reference.query(STANDING_QUERY).rows))
        )
        for _ in range(20):
            if subscription.rows == expected:
                break
            if client.next_delta(subscription, timeout=10.0) is None:
                break
        assert subscription.rows == expected, (
            "standing query lost deltas across the takeover"
        )
        client.unsubscribe(subscription)

    counters = router.metrics.snapshot()["counters"]
    assert counters.get("cluster.worker_deaths", 0) >= 1
    assert counters.get("cluster.takeovers", 0) >= 1
    assert counters.get("cluster.relay_resumes", 0) >= 1
    return {
        "queries_completed": len(pool),
        "victim": victim,
        "worker_deaths": counters.get("cluster.worker_deaths", 0),
        "takeovers": counters.get("cluster.takeovers", 0),
        "relay_resumes": counters.get("cluster.relay_resumes", 0),
        "standing_rows_converged": True,
    }


def run_bench(
    makes: list[str] = MAKES,
    clients: int = CLIENTS,
    ads: int = ADS_PER_HOST,
    failover: bool = True,
) -> dict:
    pool = build_pool(makes)
    print(
        "shard routing bench — %d clients, %d queries, 3 workers, "
        "ads_per_host=%d" % (clients, len(pool), ads)
    )
    reference = WebBase.create(
        WebBaseConfig(seed=SEED, ads_per_host=ads, cache=CachePolicy.noop())
    )
    truth = reference_rows(reference, pool)

    single_busy = run_single_arm(pool, truth, clients, ads)
    print("  single process: %.1f modeled busy seconds" % single_busy)

    store_root = tempfile.mkdtemp(prefix="bench-shard-cluster-")
    cluster = LocalCluster(
        ClusterConfig(
            store_root=store_root,
            shards=3,
            seed=SEED,
            ads_per_host=ads,
            worker_queue_limit=32,
            worker_threads=4,
            forward_timeout_seconds=600.0,
        )
    )
    cluster.start()
    try:
        shard_busy, spills = run_cluster_arm(cluster, pool, truth, clients)
        makespan = max(shard_busy.values())
        speedup = single_busy / makespan
        with ServiceClient(*cluster.address, timeout=60.0) as admin:
            merged_counters = admin.metrics()["counters"]
        fed_stats = {
            "entries": cluster.router.federation_server.cache.stats()[
                "entries"
            ],
            "hits": merged_counters.get("cluster.fed_hits", 0),
            "misses": merged_counters.get("cluster.fed_misses", 0),
        }
        for shard in sorted(shard_busy):
            print(
                "  %-8s %6.1f modeled busy seconds" % (shard, shard_busy[shard])
            )
        print(
            "  cluster makespan %.1fs -> %.2fx speedup (%d spills, "
            "%d federation hits)"
            % (makespan, speedup, spills, fed_stats.get("hits", 0))
        )
        failover_report = None
        if failover:
            failover_report = run_failover_arm(cluster, reference, pool, truth)
            print(
                "  failover: killed %s, %d/%d queries completed, "
                "%d takeover(s), standing query converged"
                % (
                    failover_report["victim"],
                    failover_report["queries_completed"],
                    len(pool),
                    failover_report["takeovers"],
                )
            )
    finally:
        cluster.stop()
        shutil.rmtree(store_root, ignore_errors=True)

    payload = {
        "ads_per_host": ads,
        "seed": SEED,
        "clients": clients,
        "queries": len(pool),
        "single_busy_seconds": round(single_busy, 2),
        "cluster": {
            "shards": 3,
            "shard_busy_seconds": {
                shard: round(busy, 2)
                for shard, busy in sorted(shard_busy.items())
            },
            "makespan_seconds": round(makespan, 2),
            "spills": spills,
            "federation": fed_stats,
        },
        "speedup": round(speedup, 2),
    }
    if failover_report is not None:
        payload["failover"] = failover_report
    return payload


def run_smoke() -> dict:
    """The CI-sized run: fewer makes, lighter world, same contracts."""
    payload = run_bench(makes=MAKES[:3], clients=8, ads=16)
    assert payload["speedup"] >= SMOKE_SPEEDUP_FLOOR, (
        "smoke speedup %.2fx below %.1fx"
        % (payload["speedup"], SMOKE_SPEEDUP_FLOOR)
    )
    print("  ok: %.2fx modeled speedup (smoke)" % payload["speedup"])
    return payload


# -- pytest entry point ------------------------------------------------------


def test_cluster_halves_modeled_makespan():
    """16 clients on 3 workers: modeled makespan at least halves vs one
    process, rows stay byte-identical, takeover loses nothing, and the
    committed baseline's speedup regresses at most 10%."""
    payload = run_bench()
    assert payload["speedup"] >= SPEEDUP_FLOOR, (
        "cluster speedup %.2fx below the %.1fx acceptance floor"
        % (payload["speedup"], SPEEDUP_FLOOR)
    )
    baseline = emit.load_baseline("shard_routing")
    if baseline is not None:
        floor = baseline["speedup"] * REGRESSION_HEADROOM
        assert payload["speedup"] >= floor, (
            "speedup %.2fx regressed beyond 10%% of the committed "
            "baseline (%.2fx, floor %.2fx)"
            % (payload["speedup"], baseline["speedup"], floor)
        )
    path = emit.emit("shard_routing", payload)
    print("  wrote %s (%.2fx speedup)" % (path, payload["speedup"]))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced workload, no emit — correctness + failover + a "
        "relaxed speedup floor",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        run_smoke()
    else:
        test_cluster_halves_modeled_makespan()
    return 0


if __name__ == "__main__":
    sys.exit(main())
