"""Ablation A3 — binding propagation and the join-ordering search.

Section 5 notes that with multiple sets of mandatory attributes per VPS
relation, join ordering is NP-complete [Rajaraman-Sagiv-Ullman].  This
benchmark measures:

* binding-set propagation through a deep algebra expression (linear), and
* the memoized join-ordering search as relation count and per-relation
  binding alternatives grow — solvable chains stay fast; the bench prints
  the measured cost curve.
"""

from __future__ import annotations

import random
import time

from repro.relational.bindings import JoinPart, binding_sets, order_joins


def _chain_parts(n: int, alternatives: int, seed: int = 42) -> list[JoinPart]:
    """A join chain r0..r(n-1) where each relation offers ``alternatives``
    binding sets, only one of which is satisfiable in chain order."""
    rng = random.Random(seed)
    parts = []
    for i in range(n):
        real = {"a%d" % i}
        decoys = [
            {"x%d_%d" % (i, j), "y%d_%d" % (i, j)} for j in range(alternatives - 1)
        ]
        parts.append(
            JoinPart(
                "r%d" % i,
                frozenset({"a%d" % i, "a%d" % (i + 1)}),
                binding_sets(real, *decoys),
            )
        )
    rng.shuffle(parts)
    return parts


def test_ablation_join_ordering(benchmark):
    print("\nAblation — join-ordering search cost (chain instances)")
    print("  %6s %12s %12s" % ("n", "alternatives", "seconds"))
    for n in (4, 8, 12, 16):
        for alternatives in (1, 3):
            parts = _chain_parts(n, alternatives)
            start = time.perf_counter()
            order = order_joins(parts, {"a0"})
            cost = time.perf_counter() - start
            assert order is not None
            print("  %6d %12d %12.5f" % (n, alternatives, cost))

    parts = _chain_parts(12, 3)
    order = benchmark(order_joins, parts, {"a0"})
    assert order is not None

    # The returned order is valid: every relation is bindable on arrival.
    bound = {"a0"}
    for index in order:
        assert any(m <= bound for m in parts[index].bindings)
        bound |= parts[index].schema


def test_ablation_unsatisfiable_instances_fail_fast():
    parts = _chain_parts(12, 3)
    start = time.perf_counter()
    assert order_joins(parts, set()) is None  # nothing bound: no order
    cost = time.perf_counter() - start
    print("  unsatisfiable n=12: %.5fs (memoized dead-state pruning)" % cost)
    assert cost < 2.0


def test_ablation_binding_propagation_cost(benchmark, webbase):
    from repro.relational.algebra import binding_sets_of

    expressions = [
        webbase.logical.relation(name).definition
        for name in webbase.logical.relation_names
    ]

    def propagate_all():
        return [binding_sets_of(expr, webbase.vps) for expr in expressions]

    results = benchmark(propagate_all)
    assert all(results)
