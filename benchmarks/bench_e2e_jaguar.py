"""Example 2.1 — the running used-Jaguar query, end to end.

"Make a list of used Jaguars advertised in New York City area sites, such
that each car is a 1993 or later model, has good safety ratings, and its
selling price is less than its Blue Book value" — expressed against the
structured universal relation, planned into maximal objects, and evaluated
through all three layers down to live navigation.
"""

from __future__ import annotations

JAGUAR_QUERY = (
    "SELECT make, model, year, price, bb_price, safety, contact "
    "WHERE make = 'jaguar' AND year >= 1993 AND condition = 'good' "
    "AND safety IN ('good', 'excellent') AND price < bb_price"
)


def test_example21_jaguar_query(benchmark, webbase):
    plan = webbase.plan(JAGUAR_QUERY)
    print("\nExample 2.1 — the used-Jaguar query")
    print(plan.describe())

    result = benchmark(webbase.query, JAGUAR_QUERY)

    print(result.pretty(limit=10))
    print("  (%d bargains found)" % len(result))

    assert len(result) > 0
    for row in result.to_dicts():
        assert row["make"] == "jaguar"
        assert row["year"] >= 1993
        assert row["price"] < row["bb_price"]
        assert row["safety"] in ("good", "excellent")
    # Both ad sources (classifieds and dealers) contribute via the union
    # of maximal objects.
    assert len(plan.feasible_objects) == 2
