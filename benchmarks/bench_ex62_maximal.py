"""Example 6.2 — structured UR in action: maximal-object generation.

Regenerates the example's five maximal objects from its compatibility
constraints (lease/loan, full/liability, dealers/classifieds, the two
lease restrictions, and the inapplicability of trade-in values), and
shows the concept hierarchy of Figure 5.
"""

from __future__ import annotations

from repro.ur.maximal import maximal_objects
from repro.ur.usedcars import (
    EXAMPLE_62_EXPECTED,
    EXAMPLE_62_RELATIONS,
    example_62_hierarchy,
    example_62_rules,
)
from repro.ur.concepts import used_car_hierarchy


def test_example62_maximal_objects(benchmark):
    rules = example_62_rules()

    objects = benchmark(maximal_objects, EXAMPLE_62_RELATIONS, rules)

    print("\nExample 6.2 — compatibility constraints and maximal objects")
    for rule in rules:
        print("  %r" % (rule,))
    print("maximal objects:")
    for obj in objects:
        print("  %s" % " ⋈ ".join(sorted(obj)))

    assert sorted(objects, key=sorted) == sorted(EXAMPLE_62_EXPECTED, key=sorted)
    assert len(objects) == 5


def test_figure5_concept_hierarchy():
    print("\nFigure 5 — concept hierarchy for the used cars UR")
    print(used_car_hierarchy().pretty())
    print("\n(Example 6.2 universe)")
    print(example_62_hierarchy().pretty())
    hierarchy = used_car_hierarchy()
    assert hierarchy.expand("Car") == ["make", "model", "year"]
    assert set(hierarchy.leaves()) >= {"make", "price", "bb_price", "safety", "rate"}
