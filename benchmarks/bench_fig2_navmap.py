"""Figure 2 — the navigation map for Newsday classified car ads.

Rebuilds the map by example (a scripted designer session standing in for
the paper's 30-minute browse) and checks its topology against the figure:
the entry page with link(auto) plus three side links, form f1(make) with
its two possible outcomes, the dynamically generated form f2(model,
featrs), the More self-loop on the data node, and the per-row Car Features
link into the detail node.
"""

from __future__ import annotations

from repro.core.sessions import map_newsday
from repro.navigation.model import FormEdge, LinkEdge


def test_fig2_newsday_navigation_map(benchmark, world):
    builder = benchmark(map_newsday, world)
    navmap = builder.map

    print("\nFigure 2 — navigation map for Newsday classified car ads")
    print(navmap.summary())

    # Node inventory: entry, used-car page, refine page, data page, detail.
    assert len(navmap.nodes) == 5
    assert navmap.root.signature.path == "/"

    link_edges = [e for e in navmap.edges if isinstance(e, LinkEdge)]
    form_edges = [e for e in navmap.edges if isinstance(e, FormEdge)]

    # link(auto) from the entry page.
    assert any(e.link_name == "Auto" and e.source == navmap.root_id for e in link_edges)
    # form f1(make) leads to two different node kinds (refine vs data).
    f1_targets = {
        e.target for e in form_edges if e.form_key.widgets == frozenset({"make"})
    }
    assert len(f1_targets) == 2
    # form f2(model, featrs) from the refine page.
    assert any(
        e.form_key.widgets == frozenset({"model", "featrs"}) for e in form_edges
    )
    # The More self-loop on the data node.
    assert any(
        e.link_name == "More" and e.source == e.target for e in link_edges
    )
    # The row link into the detail node.
    assert any(e.link_name == "Car Features" and e.row_link for e in link_edges)

    # Figure 3's object model: the map lowers to F-logic frames.
    store = navmap.to_store()
    data_pages = [o for o in store.all_objects() if store.is_member(o, "data_page")]
    assert len(data_pages) == 2
