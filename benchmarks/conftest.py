"""Shared fixtures for the benchmark suite.

Each benchmark regenerates one table or figure of the paper (see
DESIGN.md's experiment index) and prints the reproduced artifact; run with
``pytest benchmarks/ --benchmark-only -s`` to see the tables.
"""

from __future__ import annotations

import pytest

from repro.core.webbase import WebBase
from repro.sites.world import World, build_world


@pytest.fixture(scope="session")
def world() -> World:
    return build_world()


@pytest.fixture(scope="session")
def webbase() -> WebBase:
    return WebBase.create()
