"""Ablation A4 — binding-batched navigation with prefix reuse.

The paper's navigation expressions re-drive the whole entry→form→submit
path for every binding, so a comparison session that runs the 3-way
jaguar join (classifieds ⋈ blue_price ⋈ reliability) across several
makes re-fetches each site's entry and intermediate form pages once per
make.  Batched navigation — the query-scoped prefix page cache, batched
dependent-join probes and speculative prefetch — walks each prefix once
per session.  Acceptance: ≥ 2× fewer pages navigated (server-side live
requests *and* demand-path live navigations) than ``--no-batch`` under
identical configs, with byte-identical rows and the same live VPS fetch
count.  Results land in ``BENCH_prefix_reuse.json`` (see ``emit.py``);
CI's perf-smoke re-runs this on the small world and fails if pages
regress more than 10% above the committed baseline.
"""

from __future__ import annotations

import emit

from repro.core.execution import WebBaseConfig
from repro.core.webbase import WebBase

#: The small world: enough ads that every make has listings, small enough
#: for CI's perf-smoke.
ADS_PER_HOST = 24
MAX_WORKERS = 4
SEED = 1999

#: One comparison session: the golden 3-way jaguar join, asked for each
#: make the buyer is considering (jaguar first — the paper's running
#: example), sharing one execution context the way the service layer
#: shares one per client session.
MAKES = ("jaguar", "bmw", "audi", "saab", "volvo", "lexus", "acura", "infiniti")
QUERY_TEMPLATE = (
    "SELECT make, model, year, price, bb_price, safety, contact "
    "WHERE make = '%s' AND year >= 1993 AND condition = 'good' "
    "AND safety IN ('good', 'excellent') AND price < bb_price"
)

TARGET_RATIO = 2.0
#: CI fails when batched pages exceed the committed baseline by more than this.
REGRESSION_HEADROOM = 1.10


def _run(batch: bool) -> dict:
    webbase = WebBase.create(
        WebBaseConfig(
            seed=SEED,
            ads_per_host=ADS_PER_HOST,
            max_workers=MAX_WORKERS,
            batch=batch,
        )
    )
    before = {h: s.requests for h, s in webbase.world.server.stats.items()}
    context = webbase.execution_context(label="comparison-session")
    rows: list[tuple] = []
    for make in MAKES:
        rows.extend(webbase.query(QUERY_TEMPLATE % make, context=context).rows)
    # Server-side live requests: authoritative pages navigated, including
    # any speculative prefetch traffic.
    pages = sum(
        s.requests - before.get(h, 0)
        for h, s in webbase.world.server.stats.items()
    )
    # Demand-path live navigations, from the trace (excludes prefetch —
    # asserting on both catches a prefetcher that hides pages server-side).
    demand_pages = sum(
        s.pages for s in context.root.spans("fetch") if s.cache == "miss"
    )
    counters = webbase.metrics.snapshot()["counters"]
    return {
        "rows": sorted(map(tuple, rows)),
        "pages": pages,
        "demand_pages": demand_pages,
        "fetches": int(counters.get("engine.fetches", 0)),
        "prefix_hits": int(counters.get("nav.prefix_hits", 0)),
        "prefix_misses": int(counters.get("nav.prefix_misses", 0)),
        "prefetch_pages": int(counters.get("nav.prefetch_pages", 0)),
        "elapsed_seconds": round(context.elapsed_seconds, 3),
    }


def test_prefix_reuse_ablation(benchmark):
    batched = _run(batch=True)
    plain = _run(batch=False)

    print("\nAblation — batched navigation with prefix reuse")
    print("  session: 3-way jaguar join across %d makes" % len(MAKES))
    print(
        "  --no-batch: %3d pages navigated (%d demand), %d live fetches"
        % (plain["pages"], plain["demand_pages"], plain["fetches"])
    )
    print(
        "  --batch:    %3d pages navigated (%d demand), %d live fetches, "
        "prefix %d hit(s) / %d miss(es), %d prefetched"
        % (
            batched["pages"],
            batched["demand_pages"],
            batched["fetches"],
            batched["prefix_hits"],
            batched["prefix_misses"],
            batched["prefetch_pages"],
        )
    )
    ratio = plain["pages"] / batched["pages"]
    demand_ratio = plain["demand_pages"] / max(1, batched["demand_pages"])
    print(
        "  ratio: %.2fx fewer pages (%.2fx demand-path), %d row(s) either way"
        % (ratio, demand_ratio, len(batched["rows"]))
    )

    # Correctness first: byte-identical answers, same live VPS fetches.
    assert batched["rows"] == plain["rows"]
    assert len(batched["rows"]) > 0
    assert batched["fetches"] == plain["fetches"]

    # The perf claim: a multiplicative drop in pages navigated.
    assert ratio >= TARGET_RATIO
    assert demand_ratio >= TARGET_RATIO
    assert batched["prefix_hits"] > 0

    # Perf-smoke gate: no silent regression against the committed numbers.
    baseline = emit.load_baseline("prefix_reuse")
    if baseline is not None:
        budget = baseline["batch"]["pages"] * REGRESSION_HEADROOM
        assert batched["pages"] <= budget, (
            "pages navigated regressed: %d > %.1f (baseline %d + %d%% headroom)"
            % (
                batched["pages"],
                budget,
                baseline["batch"]["pages"],
                round((REGRESSION_HEADROOM - 1) * 100),
            )
        )

    emit.emit(
        "prefix_reuse",
        {
            "benchmark": "prefix_reuse",
            "config": {
                "seed": SEED,
                "ads_per_host": ADS_PER_HOST,
                "max_workers": MAX_WORKERS,
                "makes": list(MAKES),
            },
            "batch": {k: v for k, v in batched.items() if k != "rows"},
            "no_batch": {k: v for k, v in plain.items() if k != "rows"},
            "pages_ratio": round(ratio, 2),
            "demand_pages_ratio": round(demand_ratio, 2),
            "rows": len(batched["rows"]),
        },
    )

    # Steady state under the timer: the batched session.
    timed = benchmark(_run, True)
    assert timed["rows"] == batched["rows"]
