"""Ablation A1 — parallelization of multi-site query evaluation.

The paper's conclusion: "parallelization of query evaluation is crucial
for obtaining acceptable response times."  Both arms run through the real
execution engine (``ExecutionContext`` fan-out over a bundle pool); the
ablation is purely the worker count, so the elapsed-time models are

  sequential elapsed = cpu + Σ network  (one lane carries everything)
  parallel elapsed   = cpu + busiest-lane network (online makespan)

and both arms produce byte-identical rows.
"""

from __future__ import annotations

from repro.core.parallel import parallel_site_query, sequential_site_query

QUERY = "SELECT make, model, price WHERE make = 'saab'"


def test_ablation_parallel_fetching(benchmark, webbase):
    sequential = sequential_site_query(webbase)

    parallel = benchmark(parallel_site_query, webbase)

    print("\nAblation — sequential vs parallel site fetching (10 sites)")
    print(
        "  sequential: cpu %.3fs + network %.2fs = %.2fs elapsed"
        % (
            sequential.cpu_seconds,
            sum(sequential.network_by_host.values()),
            sequential.sequential_elapsed,
        )
    )
    print(
        "  parallel:   cpu %.3fs + busiest lane %.2fs = %.2fs elapsed  (%.1fx speedup)"
        % (
            parallel.cpu_seconds,
            parallel.critical_network_seconds,
            parallel.parallel_elapsed,
            parallel.speedup,
        )
    )

    # Same answers either way.
    assert parallel.rows_by_host == sequential.rows_by_host
    # The acceptance bar: the engine's measured speedup on the 10-site
    # workload clears 3x (it approaches the site count for similar depths).
    assert parallel.speedup > 3.0


def test_ablation_parallel_ur_query(webbase):
    """The same ablation through the full UR query path (plan -> objects ->
    union branches -> dependent-join probes all fan out)."""
    narrow = webbase.execution_context(label="ur:sequential", max_workers=1)
    wide = webbase.execution_context(label="ur:parallel", max_workers=8)
    answer_narrow = webbase.query(QUERY, context=narrow)
    answer_wide = webbase.query(QUERY, context=wide)

    speedup = narrow.elapsed_seconds / wide.elapsed_seconds
    print("\nAblation — UR query through the engine (%s)" % QUERY)
    print(
        "  1 worker : cpu %.3fs + network %.2fs = %.2fs elapsed"
        % (narrow.cpu_seconds, narrow.network_seconds_critical, narrow.elapsed_seconds)
    )
    print(
        "  8 workers: cpu %.3fs + busiest lane %.2fs = %.2fs elapsed  (%.1fx speedup)"
        % (wide.cpu_seconds, wide.network_seconds_critical, wide.elapsed_seconds, speedup)
    )

    assert answer_wide == answer_narrow
    assert wide.elapsed_seconds < narrow.elapsed_seconds
