"""Ablation A1 — parallelization of multi-site query evaluation.

The paper's conclusion: "parallelization of query evaluation is crucial
for obtaining acceptable response times."  We evaluate the ford/escort
query over all ten sites sequentially and in parallel (one executor per
site) and compare the elapsed-time models:

  sequential elapsed = cpu + Σ network;   parallel elapsed = cpu + max network
"""

from __future__ import annotations

from repro.core.parallel import parallel_site_query, sequential_site_query


def test_ablation_parallel_fetching(benchmark, webbase):
    sequential = sequential_site_query(webbase)

    parallel = benchmark(parallel_site_query, webbase)

    print("\nAblation — sequential vs parallel site fetching (10 sites)")
    print(
        "  sequential: cpu %.3fs + network %.2fs = %.2fs elapsed"
        % (
            sequential.cpu_seconds,
            sum(sequential.network_by_host.values()),
            sequential.sequential_elapsed,
        )
    )
    print(
        "  parallel:   cpu %.3fs + max network %.2fs = %.2fs elapsed  (%.1fx speedup)"
        % (
            parallel.cpu_seconds,
            max(parallel.network_by_host.values()),
            parallel.parallel_elapsed,
            parallel.sequential_elapsed / parallel.parallel_elapsed,
        )
    )

    # Same answers either way.
    assert parallel.rows_by_host == sequential.rows_by_host
    # The headline shape: a substantial elapsed-time win, approaching the
    # site count for similar site depths.
    assert parallel.parallel_elapsed < parallel.sequential_elapsed / 2
