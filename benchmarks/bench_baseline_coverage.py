"""Baseline comparison — the paper's motivating claims, quantified.

Section 1 motivates webbases with two observations:

1. most Web data "can only be accessed via forms" [Lawrence & Giles],
   which link-following Web query languages (W3QL, WebSQL, WebLog,
   Florid) cannot reach; and
2. canned form interfaces are "too limiting for the wide audience of Web
   users", while SQL-class languages are too complex.

This benchmark measures both against the same simulated Web: the
fraction of the ad corpus a link-only crawler can see vs the webbase, and
the fraction of an ad-hoc shopping workload a canned catalog can answer
vs the structured universal relation.
"""

from __future__ import annotations

from repro.baselines.canned import coverage, used_car_canned_catalog
from repro.baselines.websql import PathPattern, crawl, dynamic_content_coverage
from repro.web.browser import Browser

AD_HOSTS = [
    "www.newsday.com",
    "www.nytimes.com",
    "www.carpoint.com",
    "www.autoweb.com",
]

WORKLOAD = [
    "SELECT make, model, year, price, contact WHERE make = 'ford' AND model = 'escort'",
    "SELECT make, model, year, price, contact WHERE make = 'honda' AND price < 9000",
    "SELECT make, model, price, bb_price WHERE make = 'jaguar' AND condition = 'good' AND price < bb_price",
    "SELECT make, model, safety WHERE make = 'toyota' AND safety = 'excellent'",
    "SELECT make, model, price, rate WHERE make = 'saab' AND zip = '10001' AND duration = 36",
]


def test_baseline_link_only_crawling(benchmark, webbase):
    world = webbase.world

    def crawl_everything():
        return {
            host: crawl(Browser(world.server), "http://%s/" % host, PathPattern(max_depth=4))
            for host in AD_HOSTS
        }

    results = benchmark(crawl_everything)

    print("\nBaseline — link-only crawling vs the webbase (ad visibility)")
    print("  %-20s %10s %14s %12s" % ("host", "pages", "link-only", "webbase"))
    for host, result in results.items():
        link_cov = dynamic_content_coverage(world, result, host)
        print(
            "  %-20s %10d %13.0f%% %11s"
            % (host, result.pages_fetched, link_cov * 100, "100%")
        )
        # The reproduced claim: the ads live behind forms; links see none.
        assert link_cov == 0.0

    # The webbase genuinely reaches everything on each classified site.
    for host, relation in (("www.newsday.com", "newsday"), ("www.nytimes.com", "nytimes")):
        make_attr = "manufacturer" if relation == "nytimes" else "make"
        total = 0
        for make in sorted({ad.car.make for ad in world.dataset.ads_for(host)}):
            total += len(webbase.fetch_vps(relation, {make_attr: make}))
        assert total == len(world.dataset.ads_for(host))


def test_baseline_canned_interface(benchmark, webbase):
    catalog = used_car_canned_catalog()

    fraction, unanswered = benchmark(coverage, catalog, WORKLOAD)

    print("\nBaseline — canned interface coverage of an ad-hoc workload")
    print("  canned catalog answers %.0f%% of %d tasks" % (fraction * 100, len(WORKLOAD)))
    for task in unanswered:
        print("    cannot express: %s" % task)
    assert fraction < 1.0

    answered_by_ur = 0
    for task in WORKLOAD:
        if len(webbase.query(task)) >= 0:  # evaluable at all
            answered_by_ur += 1
    print("  structured UR answers %d/%d" % (answered_by_ur, len(WORKLOAD)))
    assert answered_by_ur == len(WORKLOAD)
