"""Section 7 — map-builder automation statistics.

The paper: "for the Newsday site ... all objects that describe the
navigation map (85 objects with over 600 attributes in total) were
automatically extracted.  Less than 5% of the information in the map was
added manually, which consisted of 10 to 12 facts ... For other sites such
as New York Times and Daily News, the ratio was similar."

We regenerate the per-site accounting (objects, attribute facts, manual
designer facts, manual ratio).  Our simulated sites are leaner than the
1999 originals, so absolute object counts are smaller; the *shape* —
manual share in the low single-digit percent — is the reproduced result.
"""

from __future__ import annotations

from repro.core.sessions import build_all_builders


def test_sec7_automation_statistics(benchmark, world):
    builders = benchmark(build_all_builders, world)

    print("\nSection 7 — mapping-by-example automation statistics")
    print("  %-22s %8s %8s %8s %8s" % ("site", "objects", "attrs", "manual", "ratio"))
    total_objects = total_attrs = total_manual = 0
    for host, builder in sorted(builders.items()):
        report = builder.automation_report()
        total_objects += report.objects
        total_attrs += report.attributes
        total_manual += report.manual_facts
        print(
            "  %-22s %8d %8d %8d %7.1f%%"
            % (
                host,
                report.objects,
                report.attributes,
                report.manual_facts,
                report.manual_ratio * 100,
            )
        )
    overall = total_manual / (total_attrs + total_manual)
    print(
        "  %-22s %8d %8d %8d %7.1f%%"
        % ("TOTAL", total_objects, total_attrs, total_manual, overall * 100)
    )

    # The paper's headline shape: the map is overwhelmingly auto-extracted.
    assert overall < 0.10
    newsday = builders["www.newsday.com"].automation_report()
    assert newsday.manual_ratio < 0.10
    assert newsday.objects >= 15 and newsday.attributes >= 60
    # Across the full webbase the scale is comparable to the paper's site.
    assert total_objects >= 85
    assert total_attrs >= 600
