"""Multi-query sharing — 16 overlapping clients, with and without MQO.

The multi-query optimizer's headline claim: concurrent clients asking
*overlapping* questions should not each pay for the Web.  Two service
arms run the **identical** three-phase workload over the same seeded
world and the same deliberately small page cache (``max_entries=4`` —
small enough that a four-make workload churns it, the regime where
answer-level reuse matters because page-level caching alone cannot
hold the working set):

1. **gold seeding** — one client issues three broad queries (saab,
   honda, jaguar); under ``--mqo`` each becomes a revision-stamped
   gold-tier answer as a side effect of streaming.
2. **shared burst** — all 16 clients fire the *same* not-yet-gold ford
   query inside the batching window; under MQO one leader evaluates per
   subplan and the rest subscribe (``mqo.shared_hits``).
3. **subsumed sweep** — each client issues six *narrowed* variants
   (``AND year > Y``) of the gold queries.  Under MQO every one is
   containment-served from gold: **zero** live fetches in the whole
   phase.  The baseline arm re-fetches relentlessly because the tiny
   cache keeps evicting the four makes past each other.

Acceptance (pinned below and by CI's ``mqo`` job): byte-identical rows
per client per step across arms, ``>= 2x`` fewer phase-3 live fetches
under MQO (in practice the phase is fetch-*free*), at least one
zero-fetch containment serve reported by the server (``stats.mqo ==
"subsumed"``), and at least one shared-subplan hit in the burst.  The
committed ``BENCH_mqo_sharing.json`` baseline gates regressions with
10% headroom: the subsumed-serve count and the baseline arm's fetch
pressure must not quietly shrink.

Run standalone: ``python benchmarks/bench_mqo_sharing.py`` or under
pytest: ``pytest benchmarks/bench_mqo_sharing.py -s``.
"""

from __future__ import annotations

import sys
import threading

import emit

from repro.core.execution import WebBaseConfig
from repro.core.webbase import WebBase
from repro.service.client import ServiceClient
from repro.service.server import ServiceConfig, WebBaseService
from repro.vps.cache import CachePolicy

SEED = 1999
ADS_PER_HOST = 24
CLIENTS = 16
CACHE_ENTRIES = 4  # intentionally smaller than the four-make working set
WINDOW_MS = 80.0

GOLD_MAKES = ("saab", "honda", "jaguar")
BROAD = "SELECT make, model, price, year WHERE make = '%s'"
SHARED_BURST = "SELECT make, model, price, year WHERE make = 'ford'"
#: Every client walks all six narrowed variants, offset by its index so
#: the makes interleave (maximal cache churn for the baseline arm).
NARROWED = tuple(
    "SELECT make, model, price, year WHERE make = '%s' AND year > %d" % (make, year)
    for make in GOLD_MAKES
    for year in (1994, 1996)
)

#: Regression headroom against the committed baseline payload (applied
#: to the MQO arm's deterministic counters).
FLOOR = 0.90
#: The baseline arm's fetch count is timing-noisy (concurrent identical
#: fetches coalesce in the engine's single-flight, and how many coincide
#: varies run to run), so its did-the-workload-shrink floor is generous.
PRESSURE_FLOOR = 0.50


def _service(mqo: bool, store_dir: str | None) -> tuple[WebBase, WebBaseService]:
    webbase = WebBase.create(
        WebBaseConfig(
            seed=SEED,
            ads_per_host=ADS_PER_HOST,
            cache=CachePolicy.lru(max_entries=CACHE_ENTRIES),
            store_dir=store_dir if mqo else None,
            mqo=mqo,
        )
    )
    service = WebBaseService(
        webbase,
        ServiceConfig(
            port=0,
            workers=8,
            queue_limit=64,
            mqo_window_ms=WINDOW_MS if mqo else 0.0,
        ),
    )
    return webbase, service


def _fetches(webbase: WebBase) -> int:
    return int(webbase.metrics.value("engine.fetches"))


def run_arm(mqo: bool, store_dir: str | None) -> dict:
    """The three-phase workload against one fresh service; returns the
    per-phase fetch counts, per-(client, step) rows, and MQO counters."""
    webbase, service = _service(mqo, store_dir)
    host, port = service.start()
    rows: dict[tuple[int, int], list] = {}
    subsumed_serves = 0
    zero_fetch_serves = 0
    lock = threading.Lock()
    errors: list[BaseException] = []
    try:
        # Phase 1 — gold seeding (sequential, one client).
        with ServiceClient(host=host, port=port, connect_timeout=10.0) as client:
            for make in GOLD_MAKES:
                outcome = client.query(BROAD % make)
                assert len(outcome.rows) > 0, "no %s ads in the world" % make
        seeded = _fetches(webbase)

        # Phases 2+3 — 16 concurrent clients, identical across arms.
        barrier = threading.Barrier(CLIENTS)

        def drive(index: int) -> None:
            nonlocal subsumed_serves, zero_fetch_serves
            try:
                with ServiceClient(
                    host=host, port=port, connect_timeout=10.0
                ) as client:
                    barrier.wait()
                    # Phase 2: the shared burst — same text, same window.
                    steps = [SHARED_BURST] + [
                        NARROWED[(index + step) % len(NARROWED)]
                        for step in range(len(NARROWED))
                    ]
                    for step, text in enumerate(steps):
                        outcome = client.query(text)
                        with lock:
                            rows[(index, step)] = sorted(
                                map(tuple, outcome.rows)
                            )
                            if outcome.stats.get("mqo") == "subsumed":
                                subsumed_serves += 1
                                if outcome.stats.get("fetches") == 0:
                                    zero_fetch_serves += 1
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                with lock:
                    errors.append(exc)
                try:
                    barrier.abort()
                except Exception:
                    pass

        threads = [
            threading.Thread(target=drive, args=(i,), daemon=True)
            for i in range(CLIENTS)
        ]
        # Burst and sweep overlap across clients, so they are measured as
        # one concurrent-phase fetch count; the sweep's fetch-free claim
        # is pinned from the per-query subsumption stats instead.
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        concurrent_fetches = _fetches(webbase) - seeded
        counters = webbase.metrics.snapshot()["counters"]
    finally:
        service.shutdown()
    return {
        "seed_fetches": seeded,
        "concurrent_fetches": concurrent_fetches,
        "total_fetches": seeded + concurrent_fetches,
        "rows": rows,
        "row_count": sum(len(r) for r in rows.values()),
        "subsumed_serves": subsumed_serves,
        "zero_fetch_serves": zero_fetch_serves,
        "shared_hits": int(counters.get("mqo.shared_hits", 0)),
        "shared_leads": int(counters.get("mqo.shared_leads", 0)),
    }


def run_benchmark(store_dir: str) -> dict:
    baseline = run_arm(mqo=False, store_dir=None)
    optimized = run_arm(mqo=True, store_dir=store_dir)

    steps = 1 + len(NARROWED)
    print(
        "\nMulti-query sharing — %d clients x %d steps, cache capacity %d"
        % (CLIENTS, steps, CACHE_ENTRIES)
    )
    for label, arm in (("baseline", baseline), ("mqo", optimized)):
        print(
            "  %-8s seed %3d fetches; concurrent phase %4d fetches; "
            "%d subsumed serves (%d fetch-free), %d shared hits"
            % (
                label,
                arm["seed_fetches"],
                arm["concurrent_fetches"],
                arm["subsumed_serves"],
                arm["zero_fetch_serves"],
                arm["shared_hits"],
            )
        )

    # Correctness: every client sees byte-identical rows in both arms.
    assert set(baseline["rows"]) == set(optimized["rows"])
    for key in baseline["rows"]:
        assert baseline["rows"][key] == optimized["rows"][key], (
            "client %d step %d rows diverged under MQO" % key
        )
    assert baseline["row_count"] > 0

    # The perf claim: >= 2x fewer live fetches across the concurrent
    # phase (in practice the subsumed sweep is fetch-free, so the MQO
    # arm pays only for the ford burst).
    ratio = baseline["concurrent_fetches"] / max(1, optimized["concurrent_fetches"])
    assert optimized["concurrent_fetches"] * 2 <= baseline["concurrent_fetches"], (
        "MQO arm should halve live fetches: %d vs %d baseline"
        % (optimized["concurrent_fetches"], baseline["concurrent_fetches"])
    )
    # Every narrowed query was containment-served without touching the
    # Web — and the server said so in the per-query stats.
    assert optimized["zero_fetch_serves"] >= 1, "no zero-fetch containment serve"
    assert optimized["subsumed_serves"] >= CLIENTS * len(NARROWED), (
        "the whole sweep should subsume: %d < %d"
        % (optimized["subsumed_serves"], CLIENTS * len(NARROWED))
    )
    assert optimized["shared_hits"] >= 1, "the burst never shared a subplan"
    assert baseline["subsumed_serves"] == 0  # the null optimizer stays null
    print("  ok: %.1fx fewer live fetches in the concurrent phase" % ratio)

    committed = emit.load_baseline("mqo_sharing")
    if committed is not None:
        floor = committed["mqo"]["subsumed_serves"] * FLOOR
        assert optimized["subsumed_serves"] >= floor, (
            "subsumed serves regressed: %d < %.1f (baseline %d - %d%% headroom)"
            % (
                optimized["subsumed_serves"],
                floor,
                committed["mqo"]["subsumed_serves"],
                round((1 - FLOOR) * 100),
            )
        )
        pressure_floor = committed["baseline"]["concurrent_fetches"] * PRESSURE_FLOOR
        assert baseline["concurrent_fetches"] >= pressure_floor, (
            "the baseline arm's fetch pressure shrank (%d < %.1f): the "
            "workload no longer exercises the cache-churn regime"
            % (baseline["concurrent_fetches"], pressure_floor)
        )

    payload = {
        "benchmark": "mqo_sharing",
        "world": {"seed": SEED, "ads_per_host": ADS_PER_HOST},
        "clients": CLIENTS,
        "steps_per_client": steps,
        "cache_entries": CACHE_ENTRIES,
        "window_ms": WINDOW_MS,
        "fetch_reduction_ratio": round(ratio, 2),
        "baseline": {
            k: baseline[k]
            for k in ("seed_fetches", "concurrent_fetches", "total_fetches", "row_count")
        },
        "mqo": {
            k: optimized[k]
            for k in (
                "seed_fetches",
                "concurrent_fetches",
                "total_fetches",
                "row_count",
                "subsumed_serves",
                "zero_fetch_serves",
                "shared_leads",
            )
        },
    }
    emit.emit("mqo_sharing", payload)
    return payload


# -- pytest entry point --------------------------------------------------------


def test_mqo_sharing(benchmark, tmp_path):
    run_benchmark(str(tmp_path / "store"))


def main() -> int:
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        run_benchmark(tmp)
    return 0


if __name__ == "__main__":
    sys.exit(main())
