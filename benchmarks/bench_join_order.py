"""Ablation A3 — cost-based join ordering.

The three-way UR join (listings ⋈ reliability ⋈ interest) is where order
matters most: the fixed binding-feasible order probes the finance site
once per listing zip×duration combination, while the cost-based planner
reorders the dependent joins so the cheap, low-fan-out relations absorb
the probes.  Acceptance: the planner issues strictly fewer live Web
fetches than the fixed order — at least 2× fewer — while returning
byte-identical rows, under identical configs except ``optimizer``.
"""

from __future__ import annotations

import emit

from repro.core.execution import WebBaseConfig
from repro.core.webbase import WebBase

QUERY = (
    "SELECT make, model, year, price, zip, rate, safety "
    "WHERE make = 'toyota' AND safety = 'excellent' AND duration = 36"
)
TARGET_RATIO = 2.0


def _run(optimizer: str):
    webbase = WebBase.create(WebBaseConfig(max_workers=1, optimizer=optimizer))
    answer = webbase.query(QUERY)
    fetches = webbase.metrics.value("engine.fetches")
    orders = [
        " → ".join(obj.relations)
        for obj in webbase.plan(QUERY).feasible_objects
    ]
    return answer, fetches, orders


def test_join_order_ablation(benchmark):
    fixed_answer, fixed_fetches, fixed_orders = _run("off")
    planned_answer, planned_fetches, planned_orders = _run("cost")

    print("\nAblation — cost-based join ordering (query: %s)" % QUERY)
    print("  optimizer=off:  %3d live fetches  (%s)" % (fixed_fetches, "; ".join(fixed_orders)))
    print("  optimizer=cost: %3d live fetches  (%s)" % (planned_fetches, "; ".join(planned_orders)))
    print("  ratio: %.2fx fewer fetches, %d row(s) either way"
          % (fixed_fetches / planned_fetches, len(planned_answer)))

    assert sorted(map(tuple, planned_answer.rows)) == sorted(
        map(tuple, fixed_answer.rows)
    )
    assert len(planned_answer) > 0
    assert planned_fetches < fixed_fetches  # strictly fewer
    assert fixed_fetches / planned_fetches >= TARGET_RATIO

    emit.emit(
        "join_order",
        {
            "benchmark": "join_order",
            "query": QUERY,
            "fixed_fetches": int(fixed_fetches),
            "planned_fetches": int(planned_fetches),
            "fetch_ratio": round(fixed_fetches / planned_fetches, 2),
            "rows": len(planned_answer),
        },
    )

    # Steady state under the timer: the planned order, warm planner stats.
    answer = benchmark(_run, "cost")[0]
    assert sorted(map(tuple, answer.rows)) == sorted(map(tuple, planned_answer.rows))
