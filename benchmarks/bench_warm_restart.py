"""Durability — warm restart from the tiered store vs a cold start.

The store's headline claim: a webbase restarted over its bronze/silver/
gold tiers answers the running Jaguar query with **zero** live fetches —
every relation the plan needs comes off disk (``store.warm_hits``), so
the restart costs no simulated network seconds at all.  The cold run
against the same world is the baseline: same rows, dozens of live
fetches, real (simulated) network time.

Acceptance: byte-identical rows, ``warm.live_fetches == 0``, and every
silver entry the warm run serves accounted in ``store.warm_hits``.
Results land in ``BENCH_warm_restart.json`` (see ``emit.py``); CI's
``store`` job re-runs this and fails if the warm run starts fetching
live again or serves fewer relations from the store than the committed
baseline allows.
"""

from __future__ import annotations

import emit

from repro.core.execution import WebBaseConfig
from repro.core.webbase import WebBase
from repro.sites.world import build_world
from repro.vps.cache import CachePolicy

ADS_PER_HOST = 24
SEED = 1999

JAGUAR_QUERY = (
    "SELECT make, model, year, price, bb_price, safety, contact "
    "WHERE make = 'jaguar' AND year >= 1993 AND condition = 'good' "
    "AND safety IN ('good', 'excellent') AND price < bb_price"
)

#: CI fails when the warm run serves fewer relations from the store than
#: this fraction of the committed baseline (a shrinking warm set means
#: part of the plan quietly went back to the wire).
WARM_HITS_FLOOR = 0.90


def _measure(webbase: WebBase, label: str) -> dict:
    before = webbase.metrics.snapshot()["counters"]
    ctx = webbase.execution_context(label=label)
    answer = webbase.query(JAGUAR_QUERY, context=ctx)
    after = webbase.metrics.snapshot()["counters"]
    return {
        "rows": sorted(map(tuple, answer.rows)),
        "live_fetches": ctx.fetches,
        "network_seconds": round(sum(ctx.network_by_host.values()), 3),
        "warm_hits": int(after.get("store.warm_hits", 0))
        - int(before.get("store.warm_hits", 0)),
        "warm_loads": int(after.get("store.warm_loads", 0)),
        "store_bytes": sum(
            webbase.store.describe()[tier]["bytes"]
            for tier in ("bronze", "silver", "gold")
        ),
    }


def test_warm_restart(benchmark, tmp_path):
    config = WebBaseConfig(
        seed=SEED,
        ads_per_host=ADS_PER_HOST,
        cache=CachePolicy.lru(),
        store_dir=str(tmp_path / "store"),
    )
    world = build_world(seed=SEED, ads_per_host=ADS_PER_HOST)

    cold_base = WebBase(world, config=config)
    cold = _measure(cold_base, "bench-cold")
    cold_base.store.close()

    warm_base = WebBase(world, config=config)
    warm = _measure(warm_base, "bench-warm")
    warm_base.store.close()

    print("\nDurability — warm restart vs cold start (Jaguar query)")
    print(
        "  cold:  %3d live fetches, %7.3f network s, %d row(s), "
        "store grew to %d bytes"
        % (
            cold["live_fetches"],
            cold["network_seconds"],
            len(cold["rows"]),
            cold["store_bytes"],
        )
    )
    print(
        "  warm:  %3d live fetches, %7.3f network s, %d warm hit(s) "
        "over %d loaded silver entr(ies)"
        % (
            warm["live_fetches"],
            warm["network_seconds"],
            warm["warm_hits"],
            warm["warm_loads"],
        )
    )

    # Correctness first: the restart answers byte-identically.
    assert warm["rows"] == cold["rows"]
    assert len(cold["rows"]) > 0

    # The durability claim: the restart never touches the live sites.
    assert warm["live_fetches"] == 0, (
        "%d live fetches on a warm restart" % warm["live_fetches"]
    )
    assert warm["network_seconds"] == 0.0
    assert warm["warm_hits"] > 0
    assert cold["live_fetches"] > 0

    # Perf-smoke gate: the warm set must not quietly shrink.
    baseline = emit.load_baseline("warm_restart")
    if baseline is not None:
        floor = baseline["warm"]["warm_hits"] * WARM_HITS_FLOOR
        assert warm["warm_hits"] >= floor, (
            "warm hits regressed: %d < %.1f (baseline %d - %d%% headroom)"
            % (
                warm["warm_hits"],
                floor,
                baseline["warm"]["warm_hits"],
                round((1 - WARM_HITS_FLOOR) * 100),
            )
        )

    emit.emit(
        "warm_restart",
        {
            "benchmark": "warm_restart",
            "query": "example 2.1 (used Jaguars)",
            "world": {"seed": SEED, "ads_per_host": ADS_PER_HOST},
            "cold": {k: v for k, v in cold.items() if k != "rows"},
            "warm": {k: v for k, v in warm.items() if k != "rows"},
            "rows": len(cold["rows"]),
        },
    )
