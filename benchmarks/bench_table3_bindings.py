"""Table 3 — mandatory vs optional attributes of VPS relations.

Regenerates the paper's binding-set table: the mandatory attributes the
map builder inferred from widgets (radio buttons, selects without empty
options) plus designer hints, and the optional (selection − mandatory)
attributes.  The timed portion is handle derivation from the maps.
"""

from __future__ import annotations

from repro.navigation.compiler import compile_map

# The Table 3 rows our sites reproduce.  (kellys' condition is a radio
# group, hence widget-inferred mandatory; kellys' model is free text and
# needs the designer hint, exactly the case the paper calls out.)
EXPECTED_BINDINGS = {
    "newsday": ({"make"}, {"model", "featrs"}),
    "newsday_car_features": ({"url"}, set()),
    "nytimes": ({"manufacturer"}, {"model"}),
    "kellys": ({"make", "model", "condition"}, set()),
    "carfinance": ({"zip_code"}, {"duration"}),
}


def test_table3_mandatory_optional(benchmark, webbase):
    def derive_all_handles():
        compiled = {
            host: compile_map(builder.map)
            for host, builder in webbase.builders.items()
        }
        return sum(len(site.relations) for site in compiled.values())

    relation_count = benchmark(derive_all_handles)
    assert relation_count == 14

    print("\nTable 3 — Virtual physical schema bindings")
    print("  %-22s %-28s %s" % ("VPS", "Mandatory", "Optional"))
    for name in webbase.vps.relation_names:
        relation = webbase.vps.relation(name)
        for handle in relation.handles:
            print(
                "  %-22s %-28s %s"
                % (
                    name,
                    ", ".join(sorted(handle.mandatory)) or "-",
                    ", ".join(sorted(handle.selection - handle.mandatory)) or "-",
                )
            )

    for name, (mandatory, optional) in EXPECTED_BINDINGS.items():
        handle = webbase.vps.relation(name).handles[0]
        assert handle.mandatory == frozenset(mandatory), name
        assert handle.selection - handle.mandatory == frozenset(optional), name
