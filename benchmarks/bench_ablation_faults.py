"""Ablation A5 — fault rate x retry policy on an unreliable simulated Web.

The paper treats sites as always-on; real 1999 classified sites were not.
We sweep a deterministic transient-fault rate against the engine's retry
budget and report, for each cell: whether the answer stayed byte-identical
to the fault-free run, retries absorbed, fetch failures, and the simulated
network cost of the recovery (failed attempts + backoff are charged).

Expected shape: with no retries even a light fault rate loses sites; a
modest retry budget recovers modest rates completely; heavy rates degrade
to partial answers no matter the budget.
"""

from __future__ import annotations

from repro.core.execution import RetryPolicy, WebBaseConfig
from repro.core.webbase import WebBase
from repro.web.server import FaultPlan

QUERY = "SELECT make, model, price WHERE make = 'saab'"

FAULT_RATES = (0.0, 0.05, 0.10)
RETRY_BUDGETS = (1, 2, 4)


def _run_cell(rate: float, attempts: int):
    faults = FaultPlan(error_rate=rate) if rate > 0 else None
    webbase = WebBase.create(
        WebBaseConfig(faults=faults, retry=RetryPolicy(max_attempts=attempts))
    )
    # One worker keeps the per-host fault schedule reproducible cell to cell.
    ctx = webbase.execution_context(label="faults:%g/%d" % (rate, attempts), max_workers=1)
    try:
        answer = webbase.query(QUERY, context=ctx)
    except Exception:
        answer = None
    return answer, ctx


def test_ablation_faults_grid(webbase):
    clean = webbase.query(QUERY)

    print("\nAblation — fault rate x retry budget (query: %s)" % QUERY)
    print("  %6s %9s %10s %8s %9s %10s" % (
        "rate", "attempts", "identical", "retries", "failures", "net (s)"))
    recovered = {}
    for rate in FAULT_RATES:
        for attempts in RETRY_BUDGETS:
            answer, ctx = _run_cell(rate, attempts)
            identical = answer is not None and answer.rows == clean.rows
            recovered[(rate, attempts)] = identical
            print("  %6.2f %9d %10s %8d %9d %10.2f" % (
                rate, attempts, "yes" if identical else "NO",
                ctx.retries, len(ctx.failures), ctx.network_seconds_total))

    # No faults: every budget is trivially identical (and costs no retries).
    assert all(recovered[(0.0, a)] for a in RETRY_BUDGETS)
    # A modest budget fully absorbs modest fault rates...
    assert recovered[(0.05, 4)] and recovered[(0.10, 4)]
    # ...but without retries, faulted fetches are lost.
    assert not recovered[(0.05, 1)] and not recovered[(0.10, 1)]


def test_retries_cost_simulated_time():
    """Recovery is not free: the faulted-and-recovered run charges the
    failed attempts and backoff to the network clock."""
    clean_answer, clean_ctx = _run_cell(0.0, 4)
    faulted_answer, faulted_ctx = _run_cell(0.10, 4)
    assert faulted_answer.rows == clean_answer.rows
    assert faulted_ctx.retries > 0
    assert faulted_ctx.network_seconds_total > clean_ctx.network_seconds_total
    print(
        "\n  fault-free net %.2fs vs recovered net %.2fs (%d retries absorbed)"
        % (
            clean_ctx.network_seconds_total,
            faulted_ctx.network_seconds_total,
            faulted_ctx.retries,
        )
    )
