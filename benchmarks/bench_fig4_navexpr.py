"""Figure 4 — the compiled navigation expressions for the Newsday site.

Times the map-to-calculus compilation (the paper: "derived automatically
directly from that map in linear time in the size of the map") and then
executes the expressions for the figure's scenario: retrieve used-car ads
given Make (branching into form f2 when the site demands refinement) and
given Make+Model.
"""

from __future__ import annotations

from repro.core.sessions import map_newsday
from repro.navigation.compiler import compile_map
from repro.navigation.executor import NavigationExecutor


def test_fig4_navigation_expressions(benchmark, world):
    builder = map_newsday(world)

    site = benchmark(compile_map, builder.map)

    print("\nFigure 4 — the navigation process of retrieving used car ads")
    print(site.program.pretty())

    executor = NavigationExecutor(world.server)
    executor.add_site(site)

    # Make+Model: f1 then f2 (ford has too many ads for a direct answer).
    rows = executor.fetch("newsday", {"make": "ford", "model": "escort"})
    expected = world.dataset.ads_for("www.newsday.com", make="ford", model="escort")
    assert len(rows) == len(expected)

    # Make only: the choice resolves per page shape; the unbound Model
    # select is enumerated behind the scenes.
    rows = executor.fetch("newsday", {"make": "ford"})
    assert len(rows) == len(world.dataset.ads_for("www.newsday.com", make="ford"))

    # Detail expression: Url is the only mandatory attribute.
    detail = executor.fetch("newsday_car_features", {"url": rows[0]["url"]})
    assert len(detail) == 1


def test_fig4_compilation_is_linear(world):
    """Compilation cost grows linearly-ish with map size: compiling twelve
    site maps costs about twelve times one map, not quadratically more."""
    import time

    from repro.core.sessions import build_all_builders

    builders = build_all_builders(world)
    single = min(builders.values(), key=lambda b: len(b.map.nodes))

    start = time.perf_counter()
    for _ in range(10):
        compile_map(single.map)
    single_cost = (time.perf_counter() - start) / 10

    start = time.perf_counter()
    for builder in builders.values():
        compile_map(builder.map)
    all_cost = time.perf_counter() - start

    assert all_cost < single_cost * len(builders) * 20
