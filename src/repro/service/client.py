"""The service client library: blocking, line-oriented, structured errors.

:class:`ServiceClient` speaks :mod:`repro.service.protocol` over one TCP
connection.  Server-side rejections surface as typed exceptions carrying
the wire error's ``code`` and ``retriable`` flag — an ``OVERLOADED`` shed
becomes :class:`Overloaded` (retry with backoff), an expired deadline
:class:`DeadlineExceededError` (do not retry) — so callers dispatch on
type instead of parsing messages.  Pages stream through :meth:`stream`;
:meth:`query` collects them into one :class:`QueryOutcome`.
"""

from __future__ import annotations

import socket
import time
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.errors import WebBaseError
from repro.service import protocol
from repro.service.protocol import ProtocolError


class ServiceError(WebBaseError):
    """A structured error frame from the server."""

    code = protocol.E_INTERNAL

    def __init__(self, message: str, code: str | None = None, retriable: bool | None = None) -> None:
        super().__init__(message)
        if code is not None:
            self.code = code
        self.retriable = (
            retriable
            if retriable is not None
            else self.code in protocol.RETRIABLE_CODES
        )


class Overloaded(ServiceError):
    """The admission queue was full; the request was shed.  Retriable."""

    code = protocol.E_OVERLOADED


class ClientLimited(ServiceError):
    """This connection holds too many in-flight queries.  Retriable."""

    code = protocol.E_CLIENT_LIMIT


class ServiceShuttingDown(ServiceError):
    """The server is draining; try another replica.  Retriable."""

    code = protocol.E_SHUTTING_DOWN


class DeadlineExceededError(ServiceError):
    """The request's deadline expired server-side.  Not retriable."""

    code = protocol.E_DEADLINE_EXCEEDED


_ERROR_TYPES = {
    cls.code: cls
    for cls in (Overloaded, ClientLimited, ServiceShuttingDown, DeadlineExceededError)
}


def error_for(code: str, message: str, retriable: bool) -> ServiceError:
    """The typed exception for one wire error frame."""
    cls = _ERROR_TYPES.get(code, ServiceError)
    return cls(message, code=code, retriable=retriable)


@dataclass
class Page:
    """One streamed page of rows."""

    seq: int
    schema: list[str]
    rows: list[tuple]
    source: str = ""


@dataclass
class QueryOutcome:
    """A fully collected streamed answer."""

    schema: list[str]
    rows: list[tuple]
    pages: int
    stats: dict[str, Any] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.rows)


class ServiceClient:
    """One connection to a :class:`~repro.service.server.WebBaseService`.

    ``connect_timeout`` is a *retry window*: the constructor keeps
    attempting to connect until it succeeds or the window closes, so a
    client started alongside a server that is still mapping its world by
    example simply waits for it to come up.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8571,
        timeout: float = 60.0,
        connect_timeout: float = 5.0,
    ) -> None:
        self.host = host
        self.port = port
        self._next_id = 0
        deadline = time.monotonic() + max(0.0, connect_timeout)
        while True:
            try:
                self._sock = socket.create_connection((host, port), timeout=timeout)
                break
            except OSError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.1)
        self._sock.settimeout(timeout)
        self._reader = self._sock.makefile("rb")

    # -- plumbing ------------------------------------------------------------

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _send(self, payload: dict[str, Any]) -> None:
        self._sock.sendall(protocol.encode(payload))

    def _recv(self, request_id: int) -> dict[str, Any]:
        """The next frame for ``request_id`` (frames for other ids — e.g.
        abandoned requests on a shared connection — are skipped)."""
        while True:
            line = self._reader.readline(protocol.MAX_LINE_BYTES + 2)
            if not line:
                raise ConnectionError("server closed the connection")
            frame = protocol.decode_line(line)
            if frame.get("id") == request_id:
                return frame

    def _request_id(self) -> int:
        self._next_id += 1
        return self._next_id

    # -- operations ----------------------------------------------------------

    def ping(self) -> float:
        """Round-trip one ping; returns the wall seconds it took."""
        request_id = self._request_id()
        started = time.monotonic()
        self._send({"id": request_id, "op": "ping"})
        frame = self._recv(request_id)
        if frame.get("type") != "pong":
            raise ProtocolError("expected pong, got %r" % frame.get("type"))
        return time.monotonic() - started

    def metrics(self) -> dict[str, Any]:
        """The server's full metrics snapshot."""
        request_id = self._request_id()
        self._send({"id": request_id, "op": "metrics"})
        frame = self._recv(request_id)
        if frame.get("type") != "metrics":
            raise ProtocolError("expected metrics, got %r" % frame.get("type"))
        return frame["metrics"]

    def stream(
        self,
        text: str,
        deadline_ms: float | None = None,
        page_size: int | None = None,
    ) -> Iterator[Page]:
        """Issue one query and yield its pages as the server streams them.

        Raises the typed :class:`ServiceError` subclass on a terminal
        error frame (pages already yielded remain valid partial results).
        The generator ends after the terminal ``result`` frame; its stats
        land on the generator's ``StopIteration`` value via :meth:`query`.
        """
        request_id = self._request_id()
        payload: dict[str, Any] = {"id": request_id, "op": "query", "text": text}
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        if page_size is not None:
            payload["page_size"] = page_size
        self._send(payload)
        while True:
            frame = self._recv(request_id)
            kind = frame.get("type")
            if kind == "page":
                yield Page(
                    seq=int(frame["seq"]),
                    schema=list(frame["schema"]),
                    rows=[tuple(row) for row in frame["rows"]],
                    source=str(frame.get("source", "")),
                )
            elif kind == "result":
                stats = {
                    k: v for k, v in frame.items() if k not in ("id", "type")
                }
                return stats  # noqa: B901 - surfaced via StopIteration.value
            elif kind == "error":
                raise error_for(
                    str(frame.get("code", protocol.E_INTERNAL)),
                    str(frame.get("message", "")),
                    bool(frame.get("retriable", False)),
                )
            else:
                raise ProtocolError("unexpected frame type %r" % kind)

    def query(
        self,
        text: str,
        deadline_ms: float | None = None,
        page_size: int | None = None,
    ) -> QueryOutcome:
        """Issue one query and collect the full streamed answer."""
        schema: list[str] = []
        rows: list[tuple] = []
        pages = 0
        stream = self.stream(text, deadline_ms=deadline_ms, page_size=page_size)
        while True:
            try:
                page = next(stream)
            except StopIteration as stop:
                stats = stop.value or {}
                break
            schema = page.schema
            rows.extend(page.rows)
            pages += 1
        return QueryOutcome(schema=schema, rows=rows, pages=pages, stats=stats)
