"""The service client library: blocking, line-oriented, structured errors.

:class:`ServiceClient` speaks :mod:`repro.service.protocol` over one TCP
connection.  Server-side rejections surface as typed exceptions carrying
the wire error's ``code`` and ``retriable`` flag — an ``OVERLOADED`` shed
becomes :class:`Overloaded` (retry with backoff), an expired deadline
:class:`DeadlineExceededError` (do not retry) — so callers dispatch on
type instead of parsing messages.  Pages stream through :meth:`stream`;
:meth:`query` collects them into one :class:`QueryOutcome`.
"""

from __future__ import annotations

import socket
import time
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.errors import WebBaseError
from repro.service import protocol
from repro.service.protocol import ProtocolError


class ServiceError(WebBaseError):
    """A structured error frame from the server.

    ``retry_after_ms`` carries a router's admission-control hint (when
    to retry an ``OVERLOADED`` shed); ``address`` carries a ``REDIRECT``
    target.  Both default to absent — a pre-cluster server never sends
    them, and the client tolerates that skew by construction."""

    code = protocol.E_INTERNAL

    def __init__(
        self,
        message: str,
        code: str | None = None,
        retriable: bool | None = None,
        retry_after_ms: float | None = None,
        address: tuple[str, int] | None = None,
    ) -> None:
        super().__init__(message)
        if code is not None:
            self.code = code
        self.retriable = (
            retriable
            if retriable is not None
            else self.code in protocol.RETRIABLE_CODES
        )
        self.retry_after_ms = retry_after_ms
        self.address = address


class Overloaded(ServiceError):
    """The admission queue was full; the request was shed.  Retriable."""

    code = protocol.E_OVERLOADED


class ClientLimited(ServiceError):
    """This connection holds too many in-flight queries.  Retriable."""

    code = protocol.E_CLIENT_LIMIT


class ServiceShuttingDown(ServiceError):
    """The server is draining; try another replica.  Retriable."""

    code = protocol.E_SHUTTING_DOWN


class DeadlineExceededError(ServiceError):
    """The request's deadline expired server-side.  Not retriable."""

    code = protocol.E_DEADLINE_EXCEEDED


class Redirected(ServiceError):
    """The router wants us to ask ``address`` directly.  Retriable there."""

    code = protocol.E_REDIRECT


_ERROR_TYPES = {
    cls.code: cls
    for cls in (
        Overloaded,
        ClientLimited,
        ServiceShuttingDown,
        DeadlineExceededError,
        Redirected,
    )
}


def error_for(
    code: str,
    message: str,
    retriable: bool,
    retry_after_ms: float | None = None,
    address: tuple[str, int] | None = None,
) -> ServiceError:
    """The typed exception for one wire error frame."""
    cls = _ERROR_TYPES.get(code, ServiceError)
    return cls(
        message,
        code=code,
        retriable=retriable,
        retry_after_ms=retry_after_ms,
        address=address,
    )


def error_from_frame(frame: dict[str, Any]) -> ServiceError:
    """Decode one wire ``error`` frame into its typed exception,
    tolerating absent (older peer) and unknown (newer peer) fields."""
    retry_after = frame.get("retry_after_ms")
    address = frame.get("address")
    return error_for(
        str(frame.get("code", protocol.E_INTERNAL)),
        str(frame.get("message", "")),
        bool(frame.get("retriable", False)),
        retry_after_ms=(
            float(retry_after) if isinstance(retry_after, (int, float)) else None
        ),
        address=(
            (str(address[0]), int(address[1]))
            if isinstance(address, (list, tuple)) and len(address) == 2
            else None
        ),
    )


@dataclass
class Page:
    """One streamed page of rows."""

    seq: int
    schema: list[str]
    rows: list[tuple]
    source: str = ""


@dataclass
class QueryOutcome:
    """A fully collected streamed answer."""

    schema: list[str]
    rows: list[tuple]
    pages: int
    stats: dict[str, Any] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.rows)


@dataclass
class Delta:
    """One pushed row-level change of a standing query's answer."""

    seq: int
    schema: list[str]
    added: list[tuple]
    removed: list[tuple]
    host: str
    revision: int
    reason: str


@dataclass
class Subscription:
    """One live standing query: the request id frames arrive under, the
    row set maintained by applying received deltas, and the last seq."""

    request_id: int
    text: str
    schema: list[str]
    rows: set
    seq: int
    resumed: bool


class ServiceClient:
    """One connection to a :class:`~repro.service.server.WebBaseService`.

    ``connect_timeout`` is a *retry window*: the constructor keeps
    attempting to connect until it succeeds or the window closes, so a
    client started alongside a server that is still mapping its world by
    example simply waits for it to come up.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8571,
        timeout: float = 60.0,
        connect_timeout: float = 5.0,
        clock: Any = None,
        sleep: Any = None,
    ) -> None:
        self.host = host
        self.port = port
        self._next_id = 0
        # The backoff clock is injectable so retry tests never sleep real
        # wall time: ``clock`` replaces ``time.monotonic`` and ``sleep``
        # replaces ``time.sleep`` in the connect loop and in
        # :meth:`query_retry`'s backoff.
        self._clock = clock or time.monotonic
        self._sleep = sleep or time.sleep
        # Push frames for live subscriptions that arrive while another
        # request is being awaited on this connection are parked here
        # (frames for abandoned ids are still dropped).
        self._subscribed_ids: set[int] = set()
        self._parked: dict[int, list[dict[str, Any]]] = {}
        deadline = self._clock() + max(0.0, connect_timeout)
        while True:
            try:
                self._sock = socket.create_connection((host, port), timeout=timeout)
                break
            except OSError:
                if self._clock() >= deadline:
                    raise
                self._sleep(0.1)
        self._sock.settimeout(timeout)
        self._timeout = timeout
        # Hand-rolled line buffering instead of sock.makefile: a timed-out
        # BufferedReader is permanently poisoned, while a plain buffer
        # keeps any partial line for the next (deadline-bounded) read —
        # which is exactly what next_delta's bounded wait needs.
        self._buf = b""

    # -- plumbing ------------------------------------------------------------

    def close(self) -> None:
        """Orderly disconnect: half-close the write side, then wait for
        the server to close its end.  The server detaches this
        connection's subscriptions *before* closing, so once this
        returns the service no longer counts us as a live subscriber —
        a maintenance sweep after ``close()`` will not advance a
        standing query's persisted snapshot on our behalf."""
        try:
            self._sock.shutdown(socket.SHUT_WR)
            self._sock.settimeout(5.0)
            while self._sock.recv(65536):
                pass
        except OSError:
            pass
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _send(self, payload: dict[str, Any]) -> None:
        self._sock.sendall(protocol.encode(payload))

    def _readline(self, deadline: float | None) -> bytes | None:
        """One newline-terminated frame line, or ``None`` when ``deadline``
        passes first.  A timeout never tears a frame: partial bytes stay
        buffered for the next call."""
        while b"\n" not in self._buf:
            if len(self._buf) > protocol.MAX_LINE_BYTES:
                raise ProtocolError(
                    "frame exceeds %d bytes" % protocol.MAX_LINE_BYTES
                )
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return None
                self._sock.settimeout(remaining)
            try:
                chunk = self._sock.recv(65536)
            except socket.timeout:
                if deadline is None:
                    raise
                return None
            finally:
                if deadline is not None:
                    self._sock.settimeout(self._timeout)
            if not chunk:
                raise ConnectionError("server closed the connection")
            self._buf += chunk
        line, _, self._buf = self._buf.partition(b"\n")
        return line

    def _recv(
        self, request_id: int, timeout: float | None = None
    ) -> dict[str, Any] | None:
        """The next frame for ``request_id`` (``None`` if ``timeout``
        elapses first).

        Frames for a live subscription's id are parked (delivered on its
        next :meth:`next_delta`); frames for any other id — abandoned
        requests on a shared connection — are skipped."""
        parked = self._parked.get(request_id)
        if parked:
            return parked.pop(0)
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            line = self._readline(deadline)
            if line is None:
                return None
            frame = protocol.decode_line(line)
            frame_id = frame.get("id")
            if frame_id == request_id:
                return frame
            if frame_id in self._subscribed_ids:
                self._parked.setdefault(frame_id, []).append(frame)

    def _request_id(self) -> int:
        self._next_id += 1
        return self._next_id

    # -- operations ----------------------------------------------------------

    def ping(self) -> float:
        """Round-trip one ping; returns the wall seconds it took."""
        request_id = self._request_id()
        started = time.monotonic()
        self._send({"id": request_id, "op": "ping"})
        frame = self._recv(request_id)
        if frame.get("type") != "pong":
            raise ProtocolError("expected pong, got %r" % frame.get("type"))
        return time.monotonic() - started

    def metrics(self) -> dict[str, Any]:
        """The server's full metrics snapshot."""
        request_id = self._request_id()
        self._send({"id": request_id, "op": "metrics"})
        frame = self._recv(request_id)
        if frame.get("type") != "metrics":
            raise ProtocolError("expected metrics, got %r" % frame.get("type"))
        return frame["metrics"]

    def hello(self) -> dict[str, Any]:
        """Identify the peer: its protocol version, shard id, and role.

        A pre-cluster server does not know the op and answers with a
        ``BAD_REQUEST`` error — that skew is folded into a synthetic
        version-1 welcome instead of an exception, so callers can probe
        any generation of server with one call."""
        request_id = self._request_id()
        self._send({"id": request_id, "op": "hello"})
        frame = self._recv(request_id)
        if frame.get("type") == "error":
            return {"protocol_version": 1, "shard_id": "", "role": "service"}
        if frame.get("type") != "welcome":
            raise ProtocolError("expected welcome, got %r" % frame.get("type"))
        return {k: v for k, v in frame.items() if k not in ("id", "type")}

    def status(self) -> dict[str, Any]:
        """The peer's status object (cluster topology when it's a router)."""
        request_id = self._request_id()
        self._send({"id": request_id, "op": "status"})
        frame = self._recv(request_id)
        if frame.get("type") == "error":
            raise error_from_frame(frame)
        if frame.get("type") != "status":
            raise ProtocolError("expected status, got %r" % frame.get("type"))
        return dict(frame.get("status") or {})

    def adopt(self, store_dir: str) -> dict[str, Any]:
        """Ask a worker to warm itself from a dead sibling's store
        directory (shard takeover).  Returns the adoption stats."""
        request_id = self._request_id()
        self._send({"id": request_id, "op": "adopt", "text": store_dir})
        frame = self._recv(request_id)
        if frame.get("type") == "error":
            raise error_from_frame(frame)
        if frame.get("type") != "result":
            raise ProtocolError("expected result, got %r" % frame.get("type"))
        return {k: v for k, v in frame.items() if k not in ("id", "type")}

    def mutate(self, spec: str) -> dict[str, Any]:
        """Apply a simulated-Web churn mutation server-side (gated behind
        ``ServiceConfig.allow_world_mutation``; test/bench harness only)."""
        request_id = self._request_id()
        self._send({"id": request_id, "op": "mutate", "text": spec})
        frame = self._recv(request_id)
        if frame.get("type") == "error":
            raise error_from_frame(frame)
        if frame.get("type") != "result":
            raise ProtocolError("expected result, got %r" % frame.get("type"))
        return {k: v for k, v in frame.items() if k not in ("id", "type")}

    def drain(self) -> dict[str, Any]:
        """Ask the peer to drain gracefully; returns its final status."""
        request_id = self._request_id()
        self._send({"id": request_id, "op": "drain"})
        frame = self._recv(request_id)
        if frame.get("type") == "error":
            raise error_from_frame(frame)
        if frame.get("type") != "status":
            raise ProtocolError("expected status, got %r" % frame.get("type"))
        return dict(frame.get("status") or {})

    def stream(
        self,
        text: str,
        deadline_ms: float | None = None,
        page_size: int | None = None,
        redirect_ok: bool = False,
        mqo_fp: str = "",
    ) -> Iterator[Page]:
        """Issue one query and yield its pages as the server streams them.

        Raises the typed :class:`ServiceError` subclass on a terminal
        error frame (pages already yielded remain valid partial results).
        The generator ends after the terminal ``result`` frame; its stats
        land on the generator's ``StopIteration`` value via :meth:`query`.
        With ``redirect_ok`` a cluster router may answer with a
        :class:`Redirected` naming the owning shard instead of proxying.
        ``mqo_fp`` stamps a precomputed plan fingerprint onto the request
        (a cluster router forwards it for fingerprint-sticky co-routing);
        an old server ignores the field.
        """
        request_id = self._request_id()
        payload: dict[str, Any] = {"id": request_id, "op": "query", "text": text}
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        if page_size is not None:
            payload["page_size"] = page_size
        if redirect_ok:
            payload["redirect_ok"] = True
        if mqo_fp:
            payload["mqo_fp"] = mqo_fp
        self._send(payload)
        while True:
            frame = self._recv(request_id)
            kind = frame.get("type")
            if kind == "page":
                yield Page(
                    seq=int(frame["seq"]),
                    schema=list(frame["schema"]),
                    rows=[tuple(row) for row in frame["rows"]],
                    source=str(frame.get("source", "")),
                )
            elif kind == "result":
                stats = {
                    k: v for k, v in frame.items() if k not in ("id", "type")
                }
                return stats  # noqa: B901 - surfaced via StopIteration.value
            elif kind == "error":
                raise error_from_frame(frame)
            else:
                raise ProtocolError("unexpected frame type %r" % kind)

    # -- standing queries ----------------------------------------------------

    def subscribe(
        self,
        text: str,
        page_size: int | None = None,
        resume: bool = False,
    ) -> Subscription:
        """Register a standing query and collect its initial snapshot.

        A plain subscribe streams the snapshot as ``page`` frames before
        the ``subscribed`` ack.  Pass ``resume=True`` when this client
        already holds the last state it was delivered (reconnecting after
        a service restart): if the registration survived in the store, no
        pages are resent and the rows missed while away arrive as the
        first delta — fetch it with :meth:`next_delta`.
        """
        request_id = self._request_id()
        payload: dict[str, Any] = {"id": request_id, "op": "subscribe", "text": text}
        if page_size is not None:
            payload["page_size"] = page_size
        if resume:
            payload["resume"] = True
        self._send(payload)
        schema: list[str] = []
        rows: set = set()
        while True:
            frame = self._recv(request_id)
            kind = frame.get("type")
            if kind == "page":
                schema = list(frame["schema"])
                rows.update(tuple(row) for row in frame["rows"])
            elif kind == "subscribed":
                self._subscribed_ids.add(request_id)
                return Subscription(
                    request_id=request_id,
                    text=text,
                    schema=schema,
                    rows=rows,
                    seq=int(frame["seq"]),
                    resumed=bool(frame["resumed"]),
                )
            elif kind == "error":
                raise error_from_frame(frame)
            else:
                raise ProtocolError("unexpected frame type %r" % kind)

    def next_delta(
        self, subscription: Subscription, timeout: float | None = None
    ) -> Delta | None:
        """Block for the next pushed delta (or ``None`` on timeout) and
        apply it to ``subscription.rows`` — the set therefore always
        equals the server's last persisted snapshot for this query."""
        frame = self._recv(subscription.request_id, timeout=timeout)
        if frame is None:
            return None
        kind = frame.get("type")
        if kind == "error":
            raise error_from_frame(frame)
        if kind != "delta":
            raise ProtocolError("expected delta, got %r" % kind)
        delta = Delta(
            seq=int(frame["seq"]),
            schema=list(frame["schema"]),
            added=[tuple(row) for row in frame["added"]],
            removed=[tuple(row) for row in frame["removed"]],
            host=str(frame.get("host", "")),
            revision=int(frame.get("revision", 0)),
            reason=str(frame.get("reason", "")),
        )
        subscription.schema = delta.schema
        subscription.rows.difference_update(delta.removed)
        subscription.rows.update(delta.added)
        subscription.seq = delta.seq
        return delta

    def unsubscribe(self, subscription: Subscription) -> None:
        """Deregister a standing query (drops its persisted registration
        once no other subscriber holds it)."""
        request_id = self._request_id()
        self._send(
            {"id": request_id, "op": "unsubscribe", "text": subscription.text}
        )
        frame = self._recv(request_id)
        if frame.get("type") != "unsubscribed":
            raise ProtocolError(
                "expected unsubscribed, got %r" % frame.get("type")
            )
        self._subscribed_ids.discard(subscription.request_id)
        self._parked.pop(subscription.request_id, None)

    def sweep(self, host: str | None = None) -> dict[str, Any]:
        """Run one server-side maintenance sweep; deltas it triggers are
        pushed to subscribers before the returned stats frame is sent."""
        request_id = self._request_id()
        self._send({"id": request_id, "op": "sweep", "text": host or ""})
        frame = self._recv(request_id)
        kind = frame.get("type")
        if kind == "error":
            raise error_from_frame(frame)
        if kind != "result":
            raise ProtocolError("expected result, got %r" % kind)
        return {k: v for k, v in frame.items() if k not in ("id", "type")}

    def query(
        self,
        text: str,
        deadline_ms: float | None = None,
        page_size: int | None = None,
        redirect_ok: bool = False,
    ) -> QueryOutcome:
        """Issue one query and collect the full streamed answer."""
        schema: list[str] = []
        rows: list[tuple] = []
        pages = 0
        stream = self.stream(
            text,
            deadline_ms=deadline_ms,
            page_size=page_size,
            redirect_ok=redirect_ok,
        )
        while True:
            try:
                page = next(stream)
            except StopIteration as stop:
                stats = stop.value or {}
                break
            schema = page.schema
            rows.extend(page.rows)
            pages += 1
        return QueryOutcome(schema=schema, rows=rows, pages=pages, stats=stats)

    def query_retry(
        self,
        text: str,
        deadline_ms: float | None = None,
        page_size: int | None = None,
        retries: int = 5,
        backoff_seconds: float = 0.05,
        follow_redirects: bool = True,
    ) -> QueryOutcome:
        """:meth:`query` with typed-retriable retry.

        An ``OVERLOADED``/``CLIENT_LIMIT``/``SHUTTING_DOWN`` shed is
        retried up to ``retries`` times; when the error frame carries a
        ``retry_after_ms`` admission hint the client honors it exactly,
        otherwise the backoff doubles from ``backoff_seconds``.  Both
        paths go through the injectable ``sleep`` so tests never pay
        real wall time.  A :class:`Redirected` answer is followed by
        opening a direct connection to the named shard (once per
        attempt); the redirect itself consumes no retry budget."""
        attempt = 0
        while True:
            try:
                return self.query(
                    text,
                    deadline_ms=deadline_ms,
                    page_size=page_size,
                    redirect_ok=follow_redirects,
                )
            except Redirected as exc:
                if not follow_redirects or exc.address is None:
                    raise
                with ServiceClient(
                    exc.address[0],
                    exc.address[1],
                    timeout=self._timeout,
                    clock=self._clock,
                    sleep=self._sleep,
                ) as direct:
                    return direct.query(
                        text, deadline_ms=deadline_ms, page_size=page_size
                    )
            except ServiceError as exc:
                if not exc.retriable or attempt >= retries:
                    raise
                if exc.retry_after_ms is not None:
                    self._sleep(max(0.0, exc.retry_after_ms / 1000.0))
                else:
                    self._sleep(backoff_seconds * (2.0 ** attempt))
                attempt += 1
