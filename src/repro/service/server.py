"""The webbase query server: admission control, deadlines, streaming.

One :class:`WebBaseService` owns one :class:`~repro.core.webbase.WebBase`
— its cross-query result cache, its metrics registry, its navigation maps
— and serves it to many concurrent clients over TCP (stdlib only:
``socketserver`` + ``threading``).  The expensive resource is the bounded
pool of live source accesses; the service's job is to make N clients
share it gracefully rather than degrade everyone:

* **bounded admission queue with load shedding** — a query is either
  admitted to a FIFO queue drained by ``config.workers`` executor threads,
  or (queue full) *shed* with a retriable ``OVERLOADED`` error.  Shedding
  keeps latency bounded for admitted work instead of letting every
  client's tail grow without bound;
* **per-client concurrency limits** — one connection may hold at most
  ``config.per_client_limit`` queries in flight (``CLIENT_LIMIT``,
  retriable), so a single greedy client cannot monopolize the queue;
* **per-request deadlines** — the remaining budget (queue wait counts!)
  propagates into the query's
  :class:`~repro.core.execution.ExecutionContext`, which re-checks it
  before every fetch and between retries and cancels outstanding worker
  fetches on expiry (``DEADLINE_EXCEEDED``, not retriable);
* **streaming results** — rows are sent in pages as each maximal object
  completes (deduplicated across objects), so a ``More``-loop query
  reaches the client incrementally instead of buffering the relation;
* **graceful drain** — :meth:`WebBaseService.shutdown` stops accepting,
  rejects new queries with ``SHUTTING_DOWN``, finishes in-flight work,
  and flushes a final metrics snapshot;
* **standing queries** — a client ``subscribe``s a query once and then
  receives ``delta`` frames (row added/removed) whenever a maintenance
  sweep's change-data-capture event moves the answer.  The
  :class:`StandingQueryRegistry` listens on the webbase's
  :class:`~repro.store.cdc.DeltaFeed`, re-evaluates only the queries
  whose dependency hosts changed, and — when a tiered store is attached
  — persists each registration and its last-delivered snapshot to gold,
  so a restarted service resumes a resubscribing client with exactly the
  deltas it missed;
* **service metrics** — queue depth, admitted/shed/limited counts and
  per-stage latency histograms (queue wait, execution, total — with
  p50/p95/p99) feed the webbase's own
  :class:`~repro.core.metrics.MetricsRegistry`, so cache and engine
  counters reconcile with service traffic in one place.
"""

from __future__ import annotations

import queue as queue_mod
import socketserver
import threading
from dataclasses import dataclass
from time import monotonic
from typing import Any

from repro.core.execution import DeadlineExceeded, ExecutionContext
from repro.core.webbase import WebBase
from repro.service import protocol
from repro.service.protocol import (
    E_BAD_REQUEST,
    E_CLIENT_LIMIT,
    E_DEADLINE_EXCEEDED,
    E_INTERNAL,
    E_OVERLOADED,
    E_SHUTTING_DOWN,
    ProtocolError,
    Request,
)
from repro.relational.relation import Relation
from repro.ur.planner import PlanError
from repro.ur.query import QueryParseError, parse_query


class OperationRejected(Exception):
    """An op the service refuses by policy (maps to ``BAD_REQUEST``)."""


@dataclass(frozen=True)
class ServiceConfig:
    """Sizing and policy knobs of one service instance."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = pick an ephemeral port (see WebBaseService.address)
    queue_limit: int = 16  # bounded admission queue; beyond this, shed
    workers: int = 4  # executor threads draining the queue
    per_client_limit: int = 2  # concurrent queries per connection
    default_deadline_ms: float | None = None  # applied when a request has none
    page_size: int = 50  # rows per streamed page (request may override)
    drain_timeout_seconds: float = 30.0  # graceful-drain wait bound
    # Cluster membership: a non-empty shard id is stamped onto result
    # frames so clients and routers can see which shard served them.
    shard_id: str = ""
    # Whether the `mutate` op (simulated-Web churn control, used by the
    # cluster test/bench harness to keep every worker's world identical)
    # is accepted.  Off by default: a public-facing service must not let
    # clients edit the world.
    allow_world_mutation: bool = False
    # Multi-query batching window (milliseconds): with the webbase's MQO
    # layer on, dispatched queries wait up to this long so that
    # near-simultaneous arrivals release together and their identical
    # subplan fingerprints coalesce in the shared registry.  0 disables
    # the window (sharing still happens for naturally overlapping work).
    mqo_window_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.queue_limit < 1:
            raise ValueError("queue_limit must be >= 1; got %r" % self.queue_limit)
        if self.workers < 1:
            raise ValueError("workers must be >= 1; got %r" % self.workers)
        if self.per_client_limit < 1:
            raise ValueError(
                "per_client_limit must be >= 1; got %r" % self.per_client_limit
            )
        if self.page_size < 1:
            raise ValueError("page_size must be >= 1; got %r" % self.page_size)
        if self.mqo_window_ms < 0:
            raise ValueError(
                "mqo_window_ms must be >= 0; got %r" % self.mqo_window_ms
            )


@dataclass
class _Job:
    """One admitted query, waiting for (or on) an executor thread."""

    handler: "_ClientHandler"
    request: Request
    admitted_at: float
    deadline_at: float | None  # wall (monotonic) expiry; queue wait counts


class StandingQuery:
    """One registered standing query and its last delivered state."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.schema: list[str] = []
        self.rows: set[tuple] = set()
        self.deps: set[str] = set()  # hosts the answer was derived from
        self.seq = 0
        self.has_state = False  # a snapshot (live or persisted) exists
        self.subscribers: list[tuple[Any, int]] = []  # (handler, request id)


class StandingQueryRegistry:
    """Re-evaluates standing queries against CDC deltas and pushes rows.

    The contract per standing query: the subscriber's row set after
    applying every received frame equals a fresh evaluation — no
    duplicates, no misses.  Each refresh persists the new snapshot to
    the gold tier *before* delivering the delta, so after an orderly
    shutdown the persisted snapshot equals the client's state and a
    resubscribe resumes with exactly the diff against it.  Queries with
    no live subscribers are left un-refreshed on sweeps for the same
    reason: their snapshot must keep describing what their (absent)
    client last saw.
    """

    def __init__(self, webbase: WebBase, metrics: Any) -> None:
        self._webbase = webbase
        self._metrics = metrics
        self._lock = threading.Lock()
        self._queries: dict[str, StandingQuery] = {}
        self.deltas_sent = 0
        store = webbase.store
        if store is not None:
            for text, snapshot in store.standing_queries().items():
                standing = StandingQuery(text)
                if snapshot is not None:
                    standing.schema = list(snapshot["schema"])
                    standing.rows = {tuple(row) for row in snapshot["rows"]}
                    standing.seq = int(snapshot["seq"])
                    standing.has_state = True
                self._queries[text] = standing

    def _evaluate(self, text: str) -> tuple[Any, set[str]]:
        """One fresh evaluation, returning the answer and its host deps."""
        ctx = self._webbase.execution_context(label="standing:%s" % text)
        answer = self._webbase.query(text, context=ctx)
        hosts = {
            span.attrs.get("host", "") for span in ctx.root.spans("fetch")
        } - {""}
        return answer, hosts

    def _persist(self, standing: StandingQuery) -> None:
        store = self._webbase.store
        if store is None:
            return
        revisions = {
            host: self._webbase.cache.revision(host) for host in sorted(standing.deps)
        }
        store.persist_snapshot(
            standing.text, standing.schema, sorted(standing.rows), revisions, standing.seq
        )

    def subscribe(self, handler: Any, request: Request, page_size: int) -> None:
        """Evaluate, snapshot (or resume), register, ack — and stream.

        Sends every frame itself because the ack must precede any
        catch-up ``delta``.  A plain subscribe receives the standing
        query's *delivered* state as snapshot pages — that is the state
        deltas are diffed against, so a second subscriber starts exactly
        where the first one currently stands.  A ``resume`` subscribe
        (the client claims it holds the last delivered state, i.e. the
        persisted snapshot) skips the pages.  Either way, if the fresh
        evaluation has moved past the delivered state, the diff goes out
        as one delta to every subscriber, immediately after the ack.
        """
        text = request.text
        answer, hosts = self._evaluate(text)
        fresh_rows = set(answer.rows)
        store = self._webbase.store
        with self._lock:
            standing = self._queries.get(text)
            had_state = standing is not None and standing.has_state
            resumed = request.resume and had_state
            if standing is None:
                standing = self._queries[text] = StandingQuery(text)
            standing.deps |= hosts
            standing.subscribers.append((handler, request.id))
            if store is not None:
                store.record_standing(text, active=True)
            if not had_state:
                standing.schema = list(answer.schema)
                standing.rows = fresh_rows
                standing.has_state = True
                self._persist(standing)
            delivered = sorted(standing.rows)
            schema = list(standing.schema)
            seq = standing.seq
        self._metrics.counter("service.standing_subscribed").inc()
        self._metrics.gauge("service.standing_active").set(len(self._queries))
        if not resumed:
            for start in range(0, len(delivered), page_size):
                handler.send(
                    protocol.page_frame(
                        request.id,
                        start // page_size,
                        schema,
                        delivered[start : start + page_size],
                        source="snapshot",
                    )
                )
        handler.send(
            protocol.subscribed_frame(
                request.id, rows=len(delivered), resumed=resumed, seq=seq
            )
        )
        if had_state:
            # Catch the delivered state up with the fresh evaluation: for
            # a resume, that is exactly what moved while the client was
            # away (its state is the persisted snapshot — orderly
            # shutdown persists before sending).
            self._apply_refresh(
                standing, answer.schema, fresh_rows, hosts,
                host="", revision=0,
                reason="resume" if resumed else "subscribe",
            )

    def unsubscribe(self, handler: Any, request: Request) -> bool:
        """Explicitly deregister: the standing query (and its persisted
        registration) is dropped once no subscriber holds it."""
        text = request.text
        with self._lock:
            standing = self._queries.get(text)
            if standing is None:
                return False
            standing.subscribers = [
                (h, rid) for h, rid in standing.subscribers if h is not handler
            ]
            if not standing.subscribers:
                del self._queries[text]
                store = self._webbase.store
                if store is not None:
                    store.record_standing(text, active=False)
        self._metrics.gauge("service.standing_active").set(len(self._queries))
        return True

    def detach(self, handler: Any) -> None:
        """A connection closed: drop its subscriptions but keep the
        registrations and snapshots — that is what resume is for."""
        with self._lock:
            for standing in self._queries.values():
                standing.subscribers = [
                    (h, rid) for h, rid in standing.subscribers if h is not handler
                ]

    def adopt(self, snapshots: dict[str, dict[str, Any] | None]) -> int:
        """Shard takeover: merge a dead sibling's persisted standing
        queries (text → snapshot) into this registry.

        Adopted queries arrive subscriber-less — their delivered state is
        whatever the dead shard last persisted, frozen until the client
        resubscribes with ``resume=True`` here (routed by the cluster
        router) and picks up exactly the diff.  Queries this registry
        already tracks keep their own state.  Returns how many were
        newly adopted."""
        store = self._webbase.store
        adopted = 0
        with self._lock:
            for text, snapshot in sorted(snapshots.items()):
                if text in self._queries:
                    continue
                standing = StandingQuery(text)
                if snapshot is not None:
                    standing.schema = list(snapshot["schema"])
                    standing.rows = {tuple(row) for row in snapshot["rows"]}
                    standing.seq = int(snapshot["seq"])
                    standing.has_state = True
                self._queries[text] = standing
                adopted += 1
                if store is not None:
                    store.record_standing(text, active=True)
                    if snapshot is not None:
                        store.persist_snapshot(
                            text,
                            standing.schema,
                            sorted(standing.rows),
                            dict(snapshot.get("revisions", {})),
                            standing.seq,
                        )
        if adopted:
            self._metrics.gauge("service.standing_active").set(len(self._queries))
        return adopted

    def on_change(self, event: Any) -> None:
        """One CDC event from a maintenance sweep: re-evaluate the
        affected, subscribed standing queries and push their deltas."""
        with self._lock:
            affected = [
                standing
                for standing in self._queries.values()
                if standing.subscribers
                and (not standing.deps or event.host in standing.deps)
            ]
        for standing in affected:
            answer, hosts = self._evaluate(standing.text)
            self._apply_refresh(
                standing,
                answer.schema,
                set(answer.rows),
                hosts,
                host=event.host,
                revision=event.revision,
                reason="cdc",
            )

    def _apply_refresh(
        self,
        standing: StandingQuery,
        schema: Any,
        fresh_rows: set[tuple],
        hosts: set[str],
        host: str,
        revision: int,
        reason: str,
    ) -> None:
        """Diff a fresh evaluation against the delivered state; persist
        then push (persist-first keeps snapshot == client state across an
        orderly shutdown)."""
        with self._lock:
            standing.deps |= hosts
            added = sorted(fresh_rows - standing.rows)
            removed = sorted(standing.rows - fresh_rows)
            if not added and not removed:
                return
            standing.rows = fresh_rows
            standing.schema = list(schema)
            standing.seq += 1
            seq = standing.seq
            subscribers = list(standing.subscribers)
            self._persist(standing)
        for handler, request_id in subscribers:
            handler.send(
                protocol.delta_frame(
                    request_id,
                    seq,
                    list(schema),
                    added,
                    removed,
                    host=host,
                    revision=revision,
                    reason=reason,
                )
            )
            self.deltas_sent += 1
            self._metrics.counter("service.standing_deltas").inc()


class _ClientHandler(socketserver.StreamRequestHandler):
    """One connected client: reads request lines, enforces its concurrency
    slots, and serializes response frames onto the socket."""

    server: "_TcpServer"

    def setup(self) -> None:
        super().setup()
        self._write_lock = threading.Lock()
        self._slots = 0
        self._slots_lock = threading.Lock()

    # -- the per-client concurrency limit -----------------------------------

    def acquire_slot(self, limit: int) -> bool:
        with self._slots_lock:
            if self._slots >= limit:
                return False
            self._slots += 1
            return True

    def release_slot(self) -> None:
        with self._slots_lock:
            self._slots = max(0, self._slots - 1)

    # -- frame I/O -----------------------------------------------------------

    def send(self, frame: dict[str, Any]) -> None:
        """Write one frame; a vanished client is not an error (its in-flight
        work just completes into the void)."""
        data = protocol.encode(frame)
        with self._write_lock:
            try:
                self.wfile.write(data)
                self.wfile.flush()
            except (OSError, ValueError):
                pass

    def handle(self) -> None:
        service = self.server.service
        while True:
            try:
                line = self.rfile.readline(protocol.MAX_LINE_BYTES + 2)
            except (OSError, ValueError):
                return
            if not line:
                return  # client closed the connection
            if not line.strip():
                continue
            try:
                request = protocol.parse_request(protocol.decode_line(line))
            except ProtocolError as exc:
                payload_id = 0
                try:
                    maybe = protocol.decode_line(line).get("id")
                    if isinstance(maybe, int):
                        payload_id = maybe
                except ProtocolError:
                    pass
                self.send(protocol.error_frame(payload_id, E_BAD_REQUEST, str(exc)))
                continue
            if request.op == "ping":
                self.send(protocol.pong_frame(request.id))
            elif request.op == "metrics":
                self.send(
                    protocol.metrics_frame(request.id, service.metrics.snapshot())
                )
            elif request.op == "hello":
                self.send(
                    protocol.welcome_frame(
                        request.id, service.config.shard_id, service.role
                    )
                )
            elif request.op == "status":
                self.send(
                    protocol.status_frame(request.id, service.describe_status())
                )
            elif request.op == "drain":
                # Ack with the pre-drain status, then drain off-thread:
                # shutdown() joins the executor pool, and this handler
                # thread must stay free to flush the ack first.
                self.send(
                    protocol.status_frame(request.id, service.describe_status())
                )
                threading.Thread(
                    target=service.shutdown, name="service-drain", daemon=True
                ).start()
            elif request.op == "unsubscribe":
                service.standing.unsubscribe(self, request)
                self.send(protocol.unsubscribed_frame(request.id))
            else:
                service.submit_query(self, request)

    def finish(self) -> None:
        try:
            self.server.service.standing.detach(self)
        finally:
            super().finish()


class _TcpServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address: tuple[str, int], service: "WebBaseService") -> None:
        super().__init__(address, _ClientHandler)
        self.service = service


class WebBaseService:
    """A multi-client query service over one shared webbase."""

    #: What this peer answers to ``hello`` — the cluster worker wrapper
    #: overrides it to ``"worker"``; the router speaks for itself.
    role = "service"

    def __init__(self, webbase: WebBase, config: ServiceConfig | None = None) -> None:
        self.webbase = webbase
        self.config = config or ServiceConfig()
        self.metrics = webbase.metrics
        self._queue: "queue_mod.Queue[_Job]" = queue_mod.Queue(
            maxsize=self.config.queue_limit
        )
        self._draining = threading.Event()
        self._stopping = threading.Event()
        self._state = threading.Condition()
        self._inflight = 0
        self._server: _TcpServer | None = None
        self._acceptor: threading.Thread | None = None
        self._workers: list[threading.Thread] = []
        self.standing = StandingQueryRegistry(webbase, self.metrics)
        # Maintenance sweeps (ours or anyone's on this webbase) publish
        # CDC events; the registry turns them into row deltas.
        webbase.cdc.subscribe(self.standing.on_change)
        # MQO batching window: only meaningful when the webbase has the
        # multi-query layer attached (shared fingerprints to coalesce).
        self._gate = None
        if self.config.mqo_window_ms > 0 and webbase.mqo is not None:
            from repro.mqo.registry import BatchGate

            self._gate = BatchGate(
                self.config.mqo_window_ms / 1000.0, metrics=self.metrics
            )

    # -- lifecycle -----------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — resolves port 0 to the ephemeral pick."""
        if self._server is None:
            raise RuntimeError("service not started")
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    def start(self) -> tuple[str, int]:
        """Bind the socket, start the acceptor and the executor pool."""
        if self._server is not None:
            raise RuntimeError("service already started")
        self._server = _TcpServer((self.config.host, self.config.port), self)
        self._acceptor = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="service-acceptor",
            daemon=True,
        )
        self._acceptor.start()
        for i in range(self.config.workers):
            worker = threading.Thread(
                target=self._worker_loop, name="service-worker-%d" % i, daemon=True
            )
            worker.start()
            self._workers.append(worker)
        return self.address

    def shutdown(self, drain: bool = True) -> dict[str, Any]:
        """Graceful drain: stop accepting, reject new queries with
        ``SHUTTING_DOWN``, finish queued and in-flight work (bounded by
        ``config.drain_timeout_seconds``), stop the executors, and return
        the flushed final metrics snapshot."""
        self._draining.set()
        self.webbase.cdc.unsubscribe(self.standing.on_change)
        if self._server is not None:
            self._server.shutdown()  # stop accepting new connections
        if drain:
            deadline = monotonic() + self.config.drain_timeout_seconds
            with self._state:
                while (not self._queue.empty() or self._inflight > 0) and (
                    monotonic() < deadline
                ):
                    self._state.wait(timeout=0.1)
        self._stopping.set()
        for worker in self._workers:
            worker.join(timeout=self.config.drain_timeout_seconds)
        if self._server is not None:
            self._server.server_close()
        if self._acceptor is not None:
            self._acceptor.join(timeout=5.0)
        self.metrics.gauge("service.queue_depth").set(self._queue.qsize())
        self.metrics.counter("service.drains").inc()
        return self.metrics.snapshot()

    def describe_status(self) -> dict[str, Any]:
        """One JSON object describing this peer (the ``status`` answer)."""
        return {
            "role": self.role,
            "shard_id": self.config.shard_id,
            "protocol_version": protocol.PROTOCOL_VERSION,
            "draining": self._draining.is_set(),
            "inflight": self._inflight,
            "queue_depth": self._queue.qsize(),
            "standing": len(self.standing._queries),
            "store_dir": getattr(self.webbase.store, "root", None),
        }

    def sweep(self, host: str | None = None) -> dict[str, Any]:
        """One server-side maintenance cycle (all hosts, or just ``host``).

        Non-clean reports land on the webbase's CDC feed, which the
        standing-query registry is subscribed to — so by the time the
        caller's ``result`` frame arrives, every affected subscriber has
        already been pushed its ``delta`` frames."""
        self.metrics.counter("service.sweeps").inc()
        reports = self.webbase.run_maintenance(host)
        return {
            "swept": host or "*",
            "changed_hosts": sorted(reports),
            "changes": sum(len(r.changes) for r in reports.values()),
            "standing_deltas": self.standing.deltas_sent,
        }

    # -- admission -----------------------------------------------------------

    def submit_query(self, handler: _ClientHandler, request: Request) -> None:
        """Admit one query into the bounded queue — or reject it with a
        structured, retriable error rather than degrading everyone."""
        self.metrics.counter("service.requests").inc()
        if self._draining.is_set():
            self.metrics.counter("service.rejected_draining").inc()
            handler.send(
                protocol.error_frame(
                    request.id, E_SHUTTING_DOWN, "server is draining; retry elsewhere"
                )
            )
            return
        if not handler.acquire_slot(self.config.per_client_limit):
            self.metrics.counter("service.client_limited").inc()
            handler.send(
                protocol.error_frame(
                    request.id,
                    E_CLIENT_LIMIT,
                    "per-client limit of %d concurrent queries reached"
                    % self.config.per_client_limit,
                )
            )
            return
        deadline_ms = request.deadline_ms
        if deadline_ms is None:
            deadline_ms = self.config.default_deadline_ms
        job = _Job(
            handler=handler,
            request=request,
            admitted_at=monotonic(),
            deadline_at=(
                None if deadline_ms is None else monotonic() + deadline_ms / 1000.0
            ),
        )
        try:
            self._queue.put_nowait(job)
        except queue_mod.Full:
            handler.release_slot()
            self.metrics.counter("service.shed").inc()
            handler.send(
                protocol.error_frame(
                    request.id,
                    E_OVERLOADED,
                    "admission queue full (%d); retry with backoff"
                    % self.config.queue_limit,
                )
            )
            return
        self.metrics.counter("service.admitted").inc()
        self.metrics.gauge("service.queue_depth").set(self._queue.qsize())

    # -- execution -----------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            try:
                job = self._queue.get(timeout=0.1)
            except queue_mod.Empty:
                if self._stopping.is_set():
                    return
                continue
            self.metrics.gauge("service.queue_depth").set(self._queue.qsize())
            with self._state:
                self._inflight += 1
            self.metrics.gauge("service.inflight").set(self._inflight)
            try:
                self._run_job(job)
            finally:
                job.handler.release_slot()
                self._queue.task_done()
                with self._state:
                    self._inflight -= 1
                    self._state.notify_all()
                self.metrics.gauge("service.inflight").set(self._inflight)

    def _run_job(self, job: _Job) -> None:
        request = job.request
        waited = monotonic() - job.admitted_at
        self.metrics.histogram("service.queue_seconds").observe(waited)
        # Admission-to-dispatch wait as its own histogram: the MQO
        # batching window adds bounded latency *after* this point, so the
        # two are separable in the metrics (queue_wait + window_wait).
        self.metrics.histogram("service.queue_wait_seconds").observe(waited)
        if job.deadline_at is not None and monotonic() >= job.deadline_at:
            # Expired while queued: don't waste an executor on a lost cause.
            self.metrics.counter("service.deadline_exceeded").inc()
            job.handler.send(
                protocol.error_frame(
                    request.id,
                    E_DEADLINE_EXCEEDED,
                    "deadline expired after %.3fs in the admission queue" % waited,
                )
            )
            return
        started = monotonic()
        terminal = True
        try:
            if request.op == "subscribe":
                page_size = request.page_size or self.config.page_size
                self.standing.subscribe(job.handler, request, page_size)
                # The registry sends its own `subscribed` ack; no result frame.
                terminal = False
                stats = {}
            elif request.op == "sweep":
                stats = self.sweep(request.text or None)
            elif request.op == "adopt":
                stats = self._adopt(request.text)
            elif request.op == "mutate":
                stats = self._mutate(request.text)
            else:
                stats = self._execute(job)
        except DeadlineExceeded as exc:
            self.metrics.counter("service.deadline_exceeded").inc()
            job.handler.send(
                protocol.error_frame(request.id, E_DEADLINE_EXCEEDED, str(exc))
            )
        except (PlanError, QueryParseError, OperationRejected) as exc:
            self.metrics.counter("service.bad_requests").inc()
            job.handler.send(protocol.error_frame(request.id, E_BAD_REQUEST, str(exc)))
        except Exception as exc:  # noqa: BLE001 - the server must not die
            self.metrics.counter("service.errors").inc()
            job.handler.send(
                protocol.error_frame(
                    request.id, E_INTERNAL, "%s: %s" % (type(exc).__name__, exc)
                )
            )
        else:
            self.metrics.counter("service.completed").inc()
            if terminal:
                job.handler.send(
                    protocol.result_frame(
                        request.id, stats, shard_id=self.config.shard_id
                    )
                )
        finally:
            finished = monotonic()
            self.metrics.histogram("service.exec_seconds").observe(finished - started)
            self.metrics.histogram("service.total_seconds").observe(
                finished - job.admitted_at
            )

    def _adopt(self, store_dir: str) -> dict[str, Any]:
        """Shard takeover: warm from a dead sibling's store directory and
        merge its persisted standing queries into this registry."""
        result = self.webbase.adopt_store_dir(store_dir)
        snapshots = result.pop("standing")
        result["standing_adopted"] = self.standing.adopt(snapshots)
        self.metrics.counter("cluster.adoptions").inc()
        self.metrics.gauge("service.standing_active").set(
            len(self.standing._queries)
        )
        return result

    def _mutate(self, spec_text: str) -> dict[str, Any]:
        """Apply one simulated-Web churn mutation (harness-only op).

        ``spec_text`` is a JSON object for
        :func:`repro.sites.world.mutate_site_listings` — the cluster
        harness scatters the same spec to every worker so their
        per-process worlds stay identical (otherwise a takeover would
        surface spurious row deltas)."""
        if not self.config.allow_world_mutation:
            raise OperationRejected(
                "world mutation is disabled on this service "
                "(ServiceConfig.allow_world_mutation)"
            )
        import json as json_mod

        from repro.sites.world import mutate_site_listings

        try:
            spec = json_mod.loads(spec_text)
        except ValueError as exc:
            raise OperationRejected("mutate spec is not valid JSON: %s" % exc)
        if not isinstance(spec, dict) or not spec.get("host"):
            raise OperationRejected("mutate spec needs at least a 'host'")
        try:
            added = mutate_site_listings(
                self.webbase.world,
                host=str(spec["host"]),
                make=str(spec.get("make", "ford")),
                model=str(spec.get("model", "escort")),
                count=int(spec.get("count", 3)),
                seed=int(spec.get("seed", 0)),
                change=str(spec.get("change", "auto")),
            )
        except ValueError as exc:
            raise OperationRejected(str(exc))
        return {"mutated": str(spec["host"]), "ads_added": len(added)}

    def _execute(self, job: _Job) -> dict[str, Any]:
        """Run one query on the shared webbase, streaming pages as maximal
        objects complete; returns the terminal ``result`` stats.

        Deadline expiry is enforced by *cancelling the context's access
        handles*: a timer fires at the deadline and revokes every pending
        and in-flight access at once (pending fetches die instantly,
        running ones abort at their next page boundary), instead of each
        worker discovering the expiry at its own next deadline poll."""
        request = job.request
        page_size = request.page_size or self.config.page_size
        mqo = self.webbase.mqo
        if mqo is not None:
            # MQO decision ladder, step 1: a revision-current gold answer
            # that contains this query serves it with zero fetches.
            subsumed = mqo.subsume(request.text)
            if subsumed is not None:
                return self._stream_subsumed(job, subsumed, page_size)
            if self._gate is not None:
                # Step 2: hold dispatch until the batching window closes,
                # so overlapping arrivals share in-flight fingerprints.
                self._gate.admit()
        remaining = (
            None if job.deadline_at is None else max(0.0, job.deadline_at - monotonic())
        )
        ctx: ExecutionContext = self.webbase.execution_context(
            label="svc:%s" % request.text, deadline_seconds=remaining
        )
        timer: threading.Timer | None = None
        if remaining is not None:
            timer = threading.Timer(
                remaining, ctx.cancel, kwargs={"reason": "deadline expired"}
            )
            timer.daemon = True
            timer.start()
        seen: set[tuple] = set()
        schema: list[str] = []
        seq = 0
        try:
            for obj, piece in self.webbase.query_stream(request.text, context=ctx):
                fresh = [row for row in piece.rows if row not in seen]
                seen.update(fresh)
                schema = list(piece.schema)
                source = " ⋈ ".join(obj.relations)
                for start in range(0, len(fresh), page_size):
                    job.handler.send(
                        protocol.page_frame(
                            request.id,
                            seq,
                            list(piece.schema),
                            fresh[start : start + page_size],
                            source=source,
                        )
                    )
                    seq += 1
        finally:
            if timer is not None:
                timer.cancel()
        cache_hits = sum(
            1 for span in ctx.root.spans("fetch") if span.cache in ("hit", "stale")
        )
        if mqo is not None and not ctx.failures:
            # The streaming path never reaches webbase.query's gold
            # persist; materialize here so later overlapping queries can
            # subsume.  Partial answers (any failed fetch) never persist.
            self._persist_streamed(request.text, schema, seen, ctx)
        return {
            "rows": len(seen),
            "pages": seq,
            "fetches": ctx.fetches,
            "cache_hits": cache_hits,
            "failures": len(ctx.failures),
            "modelled_seconds": round(ctx.elapsed_seconds, 4),
            "wall_ms": round(ctx.wall_elapsed_seconds * 1000.0, 3),
        }

    def _stream_subsumed(
        self, job: _Job, answer: Relation, page_size: int
    ) -> dict[str, Any]:
        """Serve a containment hit: page out the filtered gold rows.
        Zero fetches by construction — nothing below the store ran."""
        request = job.request
        rows = list(answer.rows)
        seq = 0
        for start in range(0, len(rows), page_size):
            job.handler.send(
                protocol.page_frame(
                    request.id,
                    seq,
                    list(answer.schema),
                    rows[start : start + page_size],
                    source="gold",
                )
            )
            seq += 1
        return {
            "rows": len(rows),
            "pages": seq,
            "fetches": 0,
            "cache_hits": 0,
            "failures": 0,
            "modelled_seconds": 0.0,
            "wall_ms": 0.0,
            "mqo": "subsumed",
        }

    def _persist_streamed(
        self,
        text: str,
        schema: list[str],
        seen: set[tuple],
        ctx: ExecutionContext,
    ) -> None:
        mqo = self.webbase.mqo
        if mqo is None or self.webbase.store is None:
            return
        if not schema:
            try:
                schema = list(parse_query(text).outputs)
            except QueryParseError:
                return
        hosts = {
            str(span.attrs.get("host", "")) for span in ctx.root.spans("fetch")
        } - {""}
        try:
            mqo.record_answer(text, Relation(schema, seen), hosts)
        except Exception:  # noqa: BLE001 - persistence is best-effort
            self.metrics.counter("mqo.persist_errors").inc()
