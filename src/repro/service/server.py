"""The webbase query server: admission control, deadlines, streaming.

One :class:`WebBaseService` owns one :class:`~repro.core.webbase.WebBase`
— its cross-query result cache, its metrics registry, its navigation maps
— and serves it to many concurrent clients over TCP (stdlib only:
``socketserver`` + ``threading``).  The expensive resource is the bounded
pool of live source accesses; the service's job is to make N clients
share it gracefully rather than degrade everyone:

* **bounded admission queue with load shedding** — a query is either
  admitted to a FIFO queue drained by ``config.workers`` executor threads,
  or (queue full) *shed* with a retriable ``OVERLOADED`` error.  Shedding
  keeps latency bounded for admitted work instead of letting every
  client's tail grow without bound;
* **per-client concurrency limits** — one connection may hold at most
  ``config.per_client_limit`` queries in flight (``CLIENT_LIMIT``,
  retriable), so a single greedy client cannot monopolize the queue;
* **per-request deadlines** — the remaining budget (queue wait counts!)
  propagates into the query's
  :class:`~repro.core.execution.ExecutionContext`, which re-checks it
  before every fetch and between retries and cancels outstanding worker
  fetches on expiry (``DEADLINE_EXCEEDED``, not retriable);
* **streaming results** — rows are sent in pages as each maximal object
  completes (deduplicated across objects), so a ``More``-loop query
  reaches the client incrementally instead of buffering the relation;
* **graceful drain** — :meth:`WebBaseService.shutdown` stops accepting,
  rejects new queries with ``SHUTTING_DOWN``, finishes in-flight work,
  and flushes a final metrics snapshot;
* **service metrics** — queue depth, admitted/shed/limited counts and
  per-stage latency histograms (queue wait, execution, total — with
  p50/p95/p99) feed the webbase's own
  :class:`~repro.core.metrics.MetricsRegistry`, so cache and engine
  counters reconcile with service traffic in one place.
"""

from __future__ import annotations

import queue as queue_mod
import socketserver
import threading
from dataclasses import dataclass
from time import monotonic
from typing import Any

from repro.core.execution import DeadlineExceeded, ExecutionContext
from repro.core.webbase import WebBase
from repro.service import protocol
from repro.service.protocol import (
    E_BAD_REQUEST,
    E_CLIENT_LIMIT,
    E_DEADLINE_EXCEEDED,
    E_INTERNAL,
    E_OVERLOADED,
    E_SHUTTING_DOWN,
    ProtocolError,
    Request,
)
from repro.ur.planner import PlanError
from repro.ur.query import QueryParseError


@dataclass(frozen=True)
class ServiceConfig:
    """Sizing and policy knobs of one service instance."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = pick an ephemeral port (see WebBaseService.address)
    queue_limit: int = 16  # bounded admission queue; beyond this, shed
    workers: int = 4  # executor threads draining the queue
    per_client_limit: int = 2  # concurrent queries per connection
    default_deadline_ms: float | None = None  # applied when a request has none
    page_size: int = 50  # rows per streamed page (request may override)
    drain_timeout_seconds: float = 30.0  # graceful-drain wait bound

    def __post_init__(self) -> None:
        if self.queue_limit < 1:
            raise ValueError("queue_limit must be >= 1; got %r" % self.queue_limit)
        if self.workers < 1:
            raise ValueError("workers must be >= 1; got %r" % self.workers)
        if self.per_client_limit < 1:
            raise ValueError(
                "per_client_limit must be >= 1; got %r" % self.per_client_limit
            )
        if self.page_size < 1:
            raise ValueError("page_size must be >= 1; got %r" % self.page_size)


@dataclass
class _Job:
    """One admitted query, waiting for (or on) an executor thread."""

    handler: "_ClientHandler"
    request: Request
    admitted_at: float
    deadline_at: float | None  # wall (monotonic) expiry; queue wait counts


class _ClientHandler(socketserver.StreamRequestHandler):
    """One connected client: reads request lines, enforces its concurrency
    slots, and serializes response frames onto the socket."""

    server: "_TcpServer"

    def setup(self) -> None:
        super().setup()
        self._write_lock = threading.Lock()
        self._slots = 0
        self._slots_lock = threading.Lock()

    # -- the per-client concurrency limit -----------------------------------

    def acquire_slot(self, limit: int) -> bool:
        with self._slots_lock:
            if self._slots >= limit:
                return False
            self._slots += 1
            return True

    def release_slot(self) -> None:
        with self._slots_lock:
            self._slots = max(0, self._slots - 1)

    # -- frame I/O -----------------------------------------------------------

    def send(self, frame: dict[str, Any]) -> None:
        """Write one frame; a vanished client is not an error (its in-flight
        work just completes into the void)."""
        data = protocol.encode(frame)
        with self._write_lock:
            try:
                self.wfile.write(data)
                self.wfile.flush()
            except (OSError, ValueError):
                pass

    def handle(self) -> None:
        service = self.server.service
        while True:
            try:
                line = self.rfile.readline(protocol.MAX_LINE_BYTES + 2)
            except (OSError, ValueError):
                return
            if not line:
                return  # client closed the connection
            if not line.strip():
                continue
            try:
                request = protocol.parse_request(protocol.decode_line(line))
            except ProtocolError as exc:
                payload_id = 0
                try:
                    maybe = protocol.decode_line(line).get("id")
                    if isinstance(maybe, int):
                        payload_id = maybe
                except ProtocolError:
                    pass
                self.send(protocol.error_frame(payload_id, E_BAD_REQUEST, str(exc)))
                continue
            if request.op == "ping":
                self.send(protocol.pong_frame(request.id))
            elif request.op == "metrics":
                self.send(
                    protocol.metrics_frame(request.id, service.metrics.snapshot())
                )
            else:
                service.submit_query(self, request)


class _TcpServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address: tuple[str, int], service: "WebBaseService") -> None:
        super().__init__(address, _ClientHandler)
        self.service = service


class WebBaseService:
    """A multi-client query service over one shared webbase."""

    def __init__(self, webbase: WebBase, config: ServiceConfig | None = None) -> None:
        self.webbase = webbase
        self.config = config or ServiceConfig()
        self.metrics = webbase.metrics
        self._queue: "queue_mod.Queue[_Job]" = queue_mod.Queue(
            maxsize=self.config.queue_limit
        )
        self._draining = threading.Event()
        self._stopping = threading.Event()
        self._state = threading.Condition()
        self._inflight = 0
        self._server: _TcpServer | None = None
        self._acceptor: threading.Thread | None = None
        self._workers: list[threading.Thread] = []

    # -- lifecycle -----------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — resolves port 0 to the ephemeral pick."""
        if self._server is None:
            raise RuntimeError("service not started")
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    def start(self) -> tuple[str, int]:
        """Bind the socket, start the acceptor and the executor pool."""
        if self._server is not None:
            raise RuntimeError("service already started")
        self._server = _TcpServer((self.config.host, self.config.port), self)
        self._acceptor = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="service-acceptor",
            daemon=True,
        )
        self._acceptor.start()
        for i in range(self.config.workers):
            worker = threading.Thread(
                target=self._worker_loop, name="service-worker-%d" % i, daemon=True
            )
            worker.start()
            self._workers.append(worker)
        return self.address

    def shutdown(self, drain: bool = True) -> dict[str, Any]:
        """Graceful drain: stop accepting, reject new queries with
        ``SHUTTING_DOWN``, finish queued and in-flight work (bounded by
        ``config.drain_timeout_seconds``), stop the executors, and return
        the flushed final metrics snapshot."""
        self._draining.set()
        if self._server is not None:
            self._server.shutdown()  # stop accepting new connections
        if drain:
            deadline = monotonic() + self.config.drain_timeout_seconds
            with self._state:
                while (not self._queue.empty() or self._inflight > 0) and (
                    monotonic() < deadline
                ):
                    self._state.wait(timeout=0.1)
        self._stopping.set()
        for worker in self._workers:
            worker.join(timeout=self.config.drain_timeout_seconds)
        if self._server is not None:
            self._server.server_close()
        if self._acceptor is not None:
            self._acceptor.join(timeout=5.0)
        self.metrics.gauge("service.queue_depth").set(self._queue.qsize())
        self.metrics.counter("service.drains").inc()
        return self.metrics.snapshot()

    # -- admission -----------------------------------------------------------

    def submit_query(self, handler: _ClientHandler, request: Request) -> None:
        """Admit one query into the bounded queue — or reject it with a
        structured, retriable error rather than degrading everyone."""
        self.metrics.counter("service.requests").inc()
        if self._draining.is_set():
            self.metrics.counter("service.rejected_draining").inc()
            handler.send(
                protocol.error_frame(
                    request.id, E_SHUTTING_DOWN, "server is draining; retry elsewhere"
                )
            )
            return
        if not handler.acquire_slot(self.config.per_client_limit):
            self.metrics.counter("service.client_limited").inc()
            handler.send(
                protocol.error_frame(
                    request.id,
                    E_CLIENT_LIMIT,
                    "per-client limit of %d concurrent queries reached"
                    % self.config.per_client_limit,
                )
            )
            return
        deadline_ms = request.deadline_ms
        if deadline_ms is None:
            deadline_ms = self.config.default_deadline_ms
        job = _Job(
            handler=handler,
            request=request,
            admitted_at=monotonic(),
            deadline_at=(
                None if deadline_ms is None else monotonic() + deadline_ms / 1000.0
            ),
        )
        try:
            self._queue.put_nowait(job)
        except queue_mod.Full:
            handler.release_slot()
            self.metrics.counter("service.shed").inc()
            handler.send(
                protocol.error_frame(
                    request.id,
                    E_OVERLOADED,
                    "admission queue full (%d); retry with backoff"
                    % self.config.queue_limit,
                )
            )
            return
        self.metrics.counter("service.admitted").inc()
        self.metrics.gauge("service.queue_depth").set(self._queue.qsize())

    # -- execution -----------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            try:
                job = self._queue.get(timeout=0.1)
            except queue_mod.Empty:
                if self._stopping.is_set():
                    return
                continue
            self.metrics.gauge("service.queue_depth").set(self._queue.qsize())
            with self._state:
                self._inflight += 1
            self.metrics.gauge("service.inflight").set(self._inflight)
            try:
                self._run_job(job)
            finally:
                job.handler.release_slot()
                self._queue.task_done()
                with self._state:
                    self._inflight -= 1
                    self._state.notify_all()
                self.metrics.gauge("service.inflight").set(self._inflight)

    def _run_job(self, job: _Job) -> None:
        request = job.request
        waited = monotonic() - job.admitted_at
        self.metrics.histogram("service.queue_seconds").observe(waited)
        if job.deadline_at is not None and monotonic() >= job.deadline_at:
            # Expired while queued: don't waste an executor on a lost cause.
            self.metrics.counter("service.deadline_exceeded").inc()
            job.handler.send(
                protocol.error_frame(
                    request.id,
                    E_DEADLINE_EXCEEDED,
                    "deadline expired after %.3fs in the admission queue" % waited,
                )
            )
            return
        started = monotonic()
        try:
            stats = self._execute(job)
        except DeadlineExceeded as exc:
            self.metrics.counter("service.deadline_exceeded").inc()
            job.handler.send(
                protocol.error_frame(request.id, E_DEADLINE_EXCEEDED, str(exc))
            )
        except (PlanError, QueryParseError) as exc:
            self.metrics.counter("service.bad_requests").inc()
            job.handler.send(protocol.error_frame(request.id, E_BAD_REQUEST, str(exc)))
        except Exception as exc:  # noqa: BLE001 - the server must not die
            self.metrics.counter("service.errors").inc()
            job.handler.send(
                protocol.error_frame(
                    request.id, E_INTERNAL, "%s: %s" % (type(exc).__name__, exc)
                )
            )
        else:
            self.metrics.counter("service.completed").inc()
            job.handler.send(protocol.result_frame(request.id, stats))
        finally:
            finished = monotonic()
            self.metrics.histogram("service.exec_seconds").observe(finished - started)
            self.metrics.histogram("service.total_seconds").observe(
                finished - job.admitted_at
            )

    def _execute(self, job: _Job) -> dict[str, Any]:
        """Run one query on the shared webbase, streaming pages as maximal
        objects complete; returns the terminal ``result`` stats.

        Deadline expiry is enforced by *cancelling the context's access
        handles*: a timer fires at the deadline and revokes every pending
        and in-flight access at once (pending fetches die instantly,
        running ones abort at their next page boundary), instead of each
        worker discovering the expiry at its own next deadline poll."""
        request = job.request
        remaining = (
            None if job.deadline_at is None else max(0.0, job.deadline_at - monotonic())
        )
        ctx: ExecutionContext = self.webbase.execution_context(
            label="svc:%s" % request.text, deadline_seconds=remaining
        )
        timer: threading.Timer | None = None
        if remaining is not None:
            timer = threading.Timer(
                remaining, ctx.cancel, kwargs={"reason": "deadline expired"}
            )
            timer.daemon = True
            timer.start()
        page_size = request.page_size or self.config.page_size
        seen: set[tuple] = set()
        seq = 0
        try:
            for obj, piece in self.webbase.query_stream(request.text, context=ctx):
                fresh = [row for row in piece.rows if row not in seen]
                seen.update(fresh)
                source = " ⋈ ".join(obj.relations)
                for start in range(0, len(fresh), page_size):
                    job.handler.send(
                        protocol.page_frame(
                            request.id,
                            seq,
                            list(piece.schema),
                            fresh[start : start + page_size],
                            source=source,
                        )
                    )
                    seq += 1
        finally:
            if timer is not None:
                timer.cancel()
        cache_hits = sum(
            1 for span in ctx.root.spans("fetch") if span.cache in ("hit", "stale")
        )
        return {
            "rows": len(seen),
            "pages": seq,
            "fetches": ctx.fetches,
            "cache_hits": cache_hits,
            "failures": len(ctx.failures),
            "modelled_seconds": round(ctx.elapsed_seconds, 4),
            "wall_ms": round(ctx.wall_elapsed_seconds * 1000.0, 3),
        }
