"""The service wire protocol: line-delimited JSON over TCP.

One request or response per line, UTF-8 JSON with no embedded newlines —
trivially debuggable with ``nc`` and implementable from any language.
Every frame carries the request ``id`` it belongs to, so responses to a
client's concurrent requests may interleave on one connection.

Requests::

    {"id": 1, "op": "query", "text": "SELECT ... WHERE ...",
     "deadline_ms": 2000, "page_size": 25}
    {"id": 2, "op": "ping"}
    {"id": 3, "op": "metrics"}

Responses to a query are a stream: zero or more ``page`` frames (rows in
arrival order, deduplicated across maximal objects) followed by exactly
one terminal frame — ``result`` (with the request's stats) or ``error``.
Errors are *structured*: a stable ``code``, a human message, and a
``retriable`` flag (an ``OVERLOADED`` shed should be retried after
backoff; a ``DEADLINE_EXCEEDED`` or ``BAD_REQUEST`` should not).

Standing queries extend the stream shape with *push* frames::

    {"id": 4, "op": "subscribe", "text": "SELECT ... WHERE ..."}
    {"id": 5, "op": "unsubscribe", "text": "SELECT ... WHERE ..."}
    {"id": 6, "op": "sweep", "text": "www.newsday.com"}

A ``subscribe`` answers with zero or more ``page`` frames (the initial
snapshot) and a ``subscribed`` ack, after which ``delta`` frames
carrying row ``added``/``removed`` lists arrive whenever a maintenance
sweep's change-data-capture event makes the query's rows move.  A
subscribe with ``"resume": true`` claims the client still holds the last
state delivered to it (a reconnect after a service restart): when a
persisted registration exists the snapshot pages are skipped and
whatever moved while the client was away arrives as an immediate
``delta``.  ``sweep`` runs a maintenance cycle server-side (empty
``text`` = all hosts) and answers with a ``result`` frame once the
resulting deltas have been pushed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

# A line longer than this is a protocol violation, not a big query.
MAX_LINE_BYTES = 4 * 1024 * 1024

#: The wire protocol generation.  Routers and workers may skew one
#: version apart during a rolling restart, so every peer must tolerate
#: unknown frame fields (and unknown response types it did not ask for)
#: rather than reject them — the skew test pins exactly that.
PROTOCOL_VERSION = 2

# -- error codes -------------------------------------------------------------------

E_OVERLOADED = "OVERLOADED"  # admission queue full; shed — retry later
E_CLIENT_LIMIT = "CLIENT_LIMIT"  # per-connection concurrency limit hit
E_SHUTTING_DOWN = "SHUTTING_DOWN"  # server is draining; try another replica
E_DEADLINE_EXCEEDED = "DEADLINE_EXCEEDED"  # the request's deadline expired
E_BAD_REQUEST = "BAD_REQUEST"  # malformed frame, unknown op, unparsable query
E_INTERNAL = "INTERNAL"  # unexpected server-side failure
E_REDIRECT = "REDIRECT"  # ask the shard at error['address'] directly

RETRIABLE_CODES = frozenset(
    {E_OVERLOADED, E_CLIENT_LIMIT, E_SHUTTING_DOWN, E_REDIRECT}
)


class ProtocolError(Exception):
    """A frame that violates the wire format (maps to ``BAD_REQUEST``)."""


@dataclass(frozen=True)
class Request:
    """One parsed client request."""

    id: int
    op: str
    text: str = ""
    deadline_ms: float | None = None
    page_size: int | None = None
    # subscribe only: the client declares it still holds the last state it
    # was delivered (a reconnect), so the snapshot need not be resent —
    # only the diff against the persisted snapshot.
    resume: bool = False
    # query only: the client can follow a REDIRECT error to the named
    # shard itself — a cluster router may then answer with a redirect
    # instead of proxying the stream.
    redirect_ok: bool = False
    # query only, stamped by the cluster router: the whole-query plan
    # fingerprint (repro.relational.planner.plan_fingerprint over the
    # query's maximal objects).  Routers use it for fingerprint-sticky
    # co-routing so identical in-flight queries land on (and share on)
    # the same shard; an old peer simply ignores it (skew-safe).
    mqo_fp: str = ""


#: Cluster-era ops: ``hello`` (peer identification), ``status`` (role,
#: shard id, and topology for routers), ``adopt`` (warm this worker from
#: a dead sibling's store directory — shard takeover), ``drain``
#: (graceful cluster shutdown), ``mutate`` (simulated-Web churn control,
#: gated behind ``ServiceConfig.allow_world_mutation``).
OPS = (
    "query",
    "ping",
    "metrics",
    "subscribe",
    "unsubscribe",
    "sweep",
    "hello",
    "status",
    "adopt",
    "drain",
    "mutate",
)


def parse_request(payload: dict[str, Any]) -> Request:
    """Validate a decoded request frame into a :class:`Request`."""
    if not isinstance(payload, dict):
        raise ProtocolError("request must be a JSON object")
    request_id = payload.get("id")
    if not isinstance(request_id, int):
        raise ProtocolError("request 'id' must be an integer")
    op = payload.get("op")
    if op not in OPS:
        raise ProtocolError("unknown op %r; expected one of %s" % (op, list(OPS)))
    text = payload.get("text", "")
    if not isinstance(text, str):
        raise ProtocolError("'text' must be a string")
    if op in ("query", "subscribe", "unsubscribe", "adopt", "mutate") and not text.strip():
        raise ProtocolError("a %s request needs a non-empty 'text'" % op)
    deadline_ms = payload.get("deadline_ms")
    if deadline_ms is not None:
        if not isinstance(deadline_ms, (int, float)) or deadline_ms < 0:
            raise ProtocolError("'deadline_ms' must be a non-negative number")
    page_size = payload.get("page_size")
    if page_size is not None:
        if not isinstance(page_size, int) or page_size < 1:
            raise ProtocolError("'page_size' must be a positive integer")
    resume = payload.get("resume", False)
    if not isinstance(resume, bool):
        raise ProtocolError("'resume' must be a boolean")
    redirect_ok = payload.get("redirect_ok", False)
    if not isinstance(redirect_ok, bool):
        raise ProtocolError("'redirect_ok' must be a boolean")
    mqo_fp = payload.get("mqo_fp", "")
    if not isinstance(mqo_fp, str):
        raise ProtocolError("'mqo_fp' must be a string")
    # Any *other* field is deliberately ignored: a newer peer may stamp
    # requests with fields this version has never heard of (rolling
    # restarts skew the router and its workers), and skew must degrade to
    # "feature unused", never to BAD_REQUEST.
    return Request(
        id=request_id,
        op=op,
        text=text,
        deadline_ms=deadline_ms,
        page_size=page_size,
        resume=resume,
        redirect_ok=redirect_ok,
        mqo_fp=mqo_fp,
    )


# -- framing -----------------------------------------------------------------------


def encode(frame: dict[str, Any]) -> bytes:
    """One frame as a newline-terminated JSON line."""
    return (json.dumps(frame, separators=(",", ":")) + "\n").encode("utf-8")


def decode_line(line: bytes | str) -> dict[str, Any]:
    """Parse one received line into a frame dict."""
    if isinstance(line, bytes):
        if len(line) > MAX_LINE_BYTES:
            raise ProtocolError("frame exceeds %d bytes" % MAX_LINE_BYTES)
        line = line.decode("utf-8", errors="replace")
    try:
        payload = json.loads(line)
    except ValueError as exc:
        raise ProtocolError("frame is not valid JSON: %s" % exc) from exc
    if not isinstance(payload, dict):
        raise ProtocolError("frame must be a JSON object")
    return payload


# -- response frames ---------------------------------------------------------------


def page_frame(
    request_id: int,
    seq: int,
    schema: list[str],
    rows: list[tuple],
    source: str = "",
) -> dict[str, Any]:
    """One page of result rows (``source`` names the maximal object that
    produced them)."""
    return {
        "id": request_id,
        "type": "page",
        "seq": seq,
        "schema": schema,
        "rows": [list(row) for row in rows],
        "source": source,
    }


def result_frame(
    request_id: int, stats: dict[str, Any], shard_id: str = ""
) -> dict[str, Any]:
    """The terminal success frame, carrying the request's stats.

    A cluster member stamps its ``shard_id`` (and the protocol version)
    onto the frame so clients and routers can see which shard actually
    served the request; old clients fold both into the stats dict —
    unknown fields are tolerated by construction."""
    frame = {"id": request_id, "type": "result", **stats}
    if shard_id:
        frame["shard_id"] = shard_id
        frame["protocol_version"] = PROTOCOL_VERSION
    return frame


def error_frame(
    request_id: int,
    code: str,
    message: str,
    retry_after_ms: float | None = None,
    address: tuple[str, int] | None = None,
) -> dict[str, Any]:
    """The terminal failure frame — structured, with the retriable flag.

    ``retry_after_ms`` is the router's admission-control hint: an
    ``OVERLOADED`` shed carrying it tells the client *when* backing off
    is worth it instead of leaving the backoff curve to guesswork.
    ``address`` rides on ``REDIRECT``: the ``(host, port)`` of the shard
    that owns the request, for clients that asked with ``redirect_ok``.
    """
    frame = {
        "id": request_id,
        "type": "error",
        "code": code,
        "message": message,
        "retriable": code in RETRIABLE_CODES,
    }
    if retry_after_ms is not None:
        frame["retry_after_ms"] = retry_after_ms
    if address is not None:
        frame["address"] = [address[0], address[1]]
    return frame


def pong_frame(request_id: int) -> dict[str, Any]:
    return {"id": request_id, "type": "pong"}


def welcome_frame(request_id: int, shard_id: str, role: str) -> dict[str, Any]:
    """The answer to ``hello``: who am I talking to, and which protocol
    generation does it speak?  Routers answer with ``role="router"``,
    shard workers with ``role="worker"``, a plain service with
    ``role="service"``."""
    return {
        "id": request_id,
        "type": "welcome",
        "protocol_version": PROTOCOL_VERSION,
        "shard_id": shard_id,
        "role": role,
    }


def status_frame(request_id: int, status: dict[str, Any]) -> dict[str, Any]:
    """The answer to ``status``: one JSON object describing the peer
    (and, for a router, the whole cluster topology)."""
    return {"id": request_id, "type": "status", "status": status}


def subscribed_frame(
    request_id: int, rows: int, resumed: bool, seq: int
) -> dict[str, Any]:
    """The ack ending a subscribe's snapshot: the standing query is live.

    ``resumed`` means a persisted registration was picked back up — no
    snapshot pages were sent, and any rows the client missed while away
    arrive as an immediate ``delta`` (diffed against the persisted
    snapshot, which is exactly the last state delivered to it)."""
    return {
        "id": request_id,
        "type": "subscribed",
        "rows": rows,
        "resumed": resumed,
        "seq": seq,
    }


def delta_frame(
    request_id: int,
    seq: int,
    schema: list[str],
    added: list[tuple],
    removed: list[tuple],
    host: str,
    revision: int,
    reason: str,
) -> dict[str, Any]:
    """One pushed row-level change of a standing query's answer."""
    return {
        "id": request_id,
        "type": "delta",
        "seq": seq,
        "schema": schema,
        "added": [list(row) for row in added],
        "removed": [list(row) for row in removed],
        "host": host,
        "revision": revision,
        "reason": reason,
    }


def unsubscribed_frame(request_id: int) -> dict[str, Any]:
    return {"id": request_id, "type": "unsubscribed"}


def metrics_frame(request_id: int, snapshot: dict[str, Any]) -> dict[str, Any]:
    return {"id": request_id, "type": "metrics", "metrics": snapshot}
