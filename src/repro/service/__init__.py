"""The webbase query service: a long-running, multi-client server.

The paper measures per-site query latency because end users *wait* on
live form fetches; a webbase is therefore meant to be served, not rebuilt
per query.  This package is that service layer, on top of all three
paper layers and the engine underneath them:

* :mod:`repro.service.protocol` — the line-delimited JSON wire format
  (requests, streamed result pages, structured errors);
* :mod:`repro.service.server` — :class:`WebBaseService`: one shared
  :class:`~repro.core.webbase.WebBase` (cross-query cache, metrics,
  navigation maps) behind a TCP socket, with bounded admission,
  load shedding, per-client concurrency limits, per-request deadlines,
  streaming results and graceful drain;
* :mod:`repro.service.client` — :class:`ServiceClient`, the in-process
  client library the CLI, tests and benchmarks use.
"""

from repro.service.client import (
    ClientLimited,
    DeadlineExceededError,
    Overloaded,
    QueryOutcome,
    ServiceClient,
    ServiceError,
    ServiceShuttingDown,
)
from repro.service.server import ServiceConfig, WebBaseService

__all__ = [
    "ClientLimited",
    "DeadlineExceededError",
    "Overloaded",
    "QueryOutcome",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceShuttingDown",
    "WebBaseService",
]
