"""A WebSQL/W3QL-style baseline: querying the Web by link traversal only.

Related work (Section 8): "Web query languages such as W3QL, WebSQL,
WebLog, and Florid ... view the Web as a collection of unstructured
documents organized as a graph, and users can declaratively express how
to navigate portions of the Web to find documents with certain features."
Crucially, they follow *links*; they do not fill out *forms* — and the
paper's motivation (citing Lawrence & Giles) is that the vast majority of
Web data is reachable only through forms.

This module implements that baseline faithfully enough to measure the
claim: a link-path query engine with regex path patterns over anchor
text, plus a text selector over reached documents.  The coverage
benchmark then compares how much of the car-ad corpus the two approaches
can see: the link-only baseline stops at every search form, the webbase
walks through them.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.relational.relation import Relation
from repro.web.browser import Browser, NavigationError
from repro.web.http import Url, parse_url
from repro.web.page import WebPage


@dataclass(frozen=True)
class PathPattern:
    """A WebSQL-style path: up to ``max_depth`` link hops from the start,
    each hop's anchor text matching ``link_regex`` (``.*`` = any link)."""

    link_regex: str = ".*"
    max_depth: int = 3
    same_host_only: bool = True


@dataclass
class CrawlResult:
    """Everything a link-only query engine could see."""

    pages: list[WebPage] = field(default_factory=list)
    pages_fetched: int = 0

    def text_corpus(self) -> str:
        return "\n".join(page.dom.text() for page in self.pages)


def crawl(browser: Browser, start: Url | str, pattern: PathPattern) -> CrawlResult:
    """Breadth-first link traversal from ``start`` under ``pattern``."""
    if isinstance(start, str):
        start = parse_url(start)
    matcher = re.compile(pattern.link_regex, re.IGNORECASE)
    result = CrawlResult()
    try:
        root = browser.get(start)
    except NavigationError:
        return result
    seen_urls = {str(root.url)}
    result.pages.append(root)
    frontier: list[tuple[WebPage, int]] = [(root, 0)]
    while frontier:
        page, depth = frontier.pop(0)
        if depth >= pattern.max_depth:
            continue
        for link in page.links:
            if pattern.same_host_only and link.address.host != start.host:
                continue
            if not matcher.search(link.name):
                continue
            url_text = str(link.address)
            if url_text in seen_urls:
                continue
            seen_urls.add(url_text)
            try:
                target = browser.get(link.address)
            except NavigationError:
                continue
            result.pages.append(target)
            frontier.append((target, depth + 1))
    result.pages_fetched = len(result.pages)
    return result


def select_documents(result: CrawlResult, content_regex: str) -> Relation:
    """The WebSQL SELECT: documents whose text matches ``content_regex``.

    Returns a relation (url, title) — which is all a document-level query
    language can return; there is no schema to project ad attributes from.
    """
    matcher = re.compile(content_regex, re.IGNORECASE)
    rows = []
    for page in result.pages:
        if matcher.search(page.dom.text()):
            rows.append((str(page.url), page.title))
    return Relation(["url", "title"], rows)


def dynamic_content_coverage(world, result: CrawlResult, host: str) -> float:
    """Fraction of ``host``'s ads whose contact string is visible anywhere
    in the crawled corpus.  Contact strings are unique per ad, so this
    measures exactly how much form-gated data link traversal exposed."""
    ads = world.dataset.ads_for(host)
    if not ads:
        return 0.0
    corpus = result.text_corpus()
    visible = sum(1 for ad in ads if ad.contact in corpus)
    return visible / len(ads)
