"""The canned-interface baseline for the external schema.

"Naive users are usually given canned queries needed to perform a set of
specific tasks.  These canned interfaces served well in the case of
fairly structured corporate environments, but they are too limiting for
the wide audience of Web users."

A :class:`CannedQuery` is exactly such an interface: a fixed query
template with a small set of fill-in parameters.  :func:`coverage`
measures how many of a workload's ad-hoc questions a canned catalog can
answer at all — the quantitative version of "too limiting" that the
structured UR is designed to fix.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.relational.relation import Relation
from repro.ur.planner import StructuredUR
from repro.ur.query import URQuery, parse_query


class CannedError(Exception):
    """A canned query was invoked with the wrong parameters."""


@dataclass(frozen=True)
class CannedQuery:
    """A fixed query with ``{placeholder}`` slots for its parameters."""

    name: str
    description: str
    template: str
    params: tuple[str, ...]

    def instantiate(self, **values: str) -> URQuery:
        missing = set(self.params) - set(values)
        if missing:
            raise CannedError("missing parameters: %s" % sorted(missing))
        extra = set(values) - set(self.params)
        if extra:
            raise CannedError("unknown parameters: %s" % sorted(extra))
        text = self.template
        for key, value in values.items():
            text = text.replace("{%s}" % key, str(value))
        return parse_query(text)

    def run(self, ur: StructuredUR, **values: str) -> Relation:
        return ur.answer(self.instantiate(**values))

    def answers(self, question: URQuery) -> bool:
        """Whether some instantiation of this template is the question.

        A canned form can only vary its parameter slots; the question must
        match the template with constants in exactly those positions.
        """
        pattern = re.escape(self.template)
        for param in self.params:
            pattern = pattern.replace(re.escape("{%s}" % param), r"[^'\s]+")
        # Compare on the parsed-normalized text of the question.
        question_text = _normalize(question)
        return re.fullmatch(pattern, question_text) is not None


def _normalize(query: URQuery) -> str:
    """Render a URQuery in the canonical template notation."""
    from repro.relational.conditions import And, Comparison

    text = "SELECT " + ", ".join(query.outputs)
    if query.condition is None:
        return text
    parts = (
        query.condition.parts
        if isinstance(query.condition, And)
        else (query.condition,)
    )
    rendered = []
    for part in parts:
        if not isinstance(part, Comparison):
            return text + " WHERE <complex>"
        rendered.append("%s %s %s" % (_side(part.left), part.op, _side(part.right)))
    return text + " WHERE " + " AND ".join(rendered)


def _side(operand) -> str:
    from repro.relational.conditions import Attr

    if isinstance(operand, Attr):
        return operand.name
    literal = operand.literal
    return "'%s'" % literal if isinstance(literal, str) else str(literal)


def used_car_canned_catalog() -> list[CannedQuery]:
    """The kind of canned shopping interface a 1999 portal would offer."""
    return [
        CannedQuery(
            name="find_by_make_model",
            description="List ads for a make and model",
            template=(
                "SELECT make, model, year, price, contact "
                "WHERE make = '{make}' AND model = '{model}'"
            ),
            params=("make", "model"),
        ),
        CannedQuery(
            name="find_by_make_under_price",
            description="List ads for a make under a price ceiling",
            template=(
                "SELECT make, model, year, price, contact "
                "WHERE make = '{make}' AND price < {max_price}"
            ),
            params=("make", "max_price"),
        ),
        CannedQuery(
            name="blue_book_value",
            description="Blue-book value of a car",
            template=(
                "SELECT make, model, year, condition, bb_price "
                "WHERE make = '{make}' AND model = '{model}' "
                "AND condition = '{condition}'"
            ),
            params=("make", "model", "condition"),
        ),
    ]


def coverage(catalog: list[CannedQuery], workload: list[str]) -> tuple[float, list[str]]:
    """The fraction of workload questions some canned query answers, plus
    the unanswerable remainder."""
    unanswered = []
    for question_text in workload:
        question = parse_query(question_text)
        if not any(c.answers(question) for c in catalog):
            unanswered.append(question_text)
    answered = len(workload) - len(unanswered)
    return (answered / len(workload) if workload else 1.0), unanswered
