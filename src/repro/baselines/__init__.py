"""Baselines the paper positions the webbase against: link-only Web query
languages (WebSQL/W3QL-style) and canned form interfaces."""

from repro.baselines.canned import (
    CannedError,
    CannedQuery,
    coverage,
    used_car_canned_catalog,
)
from repro.baselines.websql import (
    CrawlResult,
    PathPattern,
    crawl,
    dynamic_content_coverage,
    select_documents,
)

__all__ = [
    "CannedError",
    "CannedQuery",
    "CrawlResult",
    "PathPattern",
    "coverage",
    "crawl",
    "dynamic_content_coverage",
    "select_documents",
    "used_car_canned_catalog",
]
