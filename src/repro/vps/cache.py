"""Result caching for VPS fetches.

The paper's conclusions call out caching (with parallelization) as the key
technique for acceptable response times when querying many sites.  This is
that cache: a bounded memo of ``(relation, bound-values) -> Relation`` that
sits in front of a :class:`~repro.vps.schema.VpsSchema` and satisfies the
same Catalog protocol, so it can be slotted under the logical layer
transparently.

The cache is an *always-present* layer of the webbase: a
:class:`CachePolicy` decides whether it stores anything.  With the no-op
policy every fetch passes straight through (the cold ablation arm); with
an LRU policy results are shared across queries.  Either way there is
exactly one fetch path — no ``cache or vps`` branching at call sites.
The ablation benchmark compares cold vs warm evaluations.
"""

from __future__ import annotations

import threading

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

from repro.relational.bindings import BindingSets
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.vps.schema import VpsSchema


@dataclass(frozen=True)
class CachePolicy:
    """Whether, and how much, the cross-query result cache may store."""

    enabled: bool = True
    max_entries: int = 1024

    @classmethod
    def noop(cls) -> "CachePolicy":
        """A disabled cache: every fetch goes to the source."""
        return cls(enabled=False, max_entries=0)

    @classmethod
    def lru(cls, max_entries: int = 1024) -> "CachePolicy":
        """A bounded least-recently-used cache shared across queries."""
        return cls(enabled=True, max_entries=max_entries)


class ResultCache:
    """The always-present cache layer over a VPS schema (Catalog-compatible).

    Thread-safe: parallel execution contexts fetch through one shared
    instance.  An :class:`~repro.core.execution.ExecutionContext` passed to
    :meth:`fetch` rides through to the VPS layer on misses, so uncached
    fetches still get the engine's workers, retries and tracing.
    """

    def __init__(self, inner: VpsSchema, policy: CachePolicy | None = None) -> None:
        self.inner = inner
        self.policy = policy or CachePolicy.lru()
        self._cache: OrderedDict[tuple, Relation] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    @property
    def max_entries(self) -> int:
        return self.policy.max_entries

    def base_schema(self, name: str) -> Schema:
        return self.inner.base_schema(name)

    def base_binding_sets(self, name: str) -> BindingSets:
        return self.inner.base_binding_sets(name)

    def _fetch_inner(self, name: str, given: dict[str, Any], context: Any) -> Relation:
        if context is None:
            return self.inner.fetch(name, given)
        return self.inner.fetch(name, given, context=context)

    def fetch(
        self, name: str, given: dict[str, Any], context: Any = None
    ) -> Relation:
        if not self.policy.enabled:
            return self._fetch_inner(name, given, context)
        key = (name, tuple(sorted((a, v) for a, v in given.items() if v is not None)))
        with self._lock:
            cached = self._cache.get(key)
            if cached is not None:
                self.hits += 1
                self._cache.move_to_end(key)
                return cached
            self.misses += 1
        result = self._fetch_inner(name, given, context)
        with self._lock:
            self._cache[key] = result
            if len(self._cache) > self.policy.max_entries:
                self._cache.popitem(last=False)
        return result

    def invalidate(self, name: str | None = None) -> int:
        """Drop cached results (all of them, or one relation's); returns the
        number of entries removed."""
        with self._lock:
            if name is None:
                removed = len(self._cache)
                self._cache.clear()
                return removed
            stale = [k for k in self._cache if k[0] == name]
            for key in stale:
                del self._cache[key]
            return len(stale)

    @property
    def stats(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "entries": len(self._cache)}


class CachingVps(ResultCache):
    """Backwards-compatible LRU cache (the pre-engine bolt-on interface)."""

    def __init__(self, inner: VpsSchema, max_entries: int = 1024) -> None:
        super().__init__(inner, CachePolicy.lru(max_entries))
