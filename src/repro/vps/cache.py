"""Result caching for VPS fetches.

The paper's conclusions call out caching (with parallelization) as the key
technique for acceptable response times when querying many sites.  This is
that cache: a bounded memo of ``(relation, bound-values) -> Relation`` that
sits in front of a :class:`~repro.vps.schema.VpsSchema` and satisfies the
same Catalog protocol, so it can be slotted under the logical layer
transparently.  The ablation benchmark compares cold vs warm evaluations.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any

from repro.relational.bindings import BindingSets
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.vps.schema import VpsSchema


class CachingVps:
    """An LRU result cache over a VPS schema (Catalog-compatible)."""

    def __init__(self, inner: VpsSchema, max_entries: int = 1024) -> None:
        self.inner = inner
        self.max_entries = max_entries
        self._cache: OrderedDict[tuple, Relation] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def base_schema(self, name: str) -> Schema:
        return self.inner.base_schema(name)

    def base_binding_sets(self, name: str) -> BindingSets:
        return self.inner.base_binding_sets(name)

    def fetch(self, name: str, given: dict[str, Any]) -> Relation:
        key = (name, tuple(sorted((a, v) for a, v in given.items() if v is not None)))
        cached = self._cache.get(key)
        if cached is not None:
            self.hits += 1
            self._cache.move_to_end(key)
            return cached
        self.misses += 1
        result = self.inner.fetch(name, given)
        self._cache[key] = result
        if len(self._cache) > self.max_entries:
            self._cache.popitem(last=False)
        return result

    def invalidate(self, name: str | None = None) -> int:
        """Drop cached results (all of them, or one relation's); returns the
        number of entries removed."""
        if name is None:
            removed = len(self._cache)
            self._cache.clear()
            return removed
        stale = [k for k in self._cache if k[0] == name]
        for key in stale:
            del self._cache[key]
        return len(stale)

    @property
    def stats(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "entries": len(self._cache)}
