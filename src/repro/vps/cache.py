"""Result caching for VPS fetches — staleness-aware and observable.

The paper's conclusions call out caching (with parallelization) as the key
technique for acceptable response times when querying many sites.  This is
that cache: a bounded memo of ``(relation, bound-values) -> Relation`` that
sits in front of a :class:`~repro.vps.schema.VpsSchema` and satisfies the
same Catalog protocol, so it can be slotted under the logical layer
transparently.

The cache is an *always-present* layer of the webbase: a
:class:`CachePolicy` decides whether it stores anything.  With the no-op
policy every fetch passes straight through (the cold ablation arm); with
an LRU policy results are shared across queries.  Either way there is
exactly one fetch path — no ``cache or vps`` branching at call sites.

Because the underlying sites are *dynamic*, a cross-query cache is only
safe if it can notice the world moving underneath it.  Three mechanisms
cover that:

* **TTLs** — a default and per-relation time-to-live bound how long an
  entry may be served without revalidation (``CachePolicy.ttl_seconds`` /
  ``relation_ttls``);
* **revision stamps** — every entry records the navigation-map revision of
  its host at store time.  When site maintenance auto-absorbs a change
  (:func:`~repro.navigation.maintenance.apply_auto_changes`), the host's
  revision is bumped and the host's entries are evicted, so nothing
  captured under the old map is ever served silently;
* **quarantine** — a change that needs *manual* intervention (a new form
  attribute, a vanished link) puts the host's entries in quarantine:
  depending on ``CachePolicy.stale_mode`` they are either served with an
  explicit staleness flag (``cache stale`` on the trace span, counted as
  ``cache.stale_serves``) or bypassed entirely until the designer
  re-demonstrates the flow and the quarantine is lifted.

Concurrent misses on the same key coalesce into one upstream fetch
(single-flight): the first worker fetches, the rest wait and share the
result.  Failures are never stored and never shared — a waiter whose
leader failed retries the fetch itself, so a transient fault cannot
poison the cache.

All cache traffic is counted into a :class:`~repro.core.metrics.MetricsRegistry`
and, when a fetch carries an execution context, mirrored onto trace spans
(``cache hit`` / ``miss`` / ``stale``), so ``python -m repro metrics`` can
reconcile counters against spans.
"""

from __future__ import annotations

import threading
import time

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.core.metrics import MetricsRegistry
from repro.relational.bindings import BindingSets
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.vps.schema import VpsSchema

STALE_MODES = ("refetch", "serve_stale")


@dataclass(frozen=True)
class CachePolicy:
    """Whether, and how much — and for how long — the cache may store.

    ``ttl_seconds`` is the default entry lifetime (``None`` = no expiry);
    ``relation_ttls`` overrides it per relation.  ``stale_mode`` picks what
    happens to entries of a quarantined host (one with unabsorbed manual
    site changes): ``"refetch"`` bypasses them, ``"serve_stale"`` serves
    them flagged as stale.
    """

    enabled: bool = True
    max_entries: int = 1024
    ttl_seconds: float | None = None
    relation_ttls: tuple[tuple[str, float], ...] = ()
    stale_mode: str = "refetch"

    def __post_init__(self) -> None:
        if self.stale_mode not in STALE_MODES:
            raise ValueError(
                "stale_mode must be one of %s; got %r" % (STALE_MODES, self.stale_mode)
            )

    @classmethod
    def noop(cls) -> "CachePolicy":
        """A disabled cache: every fetch goes to the source."""
        return cls(enabled=False, max_entries=0)

    @classmethod
    def lru(
        cls,
        max_entries: int = 1024,
        ttl_seconds: float | None = None,
        relation_ttls: Mapping[str, float] | None = None,
        stale_mode: str = "refetch",
    ) -> "CachePolicy":
        """A bounded least-recently-used cache shared across queries."""
        return cls(
            enabled=True,
            max_entries=max_entries,
            ttl_seconds=ttl_seconds,
            relation_ttls=tuple(sorted((relation_ttls or {}).items())),
            stale_mode=stale_mode,
        )

    def ttl_for(self, relation: str) -> float | None:
        """The effective TTL of one relation's entries."""
        for name, ttl in self.relation_ttls:
            if name == relation:
                return ttl
        return self.ttl_seconds


@dataclass
class CacheEntry:
    """One stored result, stamped for staleness checks."""

    value: Relation
    relation: str
    host: str
    revision: int  # the host's navigation-map revision at store time
    stored_at: float  # cache-clock seconds
    expires_at: float | None  # None = never expires
    warmed: bool = False  # loaded from the tiered store, not fetched live


class InFlight:
    """The rendezvous for one in-progress upstream fetch (single-flight)."""

    __slots__ = ("event", "result", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.result: Any = None
        self.error: BaseException | None = None


class ResultCache:
    """The always-present cache layer over a VPS schema (Catalog-compatible).

    Thread-safe: parallel execution contexts fetch through one shared
    instance.  An :class:`~repro.core.execution.ExecutionContext` passed to
    :meth:`fetch` rides through to the VPS layer on misses, so uncached
    fetches still get the engine's workers, retries and tracing — and
    cache hits are recorded as trace spans on it.

    ``clock`` is the TTL time source (seconds, monotonic); tests inject a
    fake one to step time deterministically.
    """

    def __init__(
        self,
        inner: VpsSchema,
        policy: CachePolicy | None = None,
        metrics: MetricsRegistry | None = None,
        clock: Callable[[], float] | None = None,
    ) -> None:
        self.inner = inner
        self.policy = policy or CachePolicy.lru()
        self.metrics = metrics or MetricsRegistry()
        self._clock = clock or time.monotonic
        self._cache: OrderedDict[tuple, CacheEntry] = OrderedDict()
        self._inflight: dict[tuple, InFlight] = {}
        self._revisions: dict[str, int] = {}
        self._quarantined: set[str] = set()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        # Optional persistence underneath (repro.store.TieredStore): filled
        # results are mirrored to silver, revision bumps and quarantines to
        # bronze, and a restart warms from the store instead of refetching.
        self.store: Any = None
        # Optional cluster federation (repro.cluster.federation): flight
        # leaders consult the cross-shard cache before fetching live, and
        # publish their fills so sibling shards amortize the same prefix
        # walk.  Claims extend local single-flight across shards: when a
        # sibling already holds the fill claim, this shard polls for the
        # published result (up to ``federation_wait_seconds``) instead of
        # duplicating the walk.  Strictly fail-open: a federation error is
        # a miss, a denied-then-timed-out claim falls back to fetching.
        self.federation: Any = None
        self.federation_wait_seconds = 30.0

    @property
    def max_entries(self) -> int:
        return self.policy.max_entries

    def base_schema(self, name: str) -> Schema:
        return self.inner.base_schema(name)

    def base_binding_sets(self, name: str) -> BindingSets:
        return self.inner.base_binding_sets(name)

    # -- maintenance-driven invalidation ------------------------------------

    def host_of(self, name: str) -> str:
        """The host serving one relation ('' when the inner catalog is a
        test double without host information)."""
        host_of = getattr(self.inner, "host_of", None)
        if host_of is not None:
            return host_of(name)
        return ""

    def revision(self, host: str) -> int:
        """The navigation-map revision entries of ``host`` are stamped with."""
        with self._lock:
            return self._revisions.get(host, 0)

    def bump_revision(self, host: str) -> int:
        """An auto-absorbed site change: advance the host's map revision and
        evict its entries.  Returns the number of entries evicted."""
        with self._lock:
            self._revisions[host] = revision = self._revisions.get(host, 0) + 1
            evicted = self._evict_host(host, "cache.invalidations")
        if self.store is not None:
            self.store.record_revision(host, revision)
        self._federation_stamp(host, revision)
        return evicted

    def quarantine(self, host: str) -> int:
        """A manual-intervention site change: flag the host's entries as
        suspect.  Returns how many entries are affected."""
        with self._lock:
            self._quarantined.add(host)
            affected = sum(1 for e in self._cache.values() if e.host == host)
        if self.store is not None:
            self.store.record_quarantine(host, True)
        return affected

    def clear_quarantine(self, host: str, evict: bool = True) -> int:
        """The designer re-demonstrated the flow: lift the quarantine and
        (by default) drop the pre-change entries."""
        revision = None
        with self._lock:
            self._quarantined.discard(host)
            if evict:
                self._revisions[host] = revision = self._revisions.get(host, 0) + 1
                evicted = self._evict_host(host, "cache.invalidations")
            else:
                evicted = 0
        if self.store is not None:
            self.store.record_quarantine(host, False)
            if revision is not None:
                self.store.record_revision(host, revision)
        if revision is not None:
            self._federation_stamp(host, revision)
        return evicted

    def quarantined_hosts(self) -> frozenset[str]:
        with self._lock:
            return frozenset(self._quarantined)

    def adopt_revision(self, host: str, revision: int) -> bool:
        """Shard takeover: adopt a (higher) revision observed elsewhere.

        Entries stamped with the old revision die lazily at their next
        lookup (:meth:`_live_entry`'s revision check), exactly as after a
        :meth:`bump_revision`.  Never moves a revision backwards."""
        moved = False
        with self._lock:
            if revision > self._revisions.get(host, 0):
                self._revisions[host] = revision
                moved = True
        if moved and self.store is not None:
            self.store.record_revision(host, revision)
        if moved:
            self._federation_stamp(host, revision)
        return moved

    # -- persistence ---------------------------------------------------------

    def attach_store(self, store: Any) -> None:
        """Layer a tiered store underneath: fills mirror to silver, bumps
        and quarantines to bronze.

        Revision and quarantine state are adopted from the store *here*,
        before any warm load or drift check — so a restart's drift bump
        lands *on top of* the persisted revision instead of colliding
        with it (a fresh cache starts at revision 0; bumping 0 → 1 would
        alias the stamp of segments persisted after an earlier sweep)."""
        self.store = store
        with self._lock:
            for host, revision in store.revisions().items():
                if revision > self._revisions.get(host, 0):
                    self._revisions[host] = revision
            self._quarantined.update(store.quarantined())

    def warm_from_store(self, store: Any = None) -> int:
        """Load current-revision silver segments into the cache (restart).

        Every candidate segment is admitted only if its stamp equals the
        host's current revision (adopted at :meth:`attach_store`, plus
        any drift bumps since) — keyed by revision, never by eviction
        order, so an entry persisted before a later bump can never
        resurface (the invariant the store satellite pins).  Returns the
        number of entries loaded.

        ``store`` warms from a *foreign* store instead of the attached
        one — shard takeover reads the dead sibling's silver tier under
        the revisions adopted from it, without adopting its logs.
        """
        source = store if store is not None else self.store
        if source is None or not self.policy.enabled:
            return 0
        loaded = 0
        with self._lock:
            now = self._clock()
            for entry in source.warm_entries():
                key = (entry.relation, entry.key)
                if key in self._cache:
                    continue
                if entry.revision != self._revisions.get(entry.host, 0):
                    continue
                ttl = self.policy.ttl_for(entry.relation)
                self._cache[key] = CacheEntry(
                    value=entry.value,
                    relation=entry.relation,
                    host=entry.host,
                    revision=entry.revision,
                    stored_at=now,
                    expires_at=None if ttl is None else now + ttl,
                    warmed=True,
                )
                if len(self._cache) > self.policy.max_entries:
                    self._cache.popitem(last=False)
                    self.metrics.counter("cache.evictions").inc()
                loaded += 1
            if loaded:
                self.metrics.gauge("cache.entries").set(len(self._cache))
        if loaded:
            self.metrics.counter("store.warm_loads").inc(loaded)
        return loaded

    def _evict_host(self, host: str, counter: str) -> int:
        """Drop every entry of one host (caller holds the lock)."""
        stale = [k for k, e in self._cache.items() if e.host == host]
        for key in stale:
            del self._cache[key]
        if stale:
            self.metrics.counter(counter).inc(len(stale))
            self.metrics.gauge("cache.entries").set(len(self._cache))
        return len(stale)

    def invalidate(self, name: str | None = None) -> int:
        """Drop cached results (all of them, or one relation's); returns the
        number of entries removed."""
        with self._lock:
            if name is None:
                removed = len(self._cache)
                self._cache.clear()
            else:
                stale = [k for k in self._cache if k[0] == name]
                for key in stale:
                    del self._cache[key]
                removed = len(stale)
            if removed:
                self.metrics.counter("cache.invalidations").inc(removed)
                self.metrics.gauge("cache.entries").set(len(self._cache))
            return removed

    # -- the fetch path ------------------------------------------------------

    def _fetch_inner(self, name: str, given: dict[str, Any], context: Any) -> Relation:
        if context is None:
            return self.inner.fetch(name, given)
        return self.inner.fetch(name, given, context=context)

    def _key(self, name: str, given: dict[str, Any]) -> tuple:
        return (name, tuple(sorted((a, v) for a, v in given.items() if v is not None)))

    def _live_entry(self, key: tuple, host: str) -> CacheEntry | None:
        """The entry under ``key`` if it is still servable; evicts revision
        mismatches and TTL expiries (caller holds the lock)."""
        entry = self._cache.get(key)
        if entry is None:
            return None
        if entry.revision != self._revisions.get(host, 0):
            del self._cache[key]
            self.metrics.counter("cache.invalidations").inc()
            self.metrics.gauge("cache.entries").set(len(self._cache))
            return None
        if entry.expires_at is not None and self._clock() >= entry.expires_at:
            del self._cache[key]
            self.metrics.counter("cache.expirations").inc()
            self.metrics.gauge("cache.entries").set(len(self._cache))
            return None
        return entry

    def _stale_entry(self, key: tuple, host: str) -> CacheEntry | None:
        """The entry under ``key`` for a *flagged-stale* serve: the map
        revision must still match (a superseded map is never served), but
        TTL expiry is forgiven — a quarantined host cannot be refetched to
        revalidate, and serving a known-stale entry past its TTL is
        exactly what ``serve_stale`` promises (caller holds the lock)."""
        entry = self._cache.get(key)
        if entry is None:
            return None
        if entry.revision != self._revisions.get(host, 0):
            del self._cache[key]
            self.metrics.counter("cache.invalidations").inc()
            self.metrics.gauge("cache.entries").set(len(self._cache))
            return None
        return entry

    def _record_hit(
        self, name: str, host: str, context: Any, stale: bool, warmed: bool = False
    ) -> None:
        if stale:
            self.metrics.counter("cache.stale_serves").inc()
        else:
            self.metrics.counter("cache.hits").inc()
        if warmed:
            self.metrics.counter("store.warm_hits").inc()
        if context is not None:
            with context.span("fetch", name, host=host, layer="cache") as span:
                span.cache = "stale" if stale else "hit"

    def _store(self, key: tuple, name: str, host: str, revision: int, value: Relation) -> bool:
        """Insert one fetched result (caller holds the lock); skipped when
        the host's revision moved mid-fetch — the result may straddle the
        change, so it cannot be trusted across queries.  Returns whether
        the entry was stored (callers mirror stored entries to silver)."""
        if revision != self._revisions.get(host, 0):
            return False
        now = self._clock()
        ttl = self.policy.ttl_for(name)
        self._cache[key] = CacheEntry(
            value=value,
            relation=name,
            host=host,
            revision=revision,
            stored_at=now,
            expires_at=None if ttl is None else now + ttl,
        )
        if len(self._cache) > self.policy.max_entries:
            self._cache.popitem(last=False)
            self.metrics.counter("cache.evictions").inc()
        self.metrics.gauge("cache.entries").set(len(self._cache))
        return True

    def _persist_silver(self, key: tuple, name: str, host: str, revision: int, value: Relation) -> None:
        """Mirror one freshly stored entry to the silver tier (outside the
        cache lock — persistence must never serialize the fetch path)."""
        if self.store is not None:
            self.store.persist_result(name, host, revision, key[1], value)

    def _record_intent(self, key: tuple, host: str, revision: int) -> None:
        """Write-ahead note that an upstream fetch is about to run."""
        if self.store is not None:
            self.store.record_intent(key[0], host, revision, key[1])

    def _federation_stamp(self, host: str, revision: int) -> None:
        """Tell the cluster federation this host's revision moved, so
        sibling shards stop being offered fills captured under the old
        navigation map (fail-open, like every federation call)."""
        fed = self.federation
        if fed is None:
            return
        try:
            fed.publish_revision(host, revision)
        except Exception:  # noqa: BLE001
            pass

    def _federation_lookup(
        self, name: str, host: str, key: tuple, revision: int
    ) -> Relation | None:
        """Ask the cluster federation for this fill (fail-open: any
        transport error, revision mismatch, or absence is just a miss)."""
        fed = self.federation
        if fed is None:
            return None
        try:
            return fed.lookup(name, host, key[1], revision)
        except Exception:  # noqa: BLE001 - the federation must never break a fetch
            return None

    def _federation_publish(
        self, name: str, host: str, key: tuple, revision: int, value: Relation
    ) -> None:
        """Offer one freshly stored fill to the cluster federation."""
        fed = self.federation
        if fed is None:
            return
        try:
            fed.publish(name, host, key[1], revision, value)
        except Exception:  # noqa: BLE001 - fail-open, same as lookup
            pass

    def _federation_claim(self, name: str, key: tuple) -> bool:
        """Try to become the cluster-wide fetcher for this fill.  True
        means fetch (claim won, no federation, an older federation without
        claims, or a bus error — never let coordination block a fetch)."""
        fed = self.federation
        claim = getattr(fed, "claim", None)
        if claim is None:
            return True
        try:
            return bool(claim(name, key[1]))
        except Exception:  # noqa: BLE001 - fail-open
            return True

    def _federation_release(self, name: str, key: tuple) -> None:
        """Give up a claim whose fill failed or was not stored, so waiters
        contend for it instead of running out their wait budget."""
        fed = self.federation
        release = getattr(fed, "release", None)
        if release is None:
            return
        try:
            release(name, key[1])
        except Exception:  # noqa: BLE001 - fail-open
            pass

    def _federation_await(
        self, name: str, host: str, key: tuple, revision: int, context: Any
    ) -> Relation | None:
        """A sibling shard holds the fill claim: poll for its publish,
        periodically re-contending for the claim so an expired holder's
        key is adopted rather than orphaned.  Returns the published fill,
        or None when this shard should fetch after all (claim won, or the
        wait budget lapsed).  Honors cancellation like a coalesced wait.
        """
        poll = getattr(context, "check_cancelled", None)
        deadline = time.monotonic() + self.federation_wait_seconds
        next_claim = time.monotonic() + 0.25
        while time.monotonic() < deadline:
            time.sleep(0.05)
            if poll is not None:
                poll("federated:%s" % name)
            value = self._federation_lookup(name, host, key, revision)
            if value is not None:
                return value
            now = time.monotonic()
            if now >= next_claim:
                next_claim = now + 0.25
                if self._federation_claim(name, key):
                    return None
        return None

    def _resolve_fed_hit(
        self,
        name: str,
        host: str,
        key: tuple,
        revision: int,
        flight: "InFlight",
        value: Relation,
        context: Any,
    ) -> None:
        """A federation lookup satisfied this flight: store, account the
        hit, and wake the local coalesced waiters."""
        with self._lock:
            self.hits += 1
            stored = self._store(key, name, host, revision, value)
            self._inflight.pop(key, None)
        self.metrics.counter("cluster.fed_hits").inc()
        if stored:
            self._persist_silver(key, name, host, revision, value)
        self._record_hit(name, host, context, stale=False)
        flight.result = value
        flight.event.set()

    def fetch(
        self, name: str, given: dict[str, Any], context: Any = None
    ) -> Relation:
        if not self.policy.enabled:
            return self._fetch_inner(name, given, context)
        self.metrics.counter("cache.requests").inc()
        key = self._key(name, given)
        host = self.host_of(name)

        # Quarantined host: serve flagged-stale or bypass, never silently.
        if host and host in self.quarantined_hosts():
            if self.policy.stale_mode == "serve_stale":
                # Lookup and LRU touch under ONE lock hold: a concurrent
                # bump_revision between a lookup and a separate touch could
                # evict the key and make move_to_end raise — pinned by
                # tests/test_store_recovery.py (revision-bump regression).
                with self._lock:
                    entry = self._stale_entry(key, host)
                    if entry is not None:
                        self.hits += 1
                        self._cache.move_to_end(key)
                if entry is not None:
                    self._record_hit(name, host, context, stale=True, warmed=entry.warmed)
                    return entry.value
            self.metrics.counter("cache.quarantine_bypass").inc()
            return self._fetch_inner(name, given, context)

        while True:
            leader = False
            with self._lock:
                entry = self._live_entry(key, host)
                if entry is not None:
                    self.hits += 1
                    self._cache.move_to_end(key)
                else:
                    flight = self._inflight.get(key)
                    if flight is None:
                        flight = self._inflight[key] = InFlight()
                        leader = True
                        revision = self._revisions.get(host, 0)
                        # Invariant: exactly one miss per *upstream fetch*.
                        # Only the flight leader counts one, here, under the
                        # lock; coalesced waiters count a hit when the shared
                        # result arrives.  A waiter promoted to leader after a
                        # failed flight counts a fresh miss — correct, because
                        # its retry is a second upstream fetch.  Pinned by
                        # tests/test_metrics.py::TestSingleFlightMissAccounting.
                        # With a federation attached the verdict waits until
                        # the federation answers: a cross-shard hit is a hit
                        # (span and counter), not a miss that fetched nothing.
                        if self.federation is None:
                            self.misses += 1
                            self.metrics.counter("cache.misses").inc()
            if entry is not None:
                self._record_hit(name, host, context, stale=False, warmed=entry.warmed)
                return entry.value
            if leader:
                if self.federation is not None:
                    try:
                        value = self._federation_lookup(name, host, key, revision)
                        if value is None and not self._federation_claim(name, key):
                            # A sibling shard is already walking this fill:
                            # wait for its publish instead of duplicating it.
                            self.metrics.counter("cluster.fed_waits").inc()
                            value = self._federation_await(
                                name, host, key, revision, context
                            )
                    except BaseException as exc:
                        # Cancellation raised out of the wait: fail the
                        # flight so local waiters retry themselves.
                        with self._lock:
                            self._inflight.pop(key, None)
                        flight.error = exc
                        flight.event.set()
                        raise
                    if value is not None:
                        self._resolve_fed_hit(
                            name, host, key, revision, flight, value, context
                        )
                        return value
                    with self._lock:
                        self.misses += 1
                    self.metrics.counter("cache.misses").inc()
                    self.metrics.counter("cluster.fed_misses").inc()
                self._record_intent(key, host, revision)
                try:
                    result = self._fetch_inner(name, given, context)
                except BaseException as exc:
                    # Never store or share a failure: waiters retry themselves.
                    with self._lock:
                        self._inflight.pop(key, None)
                    if self.federation is not None:
                        self._federation_release(name, key)
                    flight.error = exc
                    flight.event.set()
                    raise
                with self._lock:
                    stored = self._store(key, name, host, revision, result)
                    self._inflight.pop(key, None)
                if stored:
                    self._persist_silver(key, name, host, revision, result)
                    self._federation_publish(name, host, key, revision, result)
                elif self.federation is not None:
                    # Not stored means not published: free the claim.
                    self._federation_release(name, key)
                flight.result = result
                flight.event.set()
                return result
            # Another worker is already fetching this key: wait and share —
            # but keep observing cancellation, so a revoked access stops
            # waiting on a leader it no longer wants.
            self.metrics.counter("cache.coalesced").inc()
            poll = getattr(context, "check_cancelled", None)
            if poll is None:
                flight.event.wait()
            else:
                while not flight.event.wait(0.05):
                    poll("coalesced:%s" % name)
            if flight.error is None:
                with self._lock:
                    self.hits += 1
                self._record_hit(name, host, context, stale=False)
                return flight.result
            # The leader failed; loop and try the fetch ourselves.

    def _fetch_inner_batch(
        self, name: str, givens: list[dict[str, Any]], context: Any
    ) -> list[Relation]:
        fetch_batch = getattr(self.inner, "fetch_batch", None)
        if fetch_batch is None:
            return [self._fetch_inner(name, given, context) for given in givens]
        if context is None:
            return fetch_batch(name, givens)
        return fetch_batch(name, givens, context=context)

    def fetch_batch(
        self, name: str, givens: list[dict[str, Any]], context: Any = None
    ) -> list[Relation]:
        """Fetch one relation for a batch of probe bindings, results in
        ``givens`` order.

        Cached keys are served as hits; the distinct misses lead one inner
        batch fetch (stored and announced to coalesced waiters exactly like
        single-flight leaders); keys already in flight elsewhere fall back
        to the per-key path, which waits and shares.  Failures abandon the
        whole lead batch un-stored — waiters retry themselves, preserving
        the never-share-a-failure invariant.
        """
        host = self.host_of(name)
        if not self.policy.enabled:
            return self._fetch_inner_batch(name, givens, context)
        if len(givens) <= 1 or (host and host in self.quarantined_hosts()):
            return [self.fetch(name, given, context=context) for given in givens]
        keys = [self._key(name, given) for given in givens]
        results: dict[tuple, Relation] = {}
        hit_keys: list[tuple] = []
        lead_keys: list[tuple] = []
        lead_givens: list[dict[str, Any]] = []
        flights: dict[tuple, InFlight] = {}
        with self._lock:
            revision = self._revisions.get(host, 0)
            seen: set[tuple] = set()
            for key, given in zip(keys, givens):
                if key in seen:
                    continue  # duplicate within the batch: one lookup
                seen.add(key)
                entry = self._live_entry(key, host)
                if entry is not None:
                    self.metrics.counter("cache.requests").inc()
                    self.hits += 1
                    self._cache.move_to_end(key)
                    results[key] = entry.value
                    hit_keys.append((key, entry.warmed))
                elif key not in self._inflight:
                    self.metrics.counter("cache.requests").inc()
                    flight = self._inflight[key] = InFlight()
                    flights[key] = flight
                    lead_keys.append(key)
                    lead_givens.append(given)
                    if self.federation is None:
                        self.misses += 1
                        self.metrics.counter("cache.misses").inc()
                # else: a foreign flight owns it — resolved below by the
                # per-key path, which waits, shares, and does its own
                # request/hit accounting (counting here too would double
                # count the lookup).
        for key, warmed in hit_keys:
            self._record_hit(name, host, context, stale=False, warmed=warmed)
        awaited_keys: list[tuple] = []
        awaited_givens: list[dict[str, Any]] = []
        if lead_keys and self.federation is not None:
            # Resolve as many lead keys as the federation holds before
            # paying for the inner batch fetch (same hit-vs-miss verdict
            # deferral as the single-key path).  Keys a sibling shard has
            # claimed are set aside: they resolve after our own batch
            # fetch, by which time the sibling has likely published.
            remaining_keys: list[tuple] = []
            remaining_givens: list[dict[str, Any]] = []
            for key, given in zip(lead_keys, lead_givens):
                value = self._federation_lookup(name, host, key, revision)
                if value is not None:
                    self._resolve_fed_hit(
                        name, host, key, revision, flights[key], value, context
                    )
                    results[key] = value
                elif not self._federation_claim(name, key):
                    self.metrics.counter("cluster.fed_waits").inc()
                    awaited_keys.append(key)
                    awaited_givens.append(given)
                else:
                    with self._lock:
                        self.misses += 1
                    self.metrics.counter("cache.misses").inc()
                    self.metrics.counter("cluster.fed_misses").inc()
                    remaining_keys.append(key)
                    remaining_givens.append(given)
            lead_keys, lead_givens = remaining_keys, remaining_givens
        if lead_keys:
            for key in lead_keys:
                self._record_intent(key, host, revision)
            try:
                fetched = self._fetch_inner_batch(name, lead_givens, context)
            except BaseException as exc:
                with self._lock:
                    for key in lead_keys + awaited_keys:
                        self._inflight.pop(key, None)
                if self.federation is not None:
                    for key in lead_keys:
                        self._federation_release(name, key)
                for key in lead_keys + awaited_keys:
                    flights[key].error = exc
                    flights[key].event.set()
                raise
            stored_keys = []
            unstored_keys = []
            with self._lock:
                for key, value in zip(lead_keys, fetched):
                    if self._store(key, name, host, revision, value):
                        stored_keys.append((key, value))
                    else:
                        unstored_keys.append(key)
                    self._inflight.pop(key, None)
            for key, value in stored_keys:
                self._persist_silver(key, name, host, revision, value)
                self._federation_publish(name, host, key, revision, value)
            if self.federation is not None:
                for key in unstored_keys:
                    self._federation_release(name, key)
            for key, value in zip(lead_keys, fetched):
                flights[key].result = value
                flights[key].event.set()
                results[key] = value
        for index, (key, given) in enumerate(zip(awaited_keys, awaited_givens)):
            # A sibling shard claimed these fills; by now (after our own
            # batch fetch ran) most are published.  Any that are not get
            # the same wait-then-fetch treatment as the single-key path.
            try:
                value = self._federation_await(name, host, key, revision, context)
                if value is None:
                    with self._lock:
                        self.misses += 1
                    self.metrics.counter("cache.misses").inc()
                    self.metrics.counter("cluster.fed_misses").inc()
                    self._record_intent(key, host, revision)
                    value = self._fetch_inner(name, given, context)
                    with self._lock:
                        stored = self._store(key, name, host, revision, value)
                        self._inflight.pop(key, None)
                    if stored:
                        self._persist_silver(key, name, host, revision, value)
                        self._federation_publish(name, host, key, revision, value)
                    else:
                        self._federation_release(name, key)
                    flights[key].result = value
                    flights[key].event.set()
                    results[key] = value
                else:
                    self._resolve_fed_hit(
                        name, host, key, revision, flights[key], value, context
                    )
                    results[key] = value
            except BaseException as exc:
                # Fail this flight and every awaited one behind it —
                # leaving a registered flight unset would hang its waiters.
                failed = awaited_keys[index:]
                with self._lock:
                    for k in failed:
                        self._inflight.pop(k, None)
                self._federation_release(name, key)
                for k in failed:
                    flights[k].error = exc
                    flights[k].event.set()
                raise
        return [
            results[key]
            if key in results
            else self.fetch(name, given, context=context)
            for key, given in zip(keys, givens)
        ]

    @property
    def stats(self) -> dict[str, int]:
        counters = self.metrics.snapshot()["counters"]
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self._cache),
            "evictions": int(counters.get("cache.evictions", 0)),
            "expirations": int(counters.get("cache.expirations", 0)),
            "invalidations": int(counters.get("cache.invalidations", 0)),
            "stale_serves": int(counters.get("cache.stale_serves", 0)),
            "coalesced": int(counters.get("cache.coalesced", 0)),
        }


class CachingVps(ResultCache):
    """Backwards-compatible LRU cache (the pre-engine bolt-on interface)."""

    def __init__(self, inner: VpsSchema, max_entries: int = 1024) -> None:
        super().__init__(inner, CachePolicy.lru(max_entries))
