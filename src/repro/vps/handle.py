"""Handles: the access quadruples of the virtual physical schema.

"For each relation schema R in the VPS layer, there is a quadruple, called
a handle: H = <mandatory-attrs, selection-attrs, R, expression>."

The mandatory attributes are the minimum information needed to invoke the
navigation-calculus expression; the selection attributes may additionally
be supplied and are passed to the Web servers to narrow the result.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import WebBaseError


class HandleError(WebBaseError):
    """A fetch could not be satisfied by any handle."""


@dataclass(frozen=True)
class Handle:
    """One access path to a VPS relation.

    ``goal`` is the predicate name of the compiled navigation expression;
    ``expression`` is its human-readable Transaction F-logic text (nobody
    needs to read it, but it is available — unlike the paper we can show
    our work).
    """

    relation: str
    mandatory: frozenset[str]
    selection: frozenset[str]
    goal: str
    expression: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not self.mandatory <= self.selection:
            raise ValueError(
                "mandatory attrs %s must be a subset of selection attrs %s"
                % (sorted(self.mandatory), sorted(self.selection))
            )

    def accepts(self, given: frozenset[str]) -> bool:
        """True when the supplied attributes satisfy this handle."""
        return self.mandatory <= given

    def __repr__(self) -> str:
        return "Handle(%s: mandatory=%s, selection=%s)" % (
            self.relation,
            sorted(self.mandatory),
            sorted(self.selection),
        )


def check_handle_family(handles: list[Handle]) -> None:
    """Validate the paper's constraints on a relation's handle family:
    all handles name the same relation and mandatory sets are distinct."""
    if not handles:
        raise ValueError("a VPS relation needs at least one handle")
    names = {h.relation for h in handles}
    if len(names) != 1:
        raise ValueError("handles for multiple relations mixed: %s" % sorted(names))
    mandatory_sets = [h.mandatory for h in handles]
    if len(set(mandatory_sets)) != len(mandatory_sets):
        raise ValueError(
            "different handles for %s must use different mandatory sets"
            % handles[0].relation
        )
