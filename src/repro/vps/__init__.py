"""The virtual physical schema layer: handles, virtual relations, caching."""

from repro.vps.cache import CacheEntry, CachePolicy, CachingVps, ResultCache
from repro.vps.handle import Handle, HandleError, check_handle_family
from repro.vps.schema import VirtualRelation, VpsSchema
from repro.vps.verify import AgreementReport, Disagreement, verify_handle_agreement

__all__ = [
    "AgreementReport",
    "CacheEntry",
    "CachePolicy",
    "CachingVps",
    "ResultCache",
    "Disagreement",
    "Handle",
    "HandleError",
    "VirtualRelation",
    "VpsSchema",
    "check_handle_family",
    "verify_handle_agreement",
]
