"""The virtual physical schema: relations you can only reach through forms.

"The virtual physical database schema (VPS) represents all the data there
is to see by filing requests to the server."  A :class:`VpsSchema` is the
catalog of those relations: each one carries its handle family and its
compiled navigation expression, and is populated on demand by the
navigation executor.  The VPS is the :class:`~repro.relational.algebra.Catalog`
the logical layer's algebra evaluates over.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.relational.bindings import BindingSets, minimize
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.vps.handle import Handle, HandleError, check_handle_family

if TYPE_CHECKING:  # pragma: no cover - annotations only; avoids an import cycle
    from repro.navigation.compiler import CompiledRelation, CompiledSite
    from repro.navigation.executor import NavigationExecutor


class VirtualRelation:
    """One VPS relation: schema, handles, and the navigation to populate it."""

    def __init__(self, compiled: "CompiledRelation", executor: "NavigationExecutor") -> None:
        check_handle_family(compiled.handles)
        self.name = compiled.name
        self.host = compiled.host
        self.schema = Schema(compiled.schema)
        self.handles: list[Handle] = list(compiled.handles)
        self.kind = compiled.kind
        self._executor = executor

    @property
    def binding_sets(self) -> BindingSets:
        return minimize(h.mandatory for h in self.handles)

    def handle_for(self, given: frozenset[str]) -> Handle:
        """The handle whose mandatory attributes ``given`` satisfies, with
        the largest usable selection set (pushes the most work to the
        server)."""
        usable = [h for h in self.handles if h.accepts(given)]
        if not usable:
            raise HandleError(
                "relation %s requires one of %s; given %s"
                % (
                    self.name,
                    [sorted(h.mandatory) for h in self.handles],
                    sorted(given),
                )
            )
        return max(usable, key=lambda h: (len(h.selection & given), sorted(h.mandatory)))

    def _prepare(self, given: dict[str, Any]) -> tuple[dict[str, Any], str]:
        """Resolve one binding to its handle: the relevant bound values and
        the navigation goal to run them through."""
        keys = frozenset(a for a, v in given.items() if v is not None)
        handle = self.handle_for(keys)
        relevant = {
            a: v
            for a, v in given.items()
            if v is not None and (a in handle.selection or a in self.schema)
        }
        return relevant, handle.goal

    def fetch(
        self, given: dict[str, Any], executor: "NavigationExecutor | None" = None
    ) -> Relation:
        """Populate the relation for the bound values in ``given``.

        Values for attributes outside the handle's selection set and the
        relation schema are ignored (they belong to other relations in a
        larger expression).  ``executor`` substitutes a worker's private
        navigation stack for the default one (parallel fetch lanes).
        """
        relevant, goal = self._prepare(given)
        rows = (executor or self._executor).fetch(self.name, relevant, goal=goal)
        return Relation.from_dicts(
            self.schema, [{a: r.get(a) for a in self.schema} for r in rows]
        )

    async def afetch(
        self, given: dict[str, Any], executor: Any, run: Any = None
    ) -> Relation:
        """Coroutine twin of :meth:`fetch` for the async navigation
        fabric: same handle resolution, same row assembly, but the
        navigation awaits simulated latency on the fabric loop.
        ``executor`` is an
        :class:`~repro.navigation.fabric.AsyncNavigationExecutor`;
        ``run`` its per-attempt :class:`~repro.navigation.fabric.BindingRun`."""
        relevant, goal = self._prepare(given)
        rows = await executor.afetch(self.name, relevant, goal=goal, run=run)
        return Relation.from_dicts(
            self.schema, [{a: r.get(a) for a in self.schema} for r in rows]
        )

    def fetch_batch(
        self,
        givens: list[dict[str, Any]],
        executor: "NavigationExecutor | None" = None,
    ) -> list[Relation]:
        """Populate the relation for several bindings in one navigation
        session: the shared prefix pages memoize across the whole batch,
        so K probe bindings cost one prefix walk plus K submissions."""
        active = executor or self._executor
        with active.batch_session():
            return [self.fetch(given, executor=active) for given in givens]


class VpsSchema:
    """The catalog of all VPS relations known to the webbase."""

    def __init__(self, executor: "NavigationExecutor") -> None:
        self.executor = executor
        self.relations: dict[str, VirtualRelation] = {}

    def add_compiled_site(self, compiled: "CompiledSite") -> None:
        self.executor.add_site(compiled)
        for rel in compiled.relations:
            self.relations[rel.name] = VirtualRelation(rel, self.executor)

    def relation(self, name: str) -> VirtualRelation:
        try:
            return self.relations[name]
        except KeyError:
            raise KeyError("no VPS relation %r" % name) from None

    @property
    def relation_names(self) -> list[str]:
        return sorted(self.relations)

    def host_of(self, name: str) -> str:
        """The host serving one relation — the unit of maintenance-driven
        cache invalidation (a site change affects all of its relations)."""
        return self.relation(name).host

    def relations_of(self, host: str) -> list[str]:
        """Every VPS relation served by ``host``."""
        return sorted(n for n, r in self.relations.items() if r.host == host)

    # -- the Catalog protocol (consumed by the relational algebra) -------------

    def base_schema(self, name: str) -> Schema:
        return self.relation(name).schema

    def base_binding_sets(self, name: str) -> BindingSets:
        return self.relation(name).binding_sets

    def fetch(self, name: str, given: dict[str, Any], context: Any = None) -> Relation:
        """Fetch a relation, optionally through an execution context.

        With a context, the fetch runs on the engine — worker checkout,
        per-context caching, timeout/retry, trace spans; without one it
        runs directly on the schema's own executor (the simple path test
        doubles and small tools use)."""
        if context is None:
            return self.relation(name).fetch(given)
        return context.run_fetch(self.relation(name), given).result()

    def fetch_batch(
        self, name: str, givens: list[dict[str, Any]], context: Any = None
    ) -> list[Relation]:
        """Fetch one relation for a whole batch of probe bindings.

        With a context the batch runs on the engine
        (:meth:`~repro.core.execution.ExecutionContext.run_fetch_batch`):
        the bindings are chunked across worker bundles, and each chunk
        shares one navigation session so the compiled program's prefix
        pages are walked once per chunk instead of once per binding."""
        relation = self.relation(name)
        if context is None:
            return relation.fetch_batch(givens)
        return context.run_fetch_batch(relation, givens).results()
