"""Verifying the handle-agreement assumption.

Section 3: "We assume that all handles for the same relation agree with
each other: if H1 = <M1, S1, R, E1> and H2 = <M2, S2, R, E2> are two
handles for the same relation and we specify concrete values for a set of
attributes S such that M1 ⊆ S, M2 ⊆ S, then handles H1 and H2 return the
same result."

The paper *assumes* this; a deployed webbase should *check* it, because a
site whose two search forms disagree (stale index behind one of them, a
filter the designer missed) silently corrupts every query routed through
the wrong handle.  :func:`verify_handle_agreement` samples bindings that
satisfy several handles at once and compares their results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Any

from repro.vps.schema import VirtualRelation


@dataclass
class Disagreement:
    """One observed handle disagreement."""

    given: dict[str, Any]
    goal_a: str
    goal_b: str
    only_in_a: int
    only_in_b: int

    def __repr__(self) -> str:
        return "Disagreement(%r: %s vs %s, +%d/-%d)" % (
            self.given,
            self.goal_a,
            self.goal_b,
            self.only_in_a,
            self.only_in_b,
        )


@dataclass
class AgreementReport:
    """The outcome of a handle-agreement verification run."""

    relation: str
    samples_checked: int
    disagreements: list[Disagreement] = field(default_factory=list)

    @property
    def agrees(self) -> bool:
        return not self.disagreements

    def summary(self) -> str:
        status = "AGREE" if self.agrees else "DISAGREE"
        lines = [
            "handle agreement for %s: %s (%d sample binding(s))"
            % (self.relation, status, self.samples_checked)
        ]
        for d in self.disagreements:
            lines.append("  %r" % d)
        return "\n".join(lines)


def verify_handle_agreement(
    relation: VirtualRelation,
    samples: list[dict[str, Any]],
) -> AgreementReport:
    """Check every handle pair of ``relation`` on each sample binding.

    A sample is used for a handle pair only when it satisfies both
    handles' mandatory sets (the paper's precondition).  Results are
    compared as sets of schema tuples.
    """
    report = AgreementReport(relation=relation.name, samples_checked=0)
    if len(relation.handles) < 2:
        return report
    executor = relation._executor  # noqa: SLF001 - verification is privileged
    for given in samples:
        keys = frozenset(a for a, v in given.items() if v is not None)
        usable = [h for h in relation.handles if h.accepts(keys)]
        if len(usable) < 2:
            continue
        report.samples_checked += 1
        results = {}
        for handle in usable:
            rows = executor.fetch(relation.name, given, goal=handle.goal)
            results[handle.goal] = {
                tuple(sorted(row.items())) for row in rows
            }
        for handle_a, handle_b in combinations(usable, 2):
            rows_a = results[handle_a.goal]
            rows_b = results[handle_b.goal]
            if rows_a != rows_b:
                report.disagreements.append(
                    Disagreement(
                        given=dict(given),
                        goal_a=handle_a.goal,
                        goal_b=handle_b.goal,
                        only_in_a=len(rows_a - rows_b),
                        only_in_b=len(rows_b - rows_a),
                    )
                )
    return report
