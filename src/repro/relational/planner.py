"""Cost-based join ordering under binding constraints.

:func:`~repro.relational.bindings.order_joins` answers *whether* a
binding-feasible order exists (and returns the first one its backtracking
finds); this module answers *which* feasible order is cheapest, using a
:class:`~repro.relational.cost.CostModel` to score each placement by its
estimated live-fetch count.

Two search strategies, picked by fan-in:

* **exhaustive dynamic programming** for up to ``dp_threshold`` (default
  6) relations: the classic subset DP — step costs and row estimates are
  set-determined, so the cheapest order reaching a subset is a valid
  subproblem — restricted to binding-feasible placements only;
* **greedy + branch-and-bound** above: a greedy descent (cheapest
  feasible next relation) provides an upper bound, then a depth-first
  search prunes every prefix whose cost already reaches it, with a node
  budget as a backstop (ordering with multiple binding sets per relation
  is NP-complete, so worst cases exist; the budget keeps them bounded
  while typical instances still complete exactly).

Infeasible placements are never scored: feasibility (some binding set
covered by the query constants plus the prefix's schemas) is checked
before the cost model is consulted, so the planner cannot choose — or
even enumerate — an order the evaluator would reject.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.relational.bindings import JoinPart, feasible, order_joins
from repro.relational.cost import CostModel, StepEstimate, total_fetches


@dataclass(frozen=True)
class JoinPlan:
    """One chosen order with its per-step cost predictions."""

    order: tuple[int, ...]  # indices into the parts sequence
    steps: tuple[StepEstimate, ...]
    est_fetches: float
    est_rows: float
    strategy: str  # "trivial" | "dp" | "greedy"

    def names(self, parts: Sequence[JoinPart]) -> tuple[str, ...]:
        return tuple(parts[i].name for i in self.order)

    def describe(self) -> str:
        lines = [
            "join order (%s, est %.1f fetches):" % (self.strategy, self.est_fetches)
        ]
        lines += ["  %d. %s" % (i + 1, s.describe()) for i, s in enumerate(self.steps)]
        return "\n".join(lines)


class JoinOrderPlanner:
    """Search for the cheapest binding-feasible join order."""

    def __init__(
        self,
        model: CostModel | None = None,
        dp_threshold: int = 6,
        node_budget: int = 20000,
    ) -> None:
        self.model = model or CostModel()
        self.dp_threshold = dp_threshold
        self.node_budget = node_budget

    def plan(
        self, parts: Sequence[JoinPart], initially_bound: Iterable[str] = ()
    ) -> JoinPlan | None:
        """The cheapest feasible order, or ``None`` when no order is
        feasible (exactly when :func:`order_joins` finds none)."""
        const = frozenset(initially_bound)
        if not parts:
            return JoinPlan((), (), 0.0, 0.0, "trivial")
        if len(parts) <= self.dp_threshold:
            order, strategy = self._dp(parts, const), "dp"
        else:
            order, strategy = self._greedy_bound(parts, const), "greedy"
        if order is None:
            return None
        steps = tuple(self.model.estimate_order(parts, order, const))
        return JoinPlan(
            order=tuple(order),
            steps=steps,
            est_fetches=total_fetches(steps),
            est_rows=steps[-1].est_rows if steps else 0.0,
            strategy=strategy,
        )

    # -- placement ----------------------------------------------------------

    def _placeable(
        self, part: JoinPart, const: frozenset[str], prefix: Sequence[JoinPart]
    ) -> bool:
        bound = const
        for other in prefix:
            bound |= other.schema
        return feasible(part.bindings, bound)

    def _step_cost(
        self, part: JoinPart, prefix: Sequence[JoinPart], const: frozenset[str]
    ) -> float:
        return self.model.step_estimate(part, prefix, const).est_fetches

    # -- exhaustive DP (≤ dp_threshold relations) ---------------------------

    def _dp(
        self, parts: Sequence[JoinPart], const: frozenset[str]
    ) -> list[int] | None:
        n = len(parts)
        # best[mask] = (cost, order): cheapest feasible order reaching the
        # subset; ties broken on relation names for determinism.
        best: dict[int, tuple[float, tuple[int, ...]]] = {0: (0.0, ())}
        for mask in range(1, 1 << n):
            winner: tuple[float, tuple[str, ...], tuple[int, ...]] | None = None
            for last in range(n):
                bit = 1 << last
                if not mask & bit:
                    continue
                prev = best.get(mask ^ bit)
                if prev is None:
                    continue
                prev_cost, prev_order = prev
                prefix = [parts[i] for i in prev_order]
                if not self._placeable(parts[last], const, prefix):
                    continue
                cost = prev_cost + self._step_cost(parts[last], prefix, const)
                order = prev_order + (last,)
                key = (cost, tuple(parts[i].name for i in order), order)
                if winner is None or key < winner:
                    winner = key
            if winner is not None:
                best[mask] = (winner[0], winner[2])
        full = best.get((1 << n) - 1)
        return list(full[1]) if full is not None else None

    # -- greedy + branch-and-bound (> dp_threshold relations) ---------------

    def _greedy(
        self, parts: Sequence[JoinPart], const: frozenset[str]
    ) -> list[int] | None:
        """Cheapest-next descent; may dead-end even when an order exists."""
        n = len(parts)
        order: list[int] = []
        prefix: list[JoinPart] = []
        remaining = set(range(n))
        while remaining:
            candidates = [
                i for i in sorted(remaining)
                if self._placeable(parts[i], const, prefix)
            ]
            if not candidates:
                return None
            pick = min(
                candidates,
                key=lambda i: (self._step_cost(parts[i], prefix, const), parts[i].name),
            )
            order.append(pick)
            prefix.append(parts[pick])
            remaining.discard(pick)
        return order

    def _greedy_bound(
        self, parts: Sequence[JoinPart], const: frozenset[str]
    ) -> list[int] | None:
        seed = self._greedy(parts, const)
        if seed is None:
            # Greedy dead-ended; fall back to any feasible order for the
            # initial upper bound (exact backtracking, ignores cost).
            seed = order_joins(parts, const)
            if seed is None:
                return None
        best_order = list(seed)
        best_cost = total_fetches(self.model.estimate_order(parts, seed, const))
        n = len(parts)
        budget = [self.node_budget]

        def descend(order: list[int], prefix: list[JoinPart], cost: float) -> None:
            nonlocal best_order, best_cost
            if budget[0] <= 0:
                return
            budget[0] -= 1
            if len(order) == n:
                if cost < best_cost:
                    best_cost, best_order = cost, list(order)
                return
            used = set(order)
            scored = []
            for i in range(n):
                if i in used:
                    continue
                if not self._placeable(parts[i], const, prefix):
                    continue
                scored.append((self._step_cost(parts[i], prefix, const), parts[i].name, i))
            for step_cost, _, i in sorted(scored):
                if cost + step_cost >= best_cost:
                    continue  # bound: this prefix cannot beat the incumbent
                order.append(i)
                prefix.append(parts[i])
                descend(order, prefix, cost + step_cost)
                order.pop()
                prefix.pop()

        descend([], [], 0.0)
        return best_order
