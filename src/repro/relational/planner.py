"""Cost-based join ordering under binding constraints.

:func:`~repro.relational.bindings.order_joins` answers *whether* a
binding-feasible order exists (and returns the first one its backtracking
finds); this module answers *which* feasible order is cheapest, using a
:class:`~repro.relational.cost.CostModel` to score each placement by its
estimated live-fetch count.

Two search strategies, picked by fan-in:

* **exhaustive dynamic programming** for up to ``dp_threshold`` (default
  6) relations: the classic subset DP — step costs and row estimates are
  set-determined, so the cheapest order reaching a subset is a valid
  subproblem — restricted to binding-feasible placements only;
* **greedy + branch-and-bound** above: a greedy descent (cheapest
  feasible next relation) provides an upper bound, then a depth-first
  search prunes every prefix whose cost already reaches it, with a node
  budget as a backstop (ordering with multiple binding sets per relation
  is NP-complete, so worst cases exist; the budget keeps them bounded
  while typical instances still complete exactly).

Infeasible placements are never scored: feasibility (some binding set
covered by the query constants plus the prefix's schemas) is checked
before the cost model is consulted, so the planner cannot choose — or
even enumerate — an order the evaluator would reject.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.relational.bindings import JoinPart, feasible, order_joins
from repro.relational.cost import CostModel, StepEstimate, total_fetches


@dataclass(frozen=True)
class JoinPlan:
    """One chosen order with its per-step cost predictions."""

    order: tuple[int, ...]  # indices into the parts sequence
    steps: tuple[StepEstimate, ...]
    est_fetches: float
    est_rows: float
    strategy: str  # "trivial" | "dp" | "greedy"

    def names(self, parts: Sequence[JoinPart]) -> tuple[str, ...]:
        return tuple(parts[i].name for i in self.order)

    def describe(self) -> str:
        lines = [
            "join order (%s, est %.1f fetches):" % (self.strategy, self.est_fetches)
        ]
        lines += ["  %d. %s" % (i + 1, s.describe()) for i, s in enumerate(self.steps)]
        return "\n".join(lines)


class JoinOrderPlanner:
    """Search for the cheapest binding-feasible join order."""

    def __init__(
        self,
        model: CostModel | None = None,
        dp_threshold: int = 6,
        node_budget: int = 20000,
    ) -> None:
        self.model = model or CostModel()
        self.dp_threshold = dp_threshold
        self.node_budget = node_budget

    def plan(
        self, parts: Sequence[JoinPart], initially_bound: Iterable[str] = ()
    ) -> JoinPlan | None:
        """The cheapest feasible order, or ``None`` when no order is
        feasible (exactly when :func:`order_joins` finds none)."""
        const = frozenset(initially_bound)
        if not parts:
            return JoinPlan((), (), 0.0, 0.0, "trivial")
        if len(parts) <= self.dp_threshold:
            order, strategy = self._dp(parts, const), "dp"
        else:
            order, strategy = self._greedy_bound(parts, const), "greedy"
        if order is None:
            return None
        steps = tuple(self.model.estimate_order(parts, order, const))
        return JoinPlan(
            order=tuple(order),
            steps=steps,
            est_fetches=total_fetches(steps),
            est_rows=steps[-1].est_rows if steps else 0.0,
            strategy=strategy,
        )

    # -- placement ----------------------------------------------------------

    def _placeable(
        self, part: JoinPart, const: frozenset[str], prefix: Sequence[JoinPart]
    ) -> bool:
        bound = const
        for other in prefix:
            bound |= other.schema
        return feasible(part.bindings, bound)

    def _step_cost(
        self, part: JoinPart, prefix: Sequence[JoinPart], const: frozenset[str]
    ) -> float:
        return self.model.step_estimate(part, prefix, const).est_fetches

    # -- exhaustive DP (≤ dp_threshold relations) ---------------------------

    def _dp(
        self, parts: Sequence[JoinPart], const: frozenset[str]
    ) -> list[int] | None:
        n = len(parts)
        # best[mask] = (cost, order): cheapest feasible order reaching the
        # subset; ties broken on relation names for determinism.
        best: dict[int, tuple[float, tuple[int, ...]]] = {0: (0.0, ())}
        for mask in range(1, 1 << n):
            winner: tuple[float, tuple[str, ...], tuple[int, ...]] | None = None
            for last in range(n):
                bit = 1 << last
                if not mask & bit:
                    continue
                prev = best.get(mask ^ bit)
                if prev is None:
                    continue
                prev_cost, prev_order = prev
                prefix = [parts[i] for i in prev_order]
                if not self._placeable(parts[last], const, prefix):
                    continue
                cost = prev_cost + self._step_cost(parts[last], prefix, const)
                order = prev_order + (last,)
                key = (cost, tuple(parts[i].name for i in order), order)
                if winner is None or key < winner:
                    winner = key
            if winner is not None:
                best[mask] = (winner[0], winner[2])
        full = best.get((1 << n) - 1)
        return list(full[1]) if full is not None else None

    # -- greedy + branch-and-bound (> dp_threshold relations) ---------------

    def _greedy(
        self, parts: Sequence[JoinPart], const: frozenset[str]
    ) -> list[int] | None:
        """Cheapest-next descent; may dead-end even when an order exists."""
        n = len(parts)
        order: list[int] = []
        prefix: list[JoinPart] = []
        remaining = set(range(n))
        while remaining:
            candidates = [
                i for i in sorted(remaining)
                if self._placeable(parts[i], const, prefix)
            ]
            if not candidates:
                return None
            pick = min(
                candidates,
                key=lambda i: (self._step_cost(parts[i], prefix, const), parts[i].name),
            )
            order.append(pick)
            prefix.append(parts[pick])
            remaining.discard(pick)
        return order

    def _greedy_bound(
        self, parts: Sequence[JoinPart], const: frozenset[str]
    ) -> list[int] | None:
        seed = self._greedy(parts, const)
        if seed is None:
            # Greedy dead-ended; fall back to any feasible order for the
            # initial upper bound (exact backtracking, ignores cost).
            seed = order_joins(parts, const)
            if seed is None:
                return None
        best_order = list(seed)
        best_cost = total_fetches(self.model.estimate_order(parts, seed, const))
        n = len(parts)
        budget = [self.node_budget]

        def descend(order: list[int], prefix: list[JoinPart], cost: float) -> None:
            nonlocal best_order, best_cost
            if budget[0] <= 0:
                return
            budget[0] -= 1
            if len(order) == n:
                if cost < best_cost:
                    best_cost, best_order = cost, list(order)
                return
            used = set(order)
            scored = []
            for i in range(n):
                if i in used:
                    continue
                if not self._placeable(parts[i], const, prefix):
                    continue
                scored.append((self._step_cost(parts[i], prefix, const), parts[i].name, i))
            for step_cost, _, i in sorted(scored):
                if cost + step_cost >= best_cost:
                    continue  # bound: this prefix cannot beat the incumbent
                order.append(i)
                prefix.append(parts[i])
                descend(order, prefix, cost + step_cost)
                order.pop()
                prefix.pop()

        descend([], [], 0.0)
        return best_order


# -- plan fingerprinting (the MQO layer's identity function) -----------------
#
# Two logical plans share work only if the multi-query layer can prove
# they compute the same relation.  The proof is syntactic-but-normalized:
# a plan subtree is folded into a *canonical form* — a nested tuple of
# primitives in which every commutative operator's operands are sorted —
# and the fingerprint is a SHA-256 over that form's stable serialization.
# Equal canonical forms ⇒ equal answers (natural join and union are
# commutative/associative over set-semantics relations, and conjunction/
# disjunction over conditions likewise), so fingerprint equality is a
# sound sharing criterion; distinct forms collide only if SHA-256 does.
#
# Normalizations applied:
#
# * ``Join``/``Union`` chains are flattened into an operand multiset and
#   sorted by operand canonical form (commutative-join normalization).
# * ``And``/``Or`` conjunct/disjunct lists are flattened and sorted; the
#   symmetric comparisons ``=``/``!=`` sort their operands, and ``>`` /
#   ``>=`` are flipped into ``<`` / ``<=``.
# * ``Project`` keeps its attribute list IN ORDER (output column order is
#   part of the answer's identity); ``Rename`` pairs are stored sorted by
#   the dataclass already.
# * ``Derive`` hashes its target attribute and the function's qualname —
#   the function object itself is excluded from dataclass equality, and
#   rewrite-produced derivations are deterministic per attribute.
#
# The *binding signature* — the constants a caller would feed the plan —
# rides along as an explicitly sorted item list in
# :func:`plan_fingerprint`, so the same tree probed under different
# bindings fingerprints differently.


def canonical_condition(cond: object) -> tuple:
    """Canonical nested-tuple form of a condition AST (see module note)."""
    from repro.relational import conditions as C

    if isinstance(cond, C.Comparison):
        left = _operand_form(cond.left)
        right = _operand_form(cond.right)
        op = cond.op
        if op in (">", ">="):
            op = "<" if op == ">" else "<="
            left, right = right, left
        if op in ("=", "!=") and right < left:
            left, right = right, left
        return ("cmp", op, left, right)
    if isinstance(cond, (C.And, C.Or)):
        tag = "and" if isinstance(cond, C.And) else "or"
        parts: list[tuple] = []
        stack = list(cond.parts)
        while stack:
            part = stack.pop()
            if isinstance(part, type(cond)):
                stack.extend(part.parts)
            else:
                parts.append(canonical_condition(part))
        return (tag, tuple(sorted(parts)))
    if isinstance(cond, C.Not):
        return ("not", canonical_condition(cond.part))
    return ("opaque", repr(cond))


def _operand_form(operand: object) -> tuple:
    from repro.relational import conditions as C

    if isinstance(operand, C.Attr):
        return ("attr", operand.name)
    if isinstance(operand, C.Const):
        value = operand.literal
        return ("const", type(value).__name__, repr(value))
    return ("opaque", repr(operand))


def canonical_plan(expr: object) -> tuple:
    """Canonical nested-tuple form of a relational-algebra expression."""
    from repro.relational import algebra as A

    if isinstance(expr, A.Base):
        return ("base", expr.name)
    if isinstance(expr, A.Fixed):
        rel = expr.relation
        return ("fixed", tuple(rel.schema), tuple(map(repr, rel.rows)))
    if isinstance(expr, A.Select):
        return ("select", canonical_condition(expr.condition), canonical_plan(expr.child))
    if isinstance(expr, A.Project):
        # Attribute order is load-bearing: it fixes the answer's column
        # order, so two projections differing only in order must NOT share.
        return ("project", tuple(expr.attrs), canonical_plan(expr.child))
    if isinstance(expr, A.Rename):
        return ("rename", tuple(expr.mapping), canonical_plan(expr.child))
    if isinstance(expr, A.Derive):
        fn_name = getattr(expr.fn, "__qualname__", getattr(expr.fn, "__name__", ""))
        return ("derive", expr.attr, fn_name, canonical_plan(expr.child))
    if isinstance(expr, (A.Join, A.Union)):
        tag = "join" if isinstance(expr, A.Join) else "union"
        relaxed = bool(getattr(expr, "relaxed", False))
        operands: list[tuple] = []
        stack = [expr]
        while stack:
            node = stack.pop()
            same_kind = isinstance(node, type(expr)) and (
                not isinstance(node, A.Union) or node.relaxed == relaxed
            )
            if same_kind:
                stack.append(node.left)  # type: ignore[attr-defined]
                stack.append(node.right)  # type: ignore[attr-defined]
            else:
                operands.append(canonical_plan(node))
        if tag == "union":
            return (tag, relaxed, tuple(sorted(operands)))
        return (tag, tuple(sorted(operands)))
    return ("opaque", repr(expr))


def plan_fingerprint(expr: object, given: dict | None = None) -> str:
    """Stable hex fingerprint of a plan subtree (+ its binding signature).

    Equal fingerprints certify equal answers under set semantics; they are
    the sharing key of :class:`repro.mqo.registry.SubplanRegistry`.
    """
    import hashlib

    form = canonical_plan(expr)
    if given:
        signature = tuple(
            (name, type(value).__name__, repr(value))
            for name, value in sorted(given.items())
        )
        form = ("bound", signature, form)
    return hashlib.sha256(repr(form).encode("utf-8")).hexdigest()
