"""Relation schemas.

Attributes are plain strings; a :class:`Schema` is an ordered collection of
distinct attribute names.  Order matters only for presentation — equality
and all set-style operations ignore it.
"""

from __future__ import annotations

from typing import Iterable, Iterator


class SchemaError(ValueError):
    """Schemas are incompatible for the attempted operation."""


class Schema:
    """An ordered set of attribute names."""

    __slots__ = ("_attrs", "_index")

    def __init__(self, attrs: Iterable[str]) -> None:
        attrs = tuple(attrs)
        if len(set(attrs)) != len(attrs):
            raise SchemaError("duplicate attributes in schema %r" % (attrs,))
        self._attrs = attrs
        self._index = {name: i for i, name in enumerate(attrs)}

    @property
    def attrs(self) -> tuple[str, ...]:
        return self._attrs

    def __iter__(self) -> Iterator[str]:
        return iter(self._attrs)

    def __len__(self) -> int:
        return len(self._attrs)

    def __contains__(self, attr: str) -> bool:
        return attr in self._index

    def __eq__(self, other: object) -> bool:
        """Schemas are equal when they have the same attributes (any order)."""
        if not isinstance(other, Schema):
            return NotImplemented
        return set(self._attrs) == set(other._attrs)

    def __hash__(self) -> int:
        return hash(frozenset(self._attrs))

    def __repr__(self) -> str:
        return "Schema(%s)" % ", ".join(self._attrs)

    def index_of(self, attr: str) -> int:
        try:
            return self._index[attr]
        except KeyError:
            raise SchemaError("no attribute %r in %r" % (attr, self)) from None

    def common(self, other: "Schema") -> set[str]:
        """Attributes shared with ``other`` (the paper's ``E1 ∩ E2``)."""
        return set(self._attrs) & set(other._attrs)

    def union(self, other: "Schema") -> "Schema":
        """This schema extended with ``other``'s new attributes, in order."""
        extra = [a for a in other._attrs if a not in self._index]
        return Schema(self._attrs + tuple(extra))

    def project(self, attrs: Iterable[str]) -> "Schema":
        attrs = tuple(attrs)
        missing = [a for a in attrs if a not in self._index]
        if missing:
            raise SchemaError("cannot project %r out of %r" % (missing, self))
        return Schema(attrs)

    def rename(self, mapping: dict[str, str]) -> "Schema":
        """Rename attributes; unmapped names pass through."""
        return Schema(tuple(mapping.get(a, a) for a in self._attrs))

    def as_set(self) -> frozenset[str]:
        return frozenset(self._attrs)
