"""Selection conditions for the relational layers.

Conditions are small ASTs evaluated against row dicts.  Besides evaluation,
they expose the two analyses the rest of the system needs:

* :func:`equality_bindings` — the attribute=constant equalities a condition
  guarantees, which binding propagation absorbs (a selection on ``make =
  'ford'`` supplies the ``make`` binding to the underlying form);
* ``attributes`` — every attribute mentioned, which the UR planner uses to
  decide which logical relations a query touches.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Any, Callable

from repro.relational.relation import RowDict


class Condition:
    """Base class for selection conditions."""

    def evaluate(self, row: RowDict) -> bool:
        raise NotImplementedError

    def attributes(self) -> set[str]:
        raise NotImplementedError

    def __call__(self, row: RowDict) -> bool:
        return self.evaluate(row)


@dataclass(frozen=True)
class Attr:
    """An attribute reference inside a condition."""

    name: str

    def value(self, row: RowDict) -> Any:
        return row[self.name]

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const:
    """A literal constant inside a condition."""

    literal: Any

    def value(self, row: RowDict) -> Any:
        return self.literal

    def __repr__(self) -> str:
        return repr(self.literal)


Operand = Any  # Attr | Const

_OPS: dict[str, Callable[[Any, Any], bool]] = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


@dataclass(frozen=True)
class Comparison(Condition):
    """``left op right`` where each side is an :class:`Attr` or :class:`Const`.

    Comparisons between attributes (``Price < BBPrice``) are what make the
    paper's Jaguar query more than a lookup.
    """

    left: Operand
    op: str
    right: Operand

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ValueError("unknown comparison operator %r" % self.op)

    def evaluate(self, row: RowDict) -> bool:
        left = self.left.value(row)
        right = self.right.value(row)
        if left is None or right is None:
            return False
        try:
            return _OPS[self.op](left, right)
        except TypeError:
            return False

    def attributes(self) -> set[str]:
        found = set()
        if isinstance(self.left, Attr):
            found.add(self.left.name)
        if isinstance(self.right, Attr):
            found.add(self.right.name)
        return found

    def __repr__(self) -> str:
        return "%r %s %r" % (self.left, self.op, self.right)


@dataclass(frozen=True)
class And(Condition):
    parts: tuple[Condition, ...]

    def evaluate(self, row: RowDict) -> bool:
        return all(p.evaluate(row) for p in self.parts)

    def attributes(self) -> set[str]:
        found: set[str] = set()
        for p in self.parts:
            found |= p.attributes()
        return found

    def __repr__(self) -> str:
        return " AND ".join("(%r)" % p for p in self.parts)


@dataclass(frozen=True)
class Or(Condition):
    parts: tuple[Condition, ...]

    def evaluate(self, row: RowDict) -> bool:
        return any(p.evaluate(row) for p in self.parts)

    def attributes(self) -> set[str]:
        found: set[str] = set()
        for p in self.parts:
            found |= p.attributes()
        return found

    def __repr__(self) -> str:
        return " OR ".join("(%r)" % p for p in self.parts)


@dataclass(frozen=True)
class Not(Condition):
    part: Condition

    def evaluate(self, row: RowDict) -> bool:
        return not self.part.evaluate(row)

    def attributes(self) -> set[str]:
        return self.part.attributes()

    def __repr__(self) -> str:
        return "NOT (%r)" % (self.part,)


def conj(*parts: Condition) -> Condition:
    """Conjunction helper that flattens and drops the trivial case."""
    flat: list[Condition] = []
    for part in parts:
        if isinstance(part, And):
            flat.extend(part.parts)
        else:
            flat.append(part)
    if len(flat) == 1:
        return flat[0]
    return And(tuple(flat))


def eq(attr: str, value: Any) -> Comparison:
    """Shorthand for ``attr = constant``."""
    return Comparison(Attr(attr), "=", Const(value))


def equality_bindings(condition: Condition | None) -> dict[str, Any]:
    """Attribute=constant equalities guaranteed by ``condition``.

    Only conjunctive contexts guarantee an equality (an equality under an
    ``Or`` or ``Not`` does not); the traversal therefore descends only
    through ``And``.
    """
    found: dict[str, Any] = {}
    if condition is None:
        return found
    stack = [condition]
    while stack:
        node = stack.pop()
        if isinstance(node, And):
            stack.extend(node.parts)
        elif isinstance(node, Comparison) and node.op == "=":
            if isinstance(node.left, Attr) and isinstance(node.right, Const):
                found[node.left.name] = node.right.literal
            elif isinstance(node.right, Attr) and isinstance(node.left, Const):
                found[node.right.name] = node.left.literal
    return found
