"""Binding propagation and join ordering (Section 5 of the paper).

VPS relations "can only be accessed by supplying values for certain sets of
mandatory attributes".  Every relational expression over them therefore has
a set of *bindings*: the alternative sets of attributes whose values must be
supplied for the expression to be computable.  The paper gives one rule per
relational operator; this module implements them, plus:

* the *relaxed union* of the paper's footnote (either side's binding is
  acceptable when the user tolerates partial answers);
* absorption of selection constants (``σ_make='ford'`` supplies the
  ``make`` binding), which the paper's evaluator performs implicitly when it
  substitutes query constants into navigation expressions;
* the join-ordering search: an order of relations such that each one's
  mandatory attributes are covered by the initially bound attributes plus
  the schemas of earlier relations.  With multiple binding sets per
  relation the problem is NP-complete [Rajaraman-Sagiv-Ullman 1995]; the
  search is a memoized backtracking over subsets, which is exact and fast
  at realistic fan-ins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import WebBaseError

BindingSet = frozenset[str]
BindingSets = frozenset[BindingSet]


class BindingError(WebBaseError):
    """No binding set of the expression is satisfied by the bound attributes."""


def binding_sets(*sets: Iterable[str]) -> BindingSets:
    """Convenience constructor: ``binding_sets({'make'}, {'make','model'})``."""
    return frozenset(frozenset(s) for s in sets)


NO_BINDINGS: BindingSets = frozenset({frozenset()})  # freely accessible


def minimize(sets: Iterable[BindingSet]) -> BindingSets:
    """Drop non-minimal binding sets: if M1 ⊆ M2, M2 is redundant."""
    pool = sorted(set(frozenset(s) for s in sets), key=len)
    kept: list[BindingSet] = []
    for candidate in pool:
        if not any(existing <= candidate for existing in kept):
            kept.append(candidate)
    return frozenset(kept)


def feasible(sets: BindingSets, bound: Iterable[str]) -> bool:
    """True when some binding set is covered by ``bound``."""
    bound = frozenset(bound)
    return any(m <= bound for m in sets)


def choose_binding(sets: BindingSets, bound: Iterable[str]) -> BindingSet:
    """The largest satisfied binding set (more bound attributes pushed to the
    source means fewer tuples fetched); raises if none is satisfied."""
    bound = frozenset(bound)
    satisfied = [m for m in sets if m <= bound]
    if not satisfied:
        raise BindingError(
            "bound attributes %s satisfy none of %s"
            % (sorted(bound), [sorted(m) for m in sets])
        )
    return max(satisfied, key=lambda m: (len(m), sorted(m)))


# -- the per-operator rules ------------------------------------------------------


def bind_select(child: BindingSets, constant_attrs: Iterable[str] = ()) -> BindingSets:
    """σ rule.  The paper's basic rule passes bindings through unchanged; the
    attributes fixed by equality constants in the selection are absorbed
    (they no longer need to be supplied from outside)."""
    constants = frozenset(constant_attrs)
    return minimize(m - constants for m in child)


def bind_project(child: BindingSets) -> BindingSets:
    """π rule: bindings pass through unchanged (a mandatory attribute must be
    supplied even when it is projected away from the output)."""
    return minimize(child)


def bind_rename(child: BindingSets, mapping: dict[str, str]) -> BindingSets:
    """Renaming carries the binding attributes along."""
    return minimize(frozenset(mapping.get(a, a) for a in m) for m in child)


def bind_union(
    left: BindingSets, right: BindingSets, relaxed: bool = False
) -> BindingSets:
    """∪/∩ rule: M1 ∪ M2 for every pair.  With ``relaxed=True`` (the paper's
    relaxed union) each side's binding is individually acceptable — the user
    accepts answers from whichever sources the bindings can reach."""
    if relaxed:
        return minimize(set(left) | set(right))
    return minimize(m1 | m2 for m1 in left for m2 in right)


def bind_join(
    left: BindingSets,
    left_schema: Iterable[str],
    right: BindingSets,
    right_schema: Iterable[str],
) -> BindingSets:
    """⋈ rule: for bindings M1, M2, both ``M1 ∪ (M2 − common)`` and
    ``M2 ∪ (M1 − common)`` are bindings of the join — the side evaluated
    first feeds the common attributes of the other."""
    common = frozenset(left_schema) & frozenset(right_schema)
    out: set[BindingSet] = set()
    for m1 in left:
        for m2 in right:
            out.add(m1 | (m2 - common))
            out.add(m2 | (m1 - common))
    return minimize(out)


# -- join ordering -----------------------------------------------------------------


@dataclass(frozen=True)
class JoinPart:
    """One relation participating in a join, for ordering purposes."""

    name: str
    schema: frozenset[str]
    bindings: BindingSets

    @classmethod
    def make(
        cls, name: str, schema: Iterable[str], bindings: Iterable[Iterable[str]]
    ) -> "JoinPart":
        return cls(name, frozenset(schema), binding_sets(*bindings))


def order_joins(
    parts: Sequence[JoinPart], initially_bound: Iterable[str] = ()
) -> list[int] | None:
    """An order (list of indices into ``parts``) such that every relation's
    mandatory attributes are covered when its turn comes, or None.

    Covered means: some binding set ⊆ initially-bound attributes ∪ the union
    of schemas of relations placed earlier (their values can be fed through
    the join's common attributes).
    """
    start = frozenset(initially_bound)
    n = len(parts)
    dead: set[frozenset[int]] = set()

    def search(placed: frozenset[int], bound: frozenset[str], order: list[int]) -> list[int] | None:
        if len(order) == n:
            return order
        if placed in dead:
            return None
        for i in range(n):
            if i in placed:
                continue
            if feasible(parts[i].bindings, bound):
                result = search(
                    placed | {i}, bound | parts[i].schema, order + [i]
                )
                if result is not None:
                    return result
        dead.add(placed)
        return None

    return search(frozenset(), start, [])


def orderable(parts: Sequence[JoinPart], initially_bound: Iterable[str] = ()) -> bool:
    """True when :func:`order_joins` finds an order."""
    return order_joins(parts, initially_bound) is not None
