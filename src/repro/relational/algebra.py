"""Relational algebra over binding-constrained sources.

Expressions are ASTs over base relations provided by a :class:`Catalog`
(in this system: the VPS layer, whose base relations are Web forms).  The
evaluator differs from a textbook one in exactly the way Section 5 of the
paper requires:

* every node knows its *binding sets* (via :mod:`repro.relational.bindings`);
* base relations are fetched with whatever bound attribute values are
  available, because that is the only way to access them;
* joins are *dependent* (bind joins): the side whose bindings are satisfied
  is evaluated first, and the values of the common attributes are fed into
  the other side's fetches — "order joins in such a way that the relation
  newsday ... is computed first".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Protocol

from repro.relational.bindings import (
    BindingError,
    BindingSets,
    NO_BINDINGS,
    bind_join,
    bind_project,
    bind_rename,
    bind_select,
    bind_union,
    feasible,
    minimize,
)
from repro.relational.conditions import Condition, equality_bindings
from repro.relational.relation import Relation, RowDict
from repro.relational.schema import Schema


class Catalog(Protocol):
    """What the algebra needs from the layer below (the VPS)."""

    def base_schema(self, name: str) -> Schema:
        """Schema of base relation ``name``."""

    def base_binding_sets(self, name: str) -> BindingSets:
        """Alternative mandatory-attribute sets of base relation ``name``."""

    def fetch(self, name: str, given: dict[str, Any]) -> Relation:
        """Retrieve ``name`` using the bound values in ``given``."""


class Expr:
    """Base class for algebra expressions."""

    __slots__ = ()


@dataclass(frozen=True)
class Base(Expr):
    """A reference to a catalog base relation."""

    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Fixed(Expr):
    """A literal relation embedded in the expression (mainly for tests)."""

    relation: Relation

    def __repr__(self) -> str:
        return "fixed(%r)" % (self.relation,)


@dataclass(frozen=True)
class Select(Expr):
    child: Expr
    condition: Condition

    def __repr__(self) -> str:
        return "select[%r](%r)" % (self.condition, self.child)


@dataclass(frozen=True)
class Project(Expr):
    child: Expr
    attrs: tuple[str, ...]

    def __repr__(self) -> str:
        return "project[%s](%r)" % (", ".join(self.attrs), self.child)


@dataclass(frozen=True)
class Rename(Expr):
    child: Expr
    mapping: tuple[tuple[str, str], ...]  # (old, new) pairs

    @property
    def mapping_dict(self) -> dict[str, str]:
        return dict(self.mapping)

    def __repr__(self) -> str:
        pairs = ", ".join("%s->%s" % (a, b) for a, b in self.mapping)
        return "rename[%s](%r)" % (pairs, self.child)


@dataclass(frozen=True)
class Derive(Expr):
    """Add or replace an attribute computed per row (value standardization)."""

    child: Expr
    attr: str
    fn: Callable[[RowDict], Any] = field(compare=False)

    def __repr__(self) -> str:
        return "derive[%s](%r)" % (self.attr, self.child)


@dataclass(frozen=True)
class Join(Expr):
    left: Expr
    right: Expr

    def __repr__(self) -> str:
        return "(%r join %r)" % (self.left, self.right)


@dataclass(frozen=True)
class Union(Expr):
    left: Expr
    right: Expr
    relaxed: bool = False

    def __repr__(self) -> str:
        op = "relaxed-union" if self.relaxed else "union"
        return "(%r %s %r)" % (self.left, op, self.right)


def select(child: Expr, condition: Condition) -> Select:
    return Select(child, condition)


def project(child: Expr, attrs: list[str] | tuple[str, ...]) -> Project:
    return Project(child, tuple(attrs))


def rename(child: Expr, mapping: dict[str, str]) -> Rename:
    return Rename(child, tuple(sorted(mapping.items())))


def union_all(exprs: list[Expr], relaxed: bool = False) -> Expr:
    if not exprs:
        raise ValueError("union of nothing")
    out = exprs[0]
    for nxt in exprs[1:]:
        out = Union(out, nxt, relaxed)
    return out


def join_all(exprs: list[Expr]) -> Expr:
    if not exprs:
        raise ValueError("join of nothing")
    out = exprs[0]
    for nxt in exprs[1:]:
        out = Join(out, nxt)
    return out


# -- static analyses ---------------------------------------------------------------


def schema_of(expr: Expr, catalog: Catalog) -> Schema:
    """The schema an expression produces, computed without evaluation."""
    if isinstance(expr, Base):
        return catalog.base_schema(expr.name)
    if isinstance(expr, Fixed):
        return expr.relation.schema
    if isinstance(expr, Select):
        return schema_of(expr.child, catalog)
    if isinstance(expr, Project):
        return schema_of(expr.child, catalog).project(expr.attrs)
    if isinstance(expr, Rename):
        return schema_of(expr.child, catalog).rename(expr.mapping_dict)
    if isinstance(expr, Derive):
        child = schema_of(expr.child, catalog)
        if expr.attr in child:
            return child
        return Schema(child.attrs + (expr.attr,))
    if isinstance(expr, Join):
        return schema_of(expr.left, catalog).union(schema_of(expr.right, catalog))
    if isinstance(expr, Union):
        return schema_of(expr.left, catalog)
    raise TypeError("unknown expression %r" % (expr,))


def binding_sets_of(expr: Expr, catalog: Catalog) -> BindingSets:
    """The Section-5 binding-propagation rules, applied bottom-up."""
    if isinstance(expr, Base):
        return minimize(catalog.base_binding_sets(expr.name))
    if isinstance(expr, Fixed):
        return NO_BINDINGS
    if isinstance(expr, Select):
        constants = equality_bindings(expr.condition)
        return bind_select(binding_sets_of(expr.child, catalog), constants)
    if isinstance(expr, Project):
        return bind_project(binding_sets_of(expr.child, catalog))
    if isinstance(expr, Rename):
        return bind_rename(binding_sets_of(expr.child, catalog), expr.mapping_dict)
    if isinstance(expr, Derive):
        return binding_sets_of(expr.child, catalog)
    if isinstance(expr, Join):
        return bind_join(
            binding_sets_of(expr.left, catalog),
            schema_of(expr.left, catalog).attrs,
            binding_sets_of(expr.right, catalog),
            schema_of(expr.right, catalog).attrs,
        )
    if isinstance(expr, Union):
        return bind_union(
            binding_sets_of(expr.left, catalog),
            binding_sets_of(expr.right, catalog),
            relaxed=expr.relaxed,
        )
    raise TypeError("unknown expression %r" % (expr,))


# -- evaluation ----------------------------------------------------------------------


def evaluate(
    expr: Expr,
    catalog: Catalog,
    given: dict[str, Any] | None = None,
    context: Any = None,
) -> Relation:
    """Evaluate ``expr`` with the bound attribute values in ``given``.

    ``given`` values are pushed into base fetches (satisfying mandatory
    attributes and narrowing results at the source) and are additionally
    applied as equality filters, so the result is exactly the sub-relation
    consistent with ``given``.

    ``context`` is an :class:`~repro.core.execution.ExecutionContext` (or
    anything with its ``map``/``run_fetch`` shape).  When present, it is
    handed to base fetches and used to fan out the independent branches of
    the tree — both sides of a union, and the probe batch of a dependent
    join — across its worker pool.  Fan-outs collect results in submission
    order, so a parallel evaluation returns exactly the sequential answer.
    """
    given = dict(given or {})
    if isinstance(expr, Base):
        if context is None:
            relation = catalog.fetch(expr.name, given)
        else:
            relation = catalog.fetch(expr.name, given, context=context)
        return _filter_given(relation, given)
    if isinstance(expr, Fixed):
        return _filter_given(expr.relation, given)
    if isinstance(expr, Select):
        constants = equality_bindings(expr.condition)
        child_given = dict(given)
        child_given.update(constants)
        result = evaluate(expr.child, catalog, child_given, context)
        # The caller's bound values still constrain the result even when the
        # selection's own constants contradict them (contradiction => empty).
        return _filter_given(result.select(expr.condition.evaluate), given)
    if isinstance(expr, Project):
        # Bound values for projected-away attributes must be applied before
        # projecting; evaluate the child with all of them, then project.
        return evaluate(expr.child, catalog, given, context).project(expr.attrs)
    if isinstance(expr, Rename):
        reverse = {new: old for old, new in expr.mapping}
        child_given = {reverse.get(a, a): v for a, v in given.items()}
        return evaluate(expr.child, catalog, child_given, context).rename(
            expr.mapping_dict
        )
    if isinstance(expr, Derive):
        child_given = {a: v for a, v in given.items() if a != expr.attr}
        result = evaluate(expr.child, catalog, child_given, context).derive(
            expr.attr, expr.fn
        )
        return _filter_given(result, given)
    if isinstance(expr, Join):
        return _evaluate_join(expr, catalog, given, context)
    if isinstance(expr, Union):
        left_sets = binding_sets_of(expr.left, catalog)
        right_sets = binding_sets_of(expr.right, catalog)
        bound = frozenset(given)
        left_ok = feasible(left_sets, bound)
        right_ok = feasible(right_sets, bound)
        if left_ok and right_ok:
            if context is not None:
                left, right = context.map(
                    lambda side: evaluate(side, catalog, given, context),
                    [expr.left, expr.right],
                )
            else:
                left = evaluate(expr.left, catalog, given)
                right = evaluate(expr.right, catalog, given)
            return left.union(right)
        if expr.relaxed and (left_ok or right_ok):
            side = expr.left if left_ok else expr.right
            return evaluate(side, catalog, given, context)
        raise BindingError(
            "union not computable with bound attributes %s" % sorted(bound)
        )
    raise TypeError("unknown expression %r" % (expr,))


def _filter_given(relation: Relation, given: dict[str, Any]) -> Relation:
    relevant = {a: v for a, v in given.items() if a in relation.schema}
    if not relevant:
        return relation
    return relation.select(lambda row: all(row[a] == v for a, v in relevant.items()))


def evaluate_batch(
    expr: Expr,
    catalog: Catalog,
    givens: list[dict[str, Any]],
    context: Any = None,
) -> list[Relation]:
    """Evaluate ``expr`` under each binding in ``givens`` — the batched
    form of :func:`evaluate`, with identical per-binding results.

    This is the probe-batch fast path of a dependent join: instead of K
    independent evaluations (each walking a site's navigation prefix from
    the entry page), the batch descends the expression *together* and
    hands whole binding lists to base relations whose catalog supports
    ``fetch_batch``, so the engine can run them as backtracking
    alternatives inside one navigation session.  Nodes without a batched
    form (nested joins, heterogeneous union feasibility) fall back to
    per-binding evaluation fanned out on the context.
    """
    givens = [dict(given or {}) for given in givens]
    if not givens:
        return []
    if context is None or len(givens) == 1:
        return [evaluate(expr, catalog, given, context) for given in givens]
    if isinstance(expr, Base):
        fetch_batch = getattr(catalog, "fetch_batch", None)
        if fetch_batch is None:
            relations = context.map(
                lambda given: catalog.fetch(expr.name, given, context=context),
                givens,
            )
        else:
            relations = fetch_batch(expr.name, givens, context=context)
        return [
            _filter_given(relation, given)
            for relation, given in zip(relations, givens)
        ]
    if isinstance(expr, Fixed):
        return [_filter_given(expr.relation, given) for given in givens]
    if isinstance(expr, Select):
        constants = equality_bindings(expr.condition)
        child_givens = []
        for given in givens:
            child_given = dict(given)
            child_given.update(constants)
            child_givens.append(child_given)
        results = evaluate_batch(expr.child, catalog, child_givens, context)
        return [
            _filter_given(result.select(expr.condition.evaluate), given)
            for result, given in zip(results, givens)
        ]
    if isinstance(expr, Project):
        results = evaluate_batch(expr.child, catalog, givens, context)
        return [result.project(expr.attrs) for result in results]
    if isinstance(expr, Rename):
        reverse = {new: old for old, new in expr.mapping}
        child_givens = [
            {reverse.get(a, a): v for a, v in given.items()} for given in givens
        ]
        results = evaluate_batch(expr.child, catalog, child_givens, context)
        return [result.rename(expr.mapping_dict) for result in results]
    if isinstance(expr, Derive):
        child_givens = [
            {a: v for a, v in given.items() if a != expr.attr} for given in givens
        ]
        results = evaluate_batch(expr.child, catalog, child_givens, context)
        return [
            _filter_given(result.derive(expr.attr, expr.fn), given)
            for result, given in zip(results, givens)
        ]
    if isinstance(expr, Union):
        # Probe batches share one bound-attribute key set, so union
        # feasibility is uniform across the batch; when it is not (mixed
        # callers), fall back to per-binding evaluation.
        bound_sets = {frozenset(given) for given in givens}
        if len(bound_sets) == 1:
            bound = next(iter(bound_sets))
            left_ok = feasible(binding_sets_of(expr.left, catalog), bound)
            right_ok = feasible(binding_sets_of(expr.right, catalog), bound)
            if left_ok and right_ok:
                left_batch, right_batch = context.map(
                    lambda side: evaluate_batch(side, catalog, givens, context),
                    [expr.left, expr.right],
                )
                return [
                    left.union(right)
                    for left, right in zip(left_batch, right_batch)
                ]
            if expr.relaxed and (left_ok or right_ok):
                side = expr.left if left_ok else expr.right
                return evaluate_batch(side, catalog, givens, context)
            raise BindingError(
                "union not computable with bound attributes %s" % sorted(bound)
            )
    # Joins (and anything without a batched form): per-binding evaluation,
    # fanned out across the context's workers.
    return context.map(
        lambda given: evaluate(expr, catalog, given, context), givens
    )


def _candidate_source(expr: Expr) -> tuple[Expr, dict[str, Any]]:
    """The leftmost base under ``expr``'s outer spine, plus the equality
    constants the descent pushes into it — the cheapest sound source of
    candidate feed values.  Descends only through nodes that preserve
    attribute names and only narrow the row set relative to their child
    (so the child's distinct values are a superset of the parent's),
    which keeps the candidate set a superset of the true combo set:
    extra candidates are revoked later, missing ones would be wrong
    answers."""
    constants: dict[str, Any] = {}
    while True:
        if isinstance(expr, Join):
            expr = expr.left
        elif isinstance(expr, Select):
            # Mirror evaluate()'s push-down: the selection's equality
            # constants bind the child (inner selections override outer).
            constants.update(equality_bindings(expr.condition))
            expr = expr.child
        elif isinstance(expr, Project):
            expr = expr.child
        elif isinstance(expr, Derive):
            constants.pop(expr.attr, None)
            expr = expr.child
        else:
            return expr, constants


def _speculate_probes(
    first: Expr,
    second: Expr,
    catalog: Catalog,
    given: dict[str, Any],
    bound: frozenset,
    common: list[str],
    context: Any,
) -> dict[tuple, Any] | None:
    """Launch speculative inner-side probes for every candidate combo the
    outer's leftmost base admits, returning ``{combo: AccessHandle}`` —
    or ``None`` when speculation is off or unsound for this join shape.

    The candidates come from evaluating just the leftmost base of the
    outer side (its fetches are deduplicated with the full outer
    evaluation by the per-context cache, so the candidate pass costs no
    extra Web accesses).  Because the full outer only narrows that base,
    the candidate set over-approximates the true combos; the join revokes
    the disproved probes in :func:`_settle_speculation`.
    """
    if context is None or not common:
        return None
    resilience = getattr(context, "resilience", None)
    speculate = getattr(context, "speculate", None)
    if resilience is None or speculate is None:
        return None
    policy = resilience.policy
    if not (policy.enabled and policy.speculate_probes):
        return None
    source, constants = _candidate_source(first)
    if source is first or not isinstance(source, Base):
        return None  # no cheaper sub-expression to draw candidates from
    seed_given = dict(given)
    seed_given.update(constants)
    if not feasible(binding_sets_of(source, catalog), frozenset(seed_given)):
        return None
    source_schema = schema_of(source, catalog)
    if not all(attr in source_schema for attr in common):
        return None  # candidates would not determine the feed values
    seed = evaluate(source, catalog, seed_given, context)
    candidates = list(seed.distinct_values(common))
    if len(candidates) <= 1:
        return None  # nothing to overlap: a single probe just runs
    label = second.name if isinstance(second, Base) else "probe"
    speculated: dict[tuple, Any] = {}
    for index, combo in enumerate(candidates):
        fed = dict(given)
        fed.update(dict(zip(common, combo)))
        speculated[combo] = speculate(
            lambda fed=fed: evaluate(second, catalog, fed, context),
            label,
            fed,
            index=index,
        )
    return speculated


def _settle_speculation(
    speculated: dict[tuple, Any],
    combos: list[tuple],
    probe: Callable[[tuple], Relation],
    common: list[str],
    context: Any,
) -> list[Relation]:
    """Resolve a speculative probe set against the outer's true combos:
    revoke the probes the outer disproved (queued probes die instantly,
    running ones abort at their next page boundary), await the survivors,
    and re-run on the demand path any probe that was shed or broken —
    so the answer rows are byte-identical to the non-speculative plan."""
    live = set(combos)
    policy = context.resilience.policy
    cancelled = 0
    if policy.prune:
        for combo, handle in speculated.items():
            if combo not in live:
                reason = "outer disproved bindings %r" % (
                    dict(zip(common, combo)),
                )
                if handle.cancel(reason):
                    cancelled += 1
    with context.span("prune", "speculative") as pspan:
        pspan.attrs["feeds"] = ",".join(common)
        pspan.attrs["issued"] = len(speculated)
        pspan.attrs["cancelled"] = cancelled
    metrics = getattr(context, "metrics", None)
    if metrics is not None and cancelled:
        metrics.counter("planner.pruned_probes").inc(cancelled)
    pieces: dict[tuple, Relation] = {}
    demand: list[tuple] = []
    for combo in combos:
        handle = speculated.get(combo)
        if handle is not None:
            handle.wait()
            if handle.state == "done":
                pieces[combo] = handle.result()
                continue
        # Not speculated, or the probe was shed by a breaker/bulkhead
        # (or broke): answer it on the demand path, where shedding is
        # not allowed — correctness never rides on a speculation.
        demand.append(combo)
    if demand:
        for combo, piece in zip(demand, context.map(probe, demand)):
            pieces[combo] = piece
    return [pieces[combo] for combo in combos]


def _evaluate_join(
    expr: Join, catalog: Catalog, given: dict[str, Any], context: Any = None
) -> Relation:
    bound = frozenset(given)
    left_schema = schema_of(expr.left, catalog)
    right_schema = schema_of(expr.right, catalog)
    common = sorted(left_schema.common(right_schema))

    for first, second, second_schema in (
        (expr.left, expr.right, right_schema),
        (expr.right, expr.left, left_schema),
    ):
        first_sets = binding_sets_of(first, catalog)
        if not feasible(first_sets, bound):
            continue
        second_sets = binding_sets_of(second, catalog)
        if feasible(second_sets, bound):
            # Independent: both sides computable from the given bindings.
            if context is not None:
                first_rel, second_rel = context.map(
                    lambda side: evaluate(side, catalog, given, context),
                    [first, second],
                )
            else:
                first_rel = evaluate(first, catalog, given)
                second_rel = evaluate(second, catalog, given)
            return first_rel.natural_join(second_rel)
        if feasible(second_sets, bound | frozenset(common)):
            # Dependent: feed common-attribute values from the first side.
            # With speculation enabled, candidate probes of the second side
            # launch *before* the first side finishes (from the leftmost
            # base's candidate combos); the ones the full outer disproves
            # are revoked below.
            speculated = _speculate_probes(
                first, second, catalog, given, bound, common, context
            )
            first_rel = evaluate(first, catalog, given, context)

            def probe(combo: tuple) -> Relation:
                fed = dict(given)
                fed.update(dict(zip(common, combo)))
                return evaluate(second, catalog, fed, context)

            combos = list(first_rel.distinct_values(common))
            if not combos and context is not None:
                # Empty outer side: every probe of the second side is
                # provably irrelevant, so none is issued.  Record the
                # decision so traces and metrics show the saved fetches.
                span = getattr(context, "span", None)
                if span is not None:
                    with span("prune", "empty-outer") as pspan:
                        pspan.attrs["feeds"] = ",".join(common)
                metrics = getattr(context, "metrics", None)
                if metrics is not None:
                    metrics.counter("planner.pruned_inner").inc()
            if speculated is not None:
                pieces = _settle_speculation(
                    speculated, combos, probe, common, context
                )
            elif context is not None:
                if getattr(context, "batch_enabled", False) and len(combos) > 1:
                    # Batched probing: the whole combo set descends the
                    # second side together, so base relations receive one
                    # ``fetch_batch`` per batch — one shared navigation
                    # prefix, K submissions — instead of K separate walks.
                    feds = []
                    for combo in combos:
                        fed = dict(given)
                        fed.update(dict(zip(common, combo)))
                        feds.append(fed)
                    pieces = evaluate_batch(second, catalog, feds, context)
                else:
                    # The probe batch is the join's fan-out opportunity:
                    # each distinct binding combination probes the second
                    # side independently, and the fold below runs in combo
                    # order.
                    pieces = context.map(probe, combos)
            else:
                pieces = [probe(combo) for combo in combos]
            if pieces:
                second_rel = pieces[0]
                for piece in pieces[1:]:
                    second_rel = second_rel.union(piece)
            else:
                second_rel = Relation(second_schema, [])
            return first_rel.natural_join(second_rel)
    raise BindingError(
        "join not computable: bound=%s, left needs %s, right needs %s"
        % (
            sorted(bound),
            [sorted(m) for m in binding_sets_of(expr.left, catalog)],
            [sorted(m) for m in binding_sets_of(expr.right, catalog)],
        )
    )
