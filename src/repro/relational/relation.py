"""Relations: schemas plus tuples, with the core operators.

Relations use set semantics (duplicate rows are removed) and keep their
rows in a deterministic sorted order so results are stable across runs —
a requirement for the reproducibility of every benchmark table.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator

from repro.relational.schema import Schema, SchemaError

Row = tuple  # one tuple of values, positionally matching the schema
RowDict = dict[str, Any]


def _sort_key(row: Row) -> tuple:
    """A total order over heterogeneous rows (ints, floats, strings, None)."""
    return tuple((type(v).__name__, repr(v)) for v in row)


class Relation:
    """An immutable relation instance."""

    __slots__ = ("schema", "rows")

    def __init__(self, schema: Schema | Iterable[str], rows: Iterable[Row] = ()) -> None:
        if not isinstance(schema, Schema):
            schema = Schema(schema)
        self.schema = schema
        width = len(schema)
        deduped = set()
        for row in rows:
            row = tuple(row)
            if len(row) != width:
                raise SchemaError(
                    "row %r does not match schema %r" % (row, schema)
                )
            deduped.add(row)
        self.rows: tuple[Row, ...] = tuple(sorted(deduped, key=_sort_key))

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_dicts(cls, schema: Schema | Iterable[str], dicts: Iterable[RowDict]) -> "Relation":
        if not isinstance(schema, Schema):
            schema = Schema(schema)
        rows = [tuple(d[a] for a in schema) for d in dicts]
        return cls(schema, rows)

    # -- basics -----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        if self.schema != other.schema:
            return False
        if self.schema.attrs == other.schema.attrs:
            return self.rows == other.rows
        # Same attribute set, different order: compare re-ordered.
        return set(self.to_dict_tuples()) == set(other.to_dict_tuples())

    def __hash__(self) -> int:
        return hash((self.schema, frozenset(self.to_dict_tuples())))

    def __repr__(self) -> str:
        return "Relation(%s, %d rows)" % (", ".join(self.schema), len(self))

    def to_dicts(self) -> list[RowDict]:
        attrs = self.schema.attrs
        return [dict(zip(attrs, row)) for row in self.rows]

    def to_dict_tuples(self) -> list[tuple[tuple[str, Any], ...]]:
        attrs = sorted(self.schema.attrs)
        index = {a: self.schema.index_of(a) for a in attrs}
        return [tuple((a, row[index[a]]) for a in attrs) for row in self.rows]

    def row_dict(self, row: Row) -> RowDict:
        return dict(zip(self.schema.attrs, row))

    @property
    def is_empty(self) -> bool:
        return not self.rows

    # -- operators ----------------------------------------------------------------

    def select(self, predicate: Callable[[RowDict], bool]) -> "Relation":
        attrs = self.schema.attrs
        kept = [row for row in self.rows if predicate(dict(zip(attrs, row)))]
        return Relation(self.schema, kept)

    def project(self, attrs: Iterable[str]) -> "Relation":
        target = self.schema.project(attrs)
        indices = [self.schema.index_of(a) for a in target]
        return Relation(target, [tuple(row[i] for i in indices) for row in self.rows])

    def rename(self, mapping: dict[str, str]) -> "Relation":
        return Relation(self.schema.rename(mapping), self.rows)

    def derive(self, attr: str, fn: Callable[[RowDict], Any]) -> "Relation":
        """Add (or replace) ``attr`` computed from each row."""
        attrs = self.schema.attrs
        if attr in self.schema:
            idx = self.schema.index_of(attr)
            rows = []
            for row in self.rows:
                value = fn(dict(zip(attrs, row)))
                rows.append(row[:idx] + (value,) + row[idx + 1 :])
            return Relation(self.schema, rows)
        target = Schema(attrs + (attr,))
        rows = [row + (fn(dict(zip(attrs, row))),) for row in self.rows]
        return Relation(target, rows)

    def union(self, other: "Relation") -> "Relation":
        if self.schema != other.schema:
            raise SchemaError(
                "union schema mismatch: %r vs %r" % (self.schema, other.schema)
            )
        aligned = other._aligned_to(self.schema)
        return Relation(self.schema, self.rows + aligned)

    def intersect(self, other: "Relation") -> "Relation":
        if self.schema != other.schema:
            raise SchemaError(
                "intersect schema mismatch: %r vs %r" % (self.schema, other.schema)
            )
        mine = set(self.rows)
        return Relation(self.schema, [r for r in other._aligned_to(self.schema) if r in mine])

    def difference(self, other: "Relation") -> "Relation":
        if self.schema != other.schema:
            raise SchemaError(
                "difference schema mismatch: %r vs %r" % (self.schema, other.schema)
            )
        theirs = set(other._aligned_to(self.schema))
        return Relation(self.schema, [r for r in self.rows if r not in theirs])

    def _aligned_to(self, schema: Schema) -> tuple[Row, ...]:
        """Rows re-ordered to match ``schema``'s attribute order."""
        if self.schema.attrs == schema.attrs:
            return self.rows
        indices = [self.schema.index_of(a) for a in schema]
        return tuple(tuple(row[i] for i in indices) for row in self.rows)

    def natural_join(self, other: "Relation") -> "Relation":
        common = sorted(self.schema.common(other.schema))
        target = self.schema.union(other.schema)
        left_idx = [self.schema.index_of(a) for a in common]
        right_idx = [other.schema.index_of(a) for a in common]
        right_extra = [a for a in other.schema if a not in self.schema]
        right_extra_idx = [other.schema.index_of(a) for a in right_extra]

        # Hash join on the common attributes.
        buckets: dict[tuple, list[Row]] = {}
        for row in other.rows:
            buckets.setdefault(tuple(row[i] for i in right_idx), []).append(row)
        joined = []
        for row in self.rows:
            key = tuple(row[i] for i in left_idx)
            for match in buckets.get(key, ()):
                joined.append(row + tuple(match[i] for i in right_extra_idx))
        return Relation(target, joined)

    def distinct_values(self, attrs: Iterable[str]) -> list[tuple]:
        """Distinct value combinations of ``attrs``, sorted."""
        indices = [self.schema.index_of(a) for a in attrs]
        values = {tuple(row[i] for i in indices) for row in self.rows}
        return sorted(values, key=_sort_key)

    def pretty(self, limit: int = 20) -> str:
        """A fixed-width text rendering (for examples and benchmark output)."""
        attrs = list(self.schema.attrs)
        shown = [[str(v) for v in row] for row in self.rows[:limit]]
        widths = [len(a) for a in attrs]
        for row in shown:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        header = " | ".join(a.ljust(widths[i]) for i, a in enumerate(attrs))
        rule = "-+-".join("-" * w for w in widths)
        lines = [header, rule]
        for row in shown:
            lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        if len(self.rows) > limit:
            lines.append("... (%d more rows)" % (len(self.rows) - limit))
        return "\n".join(lines)
