"""Fetch-cost estimation for binding-constrained join plans.

The dominant cost of a webbase query is the number of *live Web fetches*
it causes, and that number is driven by the join order: a dependent (bind)
join probes its inner relation once per distinct combination of fed
attribute values, so the order decides how many probes each relation
absorbs.  This module estimates those fetch counts without touching the
Web, from three inputs:

* **handle binding sets** — which placements are even possible, and
  whether a relation placed after a prefix is evaluated *independently*
  (its mandatory attributes are satisfied by query constants pushed into
  its branch: one access) or *dependently* (probed once per distinct
  combination of common attributes fed from the prefix);
* **per-relation statistics** (:class:`RelationStats` inside a
  :class:`CatalogStats`): cardinality and per-attribute distinct-value
  counts, plus two facts derivable from a logical definition — the
  *fetch weight* (how many base fetches one access costs, e.g. a union
  of three site branches costs three) and the *probe attributes* (fed
  values that actually reach a base fetch; values consumed by a
  ``Derive`` standardization never do, so probes differing only there
  collapse onto one fetch key in the engine's per-context cache);
* **live observations** from a :class:`~repro.core.metrics.MetricsRegistry`
  (fed by :func:`observe_trace`): the measured fetches-per-access of each
  relation overrides the static weight, so a warm cross-query cache makes
  previously expensive relations look — correctly — cheap.

Estimates use the classic independence assumptions (System R): equality
selection on attribute ``a`` divides rows by ``dv(a)``; a join on common
attributes divides the row product by the largest distinct count per
shared attribute; distinct counts are capped by row counts.  One
refinement matters for web catalogs whose attributes are hierarchical:
``CatalogStats.fd_parents`` declares functional dependencies such as
``model → make``, so fixing the parent scales the child's distinct count
(there are ~2 models per make, not 25).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from repro.relational.algebra import (
    Base,
    Catalog,
    Derive,
    Expr,
    Fixed,
    Join,
    Project,
    Rename,
    Select,
    Union,
    schema_of,
)
from repro.relational.bindings import JoinPart, feasible

#: Metric-name prefixes for the live-observation feedback loop.
OBSERVED_ACCESSES = "planner.observed.accesses.%s"
OBSERVED_FETCHES = "planner.observed.fetches.%s"
OBSERVED_PAGES = "planner.observed.pages.%s"


# -- static analyses over logical definitions ----------------------------------------


def base_count(expr: Expr) -> int:
    """How many base fetches one access of ``expr`` costs (its Base nodes)."""
    if isinstance(expr, Base):
        return 1
    if isinstance(expr, Fixed):
        return 0
    if isinstance(expr, (Select, Project, Derive)):
        return base_count(expr.child)
    if isinstance(expr, Rename):
        return base_count(expr.child)
    if isinstance(expr, (Join, Union)):
        return base_count(expr.left) + base_count(expr.right)
    raise TypeError("unknown expression %r" % (expr,))


def pushable_attributes(expr: Expr, catalog: Catalog) -> frozenset[str]:
    """The output attributes whose *fed values* reach some base fetch.

    A value fed for an attribute consumed by a ``Derive`` standardization
    is stripped before the base fetch (``year`` fed into a view that
    derives ``year`` never varies the fetch key), so distinct fed values
    there cost nothing extra: the engine's per-context cache collapses
    them.  Probe-count estimates multiply distinct counts only over the
    attributes this function returns.
    """
    return schema_of(expr, catalog).as_set() - _unpushable(expr, catalog)


def _unpushable(expr: Expr, catalog: Catalog) -> frozenset[str]:
    if isinstance(expr, Base):
        return frozenset()
    if isinstance(expr, Fixed):
        return schema_of(expr, catalog).as_set()
    if isinstance(expr, (Select, Project)):
        return _unpushable(expr.child, catalog)
    if isinstance(expr, Rename):
        mapping = expr.mapping_dict
        return frozenset(mapping.get(a, a) for a in _unpushable(expr.child, catalog))
    if isinstance(expr, Derive):
        return _unpushable(expr.child, catalog) | {expr.attr}
    if isinstance(expr, (Join, Union)):
        left_schema = schema_of(expr.left, catalog).as_set()
        right_schema = schema_of(expr.right, catalog).as_set()
        left_dead = _unpushable(expr.left, catalog)
        right_dead = _unpushable(expr.right, catalog)
        out: set[str] = set()
        for attr in left_schema | right_schema:
            dead_left = attr not in left_schema or attr in left_dead
            dead_right = attr not in right_schema or attr in right_dead
            if dead_left and dead_right:
                out.add(attr)
        return frozenset(out)
    raise TypeError("unknown expression %r" % (expr,))


# -- statistics ----------------------------------------------------------------------


@dataclass(frozen=True)
class RelationStats:
    """What the optimizer knows about one relation.

    ``distinct`` maps attributes to distinct-value counts (missing
    attributes fall back to the catalog default); ``fetch_weight`` is the
    number of base fetches one access costs; ``probe_attrs`` limits which
    fed attributes vary the fetch key (``None`` = all of them).
    """

    cardinality: float
    distinct: Mapping[str, float] = field(default_factory=dict)
    fetch_weight: float = 1.0
    probe_attrs: frozenset[str] | None = None


class CatalogStats:
    """Per-relation statistics plus catalog-wide structural knowledge."""

    def __init__(
        self,
        relations: Mapping[str, RelationStats] | None = None,
        fd_parents: Mapping[str, str] | None = None,
        default_cardinality: float = 100.0,
        default_distinct: float = 10.0,
    ) -> None:
        self.relations = dict(relations or {})
        self.fd_parents = dict(fd_parents or {})
        self.default_cardinality = float(default_cardinality)
        self.default_distinct = float(default_distinct)

    def for_relation(self, name: str) -> RelationStats:
        stats = self.relations.get(name)
        if stats is not None:
            return stats
        return RelationStats(cardinality=self.default_cardinality)

    @classmethod
    def from_catalog(
        cls,
        catalog: Catalog,
        names: Iterable[str],
        cardinalities: Mapping[str, float] | None = None,
        distinct: Mapping[str, Mapping[str, float]] | None = None,
        fd_parents: Mapping[str, str] | None = None,
        default_cardinality: float = 100.0,
        default_distinct: float = 10.0,
    ) -> "CatalogStats":
        """Statistics enriched with what definitions reveal structurally.

        When the catalog exposes relation *definitions* (the logical
        layer does, via ``relation(name).definition``), fetch weights and
        probe attributes are derived from them; cardinalities and
        distinct counts come from the supplied mappings (or defaults).
        """
        cardinalities = dict(cardinalities or {})
        distinct = {k: dict(v) for k, v in (distinct or {}).items()}
        relations: dict[str, RelationStats] = {}
        for name in names:
            weight = 1.0
            probe: frozenset[str] | None = None
            getter = getattr(catalog, "relation", None)
            if getter is not None:
                definition = getattr(getter(name), "definition", None)
                if definition is not None:
                    inner = getattr(catalog, "vps", catalog)
                    weight = float(max(1, base_count(definition)))
                    probe = pushable_attributes(definition, inner)
            relations[name] = RelationStats(
                cardinality=float(cardinalities.get(name, default_cardinality)),
                distinct=distinct.get(name, {}),
                fetch_weight=weight,
                probe_attrs=probe,
            )
        return cls(
            relations,
            fd_parents=fd_parents,
            default_cardinality=default_cardinality,
            default_distinct=default_distinct,
        )


# -- the model -----------------------------------------------------------------------


@dataclass(frozen=True)
class StepEstimate:
    """Predicted cost of placing one relation at one position of an order.

    ``mode`` is how the evaluator will compute it there: ``scan`` (first
    relation, one access with the query constants), ``independent`` (its
    mandatory attributes are covered by constants private to its branch:
    one access in parallel with the prefix) or ``probe`` (a dependent
    join: one access per distinct fed combination).
    """

    relation: str
    mode: str
    est_accesses: float
    est_fetches: float
    est_rows: float  # rows of the prefix joined through this relation
    # Predicted pages navigated, from the *learned* prefix-amortised
    # pages-per-access weight; 0.0 until the relation has been observed.
    est_pages: float = 0.0

    def describe(self) -> str:
        return "%s %s: %.1f access(es), %.1f fetch(es), %.1f row(s)" % (
            self.relation,
            self.mode,
            self.est_accesses,
            self.est_fetches,
            self.est_rows,
        )


class CostModel:
    """Estimated fetch counts for join-order steps.

    Static statistics seed the model; a metrics registry (when given)
    overrides each relation's fetch weight with its *measured*
    fetches-per-access, so the model corrects itself as the webbase
    observes its own traffic (e.g. a warm cross-query cache drives a
    relation's marginal fetch cost toward zero).
    """

    #: Live fetch weights never drop to exactly zero — an access is never
    #: provably free before it happens.
    MIN_WEIGHT = 0.05

    def __init__(self, stats: CatalogStats | None = None, metrics: Any = None) -> None:
        self.stats = stats or CatalogStats()
        self.metrics = metrics

    # -- primitive estimates -------------------------------------------------

    def weight(self, name: str) -> float:
        """Base fetches per access: live observation when available."""
        static = max(self.MIN_WEIGHT, self.stats.for_relation(name).fetch_weight)
        if self.metrics is None:
            return static
        accesses = self.metrics.value(OBSERVED_ACCESSES % name)
        if not accesses:
            return static
        fetches = self.metrics.value(OBSERVED_FETCHES % name)
        return max(self.MIN_WEIGHT, fetches / accesses)

    def page_weight(self, name: str) -> float:
        """Pages navigated per access, from live observation — already
        prefix-amortised under batched navigation (a batch's shared prefix
        pages divide over its K counted accesses).  0.0 = not yet
        observed (the model has no static page statistics)."""
        if self.metrics is None:
            return 0.0
        accesses = self.metrics.value(OBSERVED_ACCESSES % name)
        if not accesses:
            return 0.0
        return self.metrics.value(OBSERVED_PAGES % name) / accesses

    def _dv(self, stats: RelationStats, attr: str, const_attrs: frozenset[str]) -> float:
        """Distinct values of ``attr`` within one relation, after the
        equality constants in ``const_attrs`` have been applied."""
        if attr in const_attrs:
            return 1.0
        d = float(stats.distinct.get(attr, self.stats.default_distinct))
        d = min(d, max(1.0, stats.cardinality))
        parent = self.stats.fd_parents.get(attr)
        if parent is not None and parent in const_attrs:
            parent_dv = float(stats.distinct.get(parent, self.stats.default_distinct))
            d = d / max(1.0, parent_dv)
        return max(1.0, d)

    def selected_rows(self, part: JoinPart, const_attrs: frozenset[str]) -> float:
        """Cardinality after the query's equality constants are applied."""
        stats = self.stats.for_relation(part.name)
        rows = max(1.0, float(stats.cardinality))
        for attr in sorted(part.schema & const_attrs):
            rows /= self._dv(stats, attr, const_attrs - {attr})
        return max(1.0, rows)

    def est_rows(
        self, parts: Sequence[JoinPart], const_attrs: frozenset[str]
    ) -> float:
        """Estimated rows of the natural join of ``parts`` (set-determined,
        so it is a valid dynamic-programming subproblem value)."""
        if not parts:
            return 1.0
        rows = 1.0
        per_attr: dict[str, list[float]] = {}
        for part in parts:
            selected = self.selected_rows(part, const_attrs)
            rows *= selected
            stats = self.stats.for_relation(part.name)
            for attr in part.schema:
                if attr in const_attrs:
                    continue
                dv = min(self._dv(stats, attr, const_attrs), selected)
                per_attr.setdefault(attr, []).append(max(1.0, dv))
        for attr, dvs in per_attr.items():
            if len(dvs) > 1:
                rows /= max(dvs) ** (len(dvs) - 1)
        return max(1.0, rows)

    def prefix_dv(
        self,
        parts: Sequence[JoinPart],
        attr: str,
        const_attrs: frozenset[str],
    ) -> float:
        """Distinct values of ``attr`` the joined prefix can feed."""
        if attr in const_attrs:
            return 1.0
        dvs = []
        for part in parts:
            if attr in part.schema:
                stats = self.stats.for_relation(part.name)
                dvs.append(
                    min(
                        self._dv(stats, attr, const_attrs),
                        self.selected_rows(part, const_attrs),
                    )
                )
        if not dvs:
            return 1.0
        return max(1.0, min(min(dvs), self.est_rows(parts, const_attrs)))

    # -- the step estimate ---------------------------------------------------

    def step_estimate(
        self,
        part: JoinPart,
        prefix: Sequence[JoinPart],
        const_attrs: frozenset[str],
    ) -> StepEstimate:
        """Cost of placing ``part`` after the relations in ``prefix``.

        Mirrors the evaluator: the first relation is one access; a later
        relation whose mandatory attributes are covered by constants
        *private to its branch* (on attributes the prefix does not share
        — shared ones are pushed into the prefix side) evaluates
        independently, also one access; otherwise it is probed once per
        estimated distinct combination of the fed common attributes, and
        live fetches are further limited to combinations that differ on
        the relation's probe attributes (the per-context cache collapses
        the rest).
        """
        stats = self.stats.for_relation(part.name)
        prefix_schema: frozenset[str] = frozenset()
        for other in prefix:
            prefix_schema |= other.schema
        common = part.schema & prefix_schema
        private_consts = (part.schema - prefix_schema) & const_attrs

        if not prefix:
            mode = "scan"
            accesses = keys = 1.0
        elif feasible(part.bindings, private_consts):
            mode = "independent"
            accesses = keys = 1.0
        else:
            mode = "probe"
            prefix_rows = self.est_rows(prefix, const_attrs)
            combos = 1.0
            for attr in sorted(common):
                combos *= self.prefix_dv(prefix, attr, const_attrs)
            accesses = max(1.0, min(prefix_rows, combos))
            probe_attrs = stats.probe_attrs
            key_combos = 1.0
            for attr in sorted(common):
                if probe_attrs is not None and attr not in probe_attrs:
                    continue
                key_combos *= self.prefix_dv(prefix, attr, const_attrs)
            keys = max(1.0, min(prefix_rows, key_combos))
        return StepEstimate(
            relation=part.name,
            mode=mode,
            est_accesses=accesses,
            est_fetches=keys * self.weight(part.name),
            est_rows=self.est_rows(list(prefix) + [part], const_attrs),
            est_pages=accesses * self.page_weight(part.name),
        )

    def estimate_order(
        self,
        parts: Sequence[JoinPart],
        order: Sequence[int],
        const_attrs: Iterable[str],
    ) -> list[StepEstimate]:
        """Per-step estimates for one complete order (indices into parts)."""
        const = frozenset(const_attrs)
        steps: list[StepEstimate] = []
        prefix: list[JoinPart] = []
        for index in order:
            steps.append(self.step_estimate(parts[index], prefix, const))
            prefix.append(parts[index])
        return steps


# -- live observation feedback -------------------------------------------------------


def observe_trace(metrics: Any, root: Any) -> dict[str, tuple[int, int]]:
    """Feed a finished query's trace back into the planner's statistics.

    Counts, per logical relation, the accesses (``view`` spans) and the
    live fetches under them (``fetch`` spans flagged as cache misses)
    into the registry's ``planner.observed.*`` counters, which
    :meth:`CostModel.weight` consults on the next planning pass.  Returns
    the per-relation ``(accesses, fetches)`` observed in this trace.
    """
    observed: dict[str, tuple[int, int]] = {}
    pages_by_name: dict[str, int] = {}
    for view in root.spans("view"):
        live = sum(1 for f in view.spans("fetch") if f.cache == "miss")
        pages = sum(f.pages for f in view.spans("fetch") if f.cache == "miss")
        accesses, fetches = observed.get(view.name, (0, 0))
        # A batched probe records one view span for K bindings, stamped
        # ``batch=K`` — count all K accesses, so the learned per-access
        # weights are *prefix-amortised*: the shared navigation prefix's
        # pages divide over the whole batch.
        batch = int(view.attrs.get("batch", 1))
        observed[view.name] = (accesses + batch, fetches + live)
        pages_by_name[view.name] = pages_by_name.get(view.name, 0) + pages
    for name, (accesses, fetches) in sorted(observed.items()):
        metrics.counter(OBSERVED_ACCESSES % name).inc(accesses)
        if fetches:
            metrics.counter(OBSERVED_FETCHES % name).inc(fetches)
        if pages_by_name.get(name):
            metrics.counter(OBSERVED_PAGES % name).inc(pages_by_name[name])
    return observed


def total_fetches(steps: Iterable[StepEstimate]) -> float:
    """Σ estimated fetches over a plan's steps."""
    return math.fsum(step.est_fetches for step in steps)
