"""Algebraic query optimization.

Section 1 of the paper: once user queries are composed with navigation
expressions, "the entire query can be optimized using techniques that are
akin to relational algebra transformations (but we do not discuss such
techniques here)".  This module supplies those techniques:

* **selection pushdown** — conjuncts move below projections, renames,
  unions (distributed to both branches), derives (when they do not
  mention the derived attribute) and into the sides of joins whose
  schemas cover them;
* **selection merging** — stacked selections become one conjunction;
* **projection collapsing** — nested projections collapse to the
  outermost one;
* **no-op elimination** — projections to the full schema disappear.

Pushing selections matters more here than in a classical engine: a
conjunct pushed into the *outer* side of a dependent join shrinks the set
of distinct binding combinations, which directly reduces the number of
Web fetches issued for the inner side.

All rewrites preserve results (property-tested) and never lose binding
feasibility — pushing a selection down only makes equality constants
available earlier.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.relational.algebra import (
    Base,
    Catalog,
    Derive,
    Expr,
    Fixed,
    Join,
    Project,
    Rename,
    Select,
    Union,
    schema_of,
)
from repro.relational.conditions import And, Condition, conj


@dataclass
class Rewrite:
    """One applied transformation, for explain output."""

    rule: str
    detail: str

    def __repr__(self) -> str:
        return "%s: %s" % (self.rule, self.detail)


@dataclass
class Optimized:
    """The optimizer's result: the rewritten plan plus its derivation."""

    expression: Expr
    rewrites: list[Rewrite] = field(default_factory=list)

    def explain(self) -> str:
        if not self.rewrites:
            return "(no rewrites applied)"
        return "\n".join("  %r" % r for r in self.rewrites)


def _conjuncts(condition: Condition) -> list[Condition]:
    if isinstance(condition, And):
        out: list[Condition] = []
        for part in condition.parts:
            out.extend(_conjuncts(part))
        return out
    return [condition]


def _rename_condition(condition: Condition, mapping: dict[str, str]) -> Condition:
    """Rewrite attribute references through a rename (new -> old)."""
    from repro.relational.conditions import Attr, Comparison, Not, Or

    if isinstance(condition, Comparison):
        left = Attr(mapping.get(condition.left.name, condition.left.name)) if isinstance(condition.left, Attr) else condition.left
        right = Attr(mapping.get(condition.right.name, condition.right.name)) if isinstance(condition.right, Attr) else condition.right
        return Comparison(left, condition.op, right)
    if isinstance(condition, And):
        return And(tuple(_rename_condition(p, mapping) for p in condition.parts))
    if isinstance(condition, Or):
        return Or(tuple(_rename_condition(p, mapping) for p in condition.parts))
    if isinstance(condition, Not):
        return Not(_rename_condition(condition.part, mapping))
    raise TypeError("cannot rename condition %r" % (condition,))


class _Optimizer:
    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog
        self.rewrites: list[Rewrite] = []

    def note(self, rule: str, detail: str) -> None:
        self.rewrites.append(Rewrite(rule, detail))

    # -- the driver -----------------------------------------------------------

    def optimize(self, expr: Expr) -> Expr:
        expr = self._rewrite(expr)
        # Iterate to a fixpoint (rewrites expose further opportunities);
        # bounded because every rule strictly shrinks or pushes down.
        for _ in range(8):
            before = expr
            expr = self._rewrite(expr)
            if expr == before:
                break
        return expr

    def _rewrite(self, expr: Expr) -> Expr:
        if isinstance(expr, (Base, Fixed)):
            return expr
        if isinstance(expr, Select):
            return self._rewrite_select(expr)
        if isinstance(expr, Project):
            return self._rewrite_project(expr)
        if isinstance(expr, Rename):
            return Rename(self._rewrite(expr.child), expr.mapping)
        if isinstance(expr, Derive):
            return Derive(self._rewrite(expr.child), expr.attr, expr.fn)
        if isinstance(expr, Join):
            return Join(self._rewrite(expr.left), self._rewrite(expr.right))
        if isinstance(expr, Union):
            return Union(self._rewrite(expr.left), self._rewrite(expr.right), expr.relaxed)
        raise TypeError("unknown expression %r" % (expr,))

    # -- selection rules ----------------------------------------------------------

    def _rewrite_select(self, expr: Select) -> Expr:
        child = self._rewrite(expr.child)
        condition = expr.condition

        if isinstance(child, Select):
            self.note("merge-selects", "σ(σ(E)) -> σ(E)")
            return self._rewrite_select(
                Select(child.child, conj(condition, child.condition))
            )

        if isinstance(child, Project):
            # Condition attributes are necessarily within the projection.
            self.note("push-select-through-project", "σ(π(E)) -> π(σ(E))")
            return Project(
                self._rewrite_select(Select(child.child, condition)), child.attrs
            )

        if isinstance(child, Rename):
            reverse = {new: old for old, new in child.mapping}
            try:
                renamed = _rename_condition(condition, reverse)
            except TypeError:
                return Select(child, condition)
            self.note("push-select-through-rename", "σ(ρ(E)) -> ρ(σ(E))")
            return Rename(
                self._rewrite_select(Select(child.child, renamed)), child.mapping
            )

        if isinstance(child, Union):
            self.note("push-select-through-union", "σ(E1 ∪ E2) -> σ(E1) ∪ σ(E2)")
            return Union(
                self._rewrite_select(Select(child.left, condition)),
                self._rewrite_select(Select(child.right, condition)),
                child.relaxed,
            )

        if isinstance(child, Derive):
            pushable = []
            stuck = []
            for part in _conjuncts(condition):
                if child.attr in part.attributes():
                    stuck.append(part)
                else:
                    pushable.append(part)
            if pushable:
                self.note(
                    "push-select-through-derive",
                    "%d conjunct(s) below derive[%s]" % (len(pushable), child.attr),
                )
                inner = self._rewrite_select(Select(child.child, conj(*pushable)))
                derived = Derive(inner, child.attr, child.fn)
                if stuck:
                    return Select(derived, conj(*stuck))
                return derived
            return Select(child, condition)

        if isinstance(child, Join):
            left_schema = schema_of(child.left, self.catalog).as_set()
            right_schema = schema_of(child.right, self.catalog).as_set()
            left_parts: list[Condition] = []
            right_parts: list[Condition] = []
            stuck = []
            for part in _conjuncts(condition):
                attrs = part.attributes()
                if attrs <= left_schema:
                    left_parts.append(part)
                elif attrs <= right_schema:
                    right_parts.append(part)
                else:
                    stuck.append(part)
            if left_parts or right_parts:
                self.note(
                    "push-select-into-join",
                    "%d left, %d right, %d kept"
                    % (len(left_parts), len(right_parts), len(stuck)),
                )
                left = child.left
                right = child.right
                if left_parts:
                    left = self._rewrite_select(Select(left, conj(*left_parts)))
                if right_parts:
                    right = self._rewrite_select(Select(right, conj(*right_parts)))
                joined = Join(left, right)
                return Select(joined, conj(*stuck)) if stuck else joined
            return Select(child, condition)

        return Select(child, condition)

    # -- projection rules -----------------------------------------------------------

    def _rewrite_project(self, expr: Project) -> Expr:
        child = self._rewrite(expr.child)

        if isinstance(child, Project):
            self.note("collapse-projects", "π(π(E)) -> π(E)")
            return self._rewrite_project(Project(child.child, expr.attrs))

        child_schema = schema_of(child, self.catalog)
        if tuple(expr.attrs) == child_schema.attrs:
            self.note("drop-identity-project", "π over full schema removed")
            return child

        return Project(child, expr.attrs)


def optimize(expr: Expr, catalog: Catalog) -> Optimized:
    """Apply the rewrite rules to ``expr``; results are always preserved."""
    optimizer = _Optimizer(catalog)
    rewritten = optimizer.optimize(expr)
    return Optimized(expression=rewritten, rewrites=optimizer.rewrites)
