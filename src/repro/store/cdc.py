"""Change-data-capture feed driven by maintenance sweeps.

``reconcile_site`` historically only *evicted*: bump the revision, drop
cache entries, done.  With persistence underneath, the same sweep now
also *publishes*: each non-clean reconciliation becomes a
:class:`ChangeEvent` on a :class:`DeltaFeed`, and downstream consumers
(the service's standing-query registry) re-derive row-level deltas from
it.  The feed is deliberately dumb — synchronous fan-out to subscribers,
no replay — because durability of the underlying facts lives in the
store's bronze log, not in the feed.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass(frozen=True)
class ChangeEvent:
    """One maintenance observation: a host's content or structure moved."""

    host: str
    revision: int
    quarantined: bool
    auto: tuple[str, ...] = ()
    manual: tuple[str, ...] = ()

    @property
    def kinds(self) -> tuple[str, ...]:
        kinds = []
        if self.auto:
            kinds.append("auto")
        if self.manual:
            kinds.append("manual")
        return tuple(kinds)


@dataclass
class DeltaFeed:
    """Synchronous pub/sub channel for :class:`ChangeEvent`.

    Subscribers run on the sweeping thread, in subscription order; an
    events list keeps the tail for tests and ``python -m repro store``
    inspection.
    """

    history_limit: int = 256
    events: list[ChangeEvent] = field(default_factory=list)
    _subscribers: list[Callable[[ChangeEvent], None]] = field(default_factory=list)
    _lock: threading.Lock = field(default_factory=threading.Lock)

    def subscribe(self, callback: Callable[[ChangeEvent], None]) -> None:
        with self._lock:
            if callback not in self._subscribers:
                self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[ChangeEvent], None]) -> None:
        with self._lock:
            if callback in self._subscribers:
                self._subscribers.remove(callback)

    def emit(self, event: ChangeEvent) -> None:
        with self._lock:
            self.events.append(event)
            if len(self.events) > self.history_limit:
                del self.events[: -self.history_limit]
            subscribers = list(self._subscribers)
        for callback in subscribers:
            callback(event)

    def emit_report(
        self,
        host: str,
        report: Any,
        revision: int,
        quarantined: bool,
    ) -> ChangeEvent:
        """Build and emit an event from a maintenance report.

        Takes the report duck-typed (``auto_changes``/``manual_changes``
        sequences of objects with ``kind``/``node_id``/``detail``) so the
        navigation layer can publish without importing the store package.
        """

        def label(change: Any) -> str:
            return "%s@%s: %s" % (change.kind, change.node_id, change.detail)

        event = ChangeEvent(
            host=host,
            revision=revision,
            quarantined=quarantined,
            auto=tuple(label(change) for change in report.auto_changes),
            manual=tuple(label(change) for change in report.manual_changes),
        )
        self.emit(event)
        return event
