"""The tiered persistent store: bronze → silver → gold.

Medallion layering for the webbase's state, one append-only
:class:`~repro.store.log.RecordLog` per tier:

bronze (``bronze.log``)
    The write-ahead raw layer: every page the simulated Web served
    (request key + response bytes), every fetch *intent* (logged before
    the fetch runs), and every revision bump / quarantine mark.  The
    other tiers are pure functions of bronze — that is what
    ``python -m repro store rebuild`` proves.

silver (``silver.log``)
    Extracted VPS relations keyed ``(host, relation, revision)``:
    immutable segments written when the result cache fills.  Only
    segments whose revision stamp matches the host's *current* revision
    are ever served (warm restart) — superseded revisions are dead
    weight until compaction drops them.

gold (``gold.log``)
    Materialized UR answers and standing-query snapshots, each carrying
    the revision vector of the hosts it was derived from.  An answer is
    current iff every dependency revision still matches; the same bumps
    that evict the result cache invalidate gold, with no extra
    bookkeeping.

A :class:`~repro.store.faults.StorageFault` threaded through the store
crashes writes at any global byte offset; after a crash the store turns
into a no-op sink (``crashed`` flag), modeling a dead process, and the
next open recovers by truncating torn tails.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass
from typing import Any, Iterable

from repro.relational.relation import Relation
from repro.store.faults import StorageCrash, StorageFault
from repro.store.log import RecordLog

KeyPairs = tuple[tuple[str, Any], ...]

META_FILE = "meta.json"
TIER_FILES = {"bronze": "bronze.log", "silver": "silver.log", "gold": "gold.log"}


def key_to_json(key: KeyPairs) -> list[list[Any]]:
    """Canonical JSON shape of a result-cache key's bound pairs."""
    return [[attr, value] for attr, value in key]


def key_from_json(items: Iterable[Iterable[Any]]) -> KeyPairs:
    return tuple((pair[0], pair[1]) for pair in items)


def page_key_to_json(key: tuple) -> list[Any]:
    method, url, params = key
    return [method, url, [[k, v] for k, v in params]]


def page_key_from_json(items: list[Any]) -> tuple:
    method, url, params = items
    return (method, url, tuple((p[0], p[1]) for p in params))


@dataclass(frozen=True)
class SilverEntry:
    """One current silver segment, decoded and ready to warm a cache."""

    relation: str
    host: str
    revision: int
    key: KeyPairs
    value: Relation


class TieredStore:
    """Facade over the three tier logs plus the navmap metadata file."""

    def __init__(
        self,
        root: str,
        fsync: bool = False,
        fault: StorageFault | None = None,
        metrics: Any = None,
    ) -> None:
        self.root = root
        self.fsync = fsync
        self.crashed = False
        self._closed = False
        self._metrics = metrics
        self._lock = threading.RLock()
        os.makedirs(root, exist_ok=True)
        self.bronze = RecordLog(os.path.join(root, TIER_FILES["bronze"]), fsync, fault)
        self.silver = RecordLog(os.path.join(root, TIER_FILES["silver"]), fsync, fault)
        self.gold = RecordLog(os.path.join(root, TIER_FILES["gold"]), fsync, fault)
        self._replay()
        torn = self.bronze.torn_bytes + self.silver.torn_bytes + self.gold.torn_bytes
        if metrics is not None:
            metrics.gauge("store.torn_bytes_recovered").set(torn)

    # -- state replay -----------------------------------------------------------

    def _replay(self) -> None:
        """Derive all in-memory state from the durable records."""
        self._pages: dict[tuple, dict[str, Any]] = {}
        self._intents: list[dict[str, Any]] = []
        self._revisions: dict[str, int] = {}
        self._quarantined: set[str] = set()
        self._silver: dict[tuple[str, KeyPairs], dict[str, Any]] = {}
        self._answers: dict[str, dict[str, Any]] = {}
        self._snapshots: dict[str, dict[str, Any]] = {}
        self._standing: dict[str, bool] = {}
        for record in self.bronze:
            kind = record.get("kind")
            if kind == "page":
                self._pages[page_key_from_json(record["key"])] = record
            elif kind == "intent":
                self._intents.append(record)
            elif kind == "revision":
                self._revisions[record["host"]] = record["revision"]
            elif kind == "quarantine":
                if record["active"]:
                    self._quarantined.add(record["host"])
                else:
                    self._quarantined.discard(record["host"])
        for record in self.silver:
            if record.get("kind") == "result":
                self._silver[(record["relation"], key_from_json(record["key"]))] = record
        for record in self.gold:
            kind = record.get("kind")
            if kind == "answer":
                self._answers[record["query"]] = record
            elif kind == "snapshot":
                self._snapshots[record["query"]] = record
            elif kind == "standing":
                self._standing[record["query"]] = record["active"]

    # -- write path -------------------------------------------------------------

    def _append(self, log: RecordLog, record: dict[str, Any]) -> bool:
        """Append unless dead; a torn write flips the store to dead."""
        if self.crashed or self._closed:
            return False
        try:
            log.append(record)
        except StorageCrash:
            self.crashed = True
            self._inc("store.crashes")
            return False
        return True

    def _inc(self, name: str, amount: int = 1) -> None:
        if self._metrics is not None:
            self._metrics.counter(name).inc(amount)

    def record_page(self, request: Any, response: Any) -> bool:
        """Bronze: one served page (the raw layer the rest rebuilds from)."""
        from repro.web.browser import request_key

        key = request_key(request)
        record = {
            "kind": "page",
            "host": request.url.host,
            "key": page_key_to_json(key),
            "status": response.status,
            "body": response.body,
            "final_url": str(response.final_url) if response.final_url else None,
            "location": response.location,
        }
        written = self._append(self.bronze, record)
        if written:
            with self._lock:
                self._pages[key] = record
            self._inc("store.bronze_pages")
        return written

    def record_intent(
        self, relation: str, host: str, revision: int, key: KeyPairs
    ) -> bool:
        """Bronze: a fetch is about to run (write-ahead of the result)."""
        record = {
            "kind": "intent",
            "relation": relation,
            "host": host,
            "revision": revision,
            "key": key_to_json(key),
        }
        written = self._append(self.bronze, record)
        if written:
            with self._lock:
                self._intents.append(record)
            self._inc("store.intents")
        return written

    def record_revision(self, host: str, revision: int) -> bool:
        """Bronze: the host's navigation-map revision moved."""
        record = {"kind": "revision", "host": host, "revision": revision}
        written = self._append(self.bronze, record)
        if written:
            with self._lock:
                self._revisions[host] = revision
        return written

    def record_quarantine(self, host: str, active: bool) -> bool:
        """Bronze: the host entered (or left) quarantine."""
        record = {"kind": "quarantine", "host": host, "active": active}
        written = self._append(self.bronze, record)
        if written:
            with self._lock:
                if active:
                    self._quarantined.add(host)
                else:
                    self._quarantined.discard(host)
        return written

    def persist_result(
        self,
        relation: str,
        host: str,
        revision: int,
        key: KeyPairs,
        value: Relation,
    ) -> bool:
        """Silver: one extracted relation segment, revision-stamped."""
        record = {
            "kind": "result",
            "relation": relation,
            "host": host,
            "revision": revision,
            "key": key_to_json(key),
            "schema": list(value.schema),
            "rows": [list(row) for row in value.rows],
        }
        written = self._append(self.silver, record)
        if written:
            with self._lock:
                self._silver[(relation, key)] = record
            self._inc("store.silver_writes")
        return written

    def persist_answer(
        self, query: str, value: Relation, revisions: dict[str, int]
    ) -> bool:
        """Gold: one materialized UR answer with its revision vector."""
        record = {
            "kind": "answer",
            "query": query,
            "schema": list(value.schema),
            "rows": [list(row) for row in value.rows],
            "revisions": dict(sorted(revisions.items())),
        }
        written = self._append(self.gold, record)
        if written:
            with self._lock:
                self._answers[query] = record
            self._inc("store.gold_writes")
        return written

    def persist_snapshot(
        self,
        query: str,
        schema: list[str],
        rows: list[tuple],
        revisions: dict[str, int],
        seq: int,
    ) -> bool:
        """Gold: a standing query's last delivered row set."""
        record = {
            "kind": "snapshot",
            "query": query,
            "schema": list(schema),
            "rows": sorted([list(row) for row in rows]),
            "revisions": dict(sorted(revisions.items())),
            "seq": seq,
        }
        written = self._append(self.gold, record)
        if written:
            with self._lock:
                self._snapshots[query] = record
            self._inc("store.snapshot_writes")
        return written

    def record_standing(self, query: str, active: bool = True) -> bool:
        """Gold: (de)register a standing query."""
        record = {"kind": "standing", "query": query, "active": active}
        written = self._append(self.gold, record)
        if written:
            with self._lock:
                self._standing[query] = active
        return written

    # -- read path --------------------------------------------------------------

    def revisions(self) -> dict[str, int]:
        with self._lock:
            return dict(self._revisions)

    def quarantined(self) -> set[str]:
        with self._lock:
            return set(self._quarantined)

    def page_index(self) -> dict[tuple, dict[str, Any]]:
        """Request key → last page record (bronze, last-wins)."""
        with self._lock:
            return dict(self._pages)

    def intents(self, current_only: bool = True) -> list[dict[str, Any]]:
        """Fetch intents, optionally only those at a host's current revision."""
        with self._lock:
            if not current_only:
                return list(self._intents)
            return [
                record
                for record in self._intents
                if record["revision"] == self._revisions.get(record["host"], 0)
            ]

    def silver_current(self) -> dict[tuple[str, KeyPairs], dict[str, Any]]:
        """(relation, key) → latest result record at the current revision."""
        with self._lock:
            return {
                key: record
                for key, record in self._silver.items()
                if record["revision"] == self._revisions.get(record["host"], 0)
            }

    def warm_entries(self) -> list[SilverEntry]:
        """Decoded current silver segments, deterministically ordered."""
        entries = []
        for (relation, key), record in sorted(
            self.silver_current().items(),
            key=lambda item: (item[1]["host"], item[0][0], json.dumps(item[1]["key"])),
        ):
            entries.append(
                SilverEntry(
                    relation=relation,
                    host=record["host"],
                    revision=record["revision"],
                    key=key,
                    value=Relation(
                        record["schema"], [tuple(row) for row in record["rows"]]
                    ),
                )
            )
        return entries

    def current_answers(self) -> list[dict[str, Any]]:
        """Gold answers whose full revision vector is still current."""
        with self._lock:
            return [
                record
                for _, record in sorted(self._answers.items())
                if all(
                    self._revisions.get(host, 0) == revision
                    for host, revision in record["revisions"].items()
                )
            ]

    def snapshot(self, query: str) -> dict[str, Any] | None:
        with self._lock:
            return self._snapshots.get(query)

    def standing_queries(self) -> dict[str, dict[str, Any] | None]:
        """Active standing queries → their last persisted snapshot."""
        with self._lock:
            return {
                query: self._snapshots.get(query)
                for query, active in sorted(self._standing.items())
                if active
            }

    # -- navmap metadata --------------------------------------------------------

    def save_navmaps(self, navmaps: dict[str, Any]) -> None:
        """Persist the compiled-from navigation maps (atomic replace).

        Maps are designer artifacts, written whole at attach time, so
        they live outside the WAL: a temp-file rename gives all-or-
        nothing without framing.
        """
        from repro.navigation.serialize import map_to_dict

        meta = {
            "version": 1,
            "navmaps": {
                host: map_to_dict(navmap) for host, navmap in sorted(navmaps.items())
            },
        }
        path = os.path.join(self.root, META_FILE)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="ascii") as handle:
            json.dump(meta, handle, sort_keys=True, separators=(",", ":"))
        os.replace(tmp, path)

    def load_navmaps(self) -> dict[str, Any]:
        """Host → NavigationMap, as persisted at the last attach."""
        from repro.navigation.serialize import map_from_dict

        path = os.path.join(self.root, META_FILE)
        try:
            with open(path, "r", encoding="ascii") as handle:
                meta = json.load(handle)
        except FileNotFoundError:
            return {}
        return {
            host: map_from_dict(payload)
            for host, payload in meta.get("navmaps", {}).items()
        }

    # -- maintenance ------------------------------------------------------------

    def describe(self) -> dict[str, Any]:
        """Inspection payload for the CLI and tests."""
        with self._lock:
            silver_current = sum(
                1
                for record in self._silver.values()
                if record["revision"] == self._revisions.get(record["host"], 0)
            )
            return {
                "root": self.root,
                "fsync": self.fsync,
                "crashed": self.crashed,
                "bronze": {
                    "records": len(self.bronze),
                    "bytes": self.bronze.size_bytes(),
                    "torn_bytes_recovered": self.bronze.torn_bytes,
                    "pages": len(self._pages),
                    "intents": len(self._intents),
                },
                "silver": {
                    "records": len(self.silver),
                    "bytes": self.silver.size_bytes(),
                    "torn_bytes_recovered": self.silver.torn_bytes,
                    "segments": len(self._silver),
                    "current_segments": silver_current,
                },
                "gold": {
                    "records": len(self.gold),
                    "bytes": self.gold.size_bytes(),
                    "torn_bytes_recovered": self.gold.torn_bytes,
                    "answers": len(self._answers),
                    "current_answers": len(self.current_answers()),
                    "snapshots": len(self._snapshots),
                    "standing": sum(1 for active in self._standing.values() if active),
                },
                "revisions": dict(sorted(self._revisions.items())),
                "quarantined": sorted(self._quarantined),
            }

    def compact(self) -> dict[str, int]:
        """Drop superseded records from every tier; returns bytes freed.

        Keeps: the last page per request key, current-revision intents
        (last per (relation, key)), final revision/quarantine marks,
        current-revision silver segments, current gold answers, and
        snapshots/registrations of active standing queries — i.e.
        exactly the records the read path can still serve.
        """
        with self._lock:
            before = (
                self.bronze.size_bytes()
                + self.silver.size_bytes()
                + self.gold.size_bytes()
            )
            keep_bronze: list[dict[str, Any]] = []
            last_page = {
                page_key_from_json(r["key"]): i
                for i, r in enumerate(self.bronze)
                if r.get("kind") == "page"
            }
            last_intent = {
                (r["relation"], json.dumps(r["key"])): i
                for i, r in enumerate(self.bronze)
                if r.get("kind") == "intent"
                and r["revision"] == self._revisions.get(r["host"], 0)
            }
            for i, record in enumerate(self.bronze):
                kind = record.get("kind")
                if kind == "page":
                    if last_page.get(page_key_from_json(record["key"])) == i:
                        keep_bronze.append(record)
                elif kind == "intent":
                    if last_intent.get((record["relation"], json.dumps(record["key"]))) == i:
                        keep_bronze.append(record)
            for host, revision in sorted(self._revisions.items()):
                keep_bronze.append(
                    {"kind": "revision", "host": host, "revision": revision}
                )
            for host in sorted(self._quarantined):
                keep_bronze.append({"kind": "quarantine", "host": host, "active": True})

            keep_silver = [
                record
                for _, record in sorted(
                    self.silver_current().items(),
                    key=lambda item: (
                        item[1]["host"],
                        item[0][0],
                        json.dumps(item[1]["key"]),
                    ),
                )
            ]

            keep_gold: list[dict[str, Any]] = list(self.current_answers())
            for query, active in sorted(self._standing.items()):
                if not active:
                    continue
                keep_gold.append({"kind": "standing", "query": query, "active": True})
                snapshot = self._snapshots.get(query)
                if snapshot is not None:
                    keep_gold.append(snapshot)

            self.bronze.rewrite(keep_bronze)
            self.silver.rewrite(keep_silver)
            self.gold.rewrite(keep_gold)
            self._replay()
            after = (
                self.bronze.size_bytes()
                + self.silver.size_bytes()
                + self.gold.size_bytes()
            )
            self._inc("store.compactions")
            return {"bytes_before": before, "bytes_after": after, "freed": before - after}

    def close(self) -> None:
        """Close the tier logs and go inert: a closed store still wired
        as a page sink (e.g. an old webbase over a shared world) drops
        writes instead of raising into the fetch path."""
        self._closed = True
        self.bronze.close()
        self.silver.close()
        self.gold.close()
