"""Tiered persistence for the webbase (bronze / silver / gold).

See :mod:`repro.store.tiered` for the layering, :mod:`repro.store.log`
for the on-disk framing and recovery contract, :mod:`repro.store.faults`
for deterministic crash injection, :mod:`repro.store.cdc` for the
maintenance-driven change feed, and :mod:`repro.store.rebuild` for the
bronze-replay rebuild path.
"""

from repro.store.cdc import ChangeEvent, DeltaFeed
from repro.store.faults import StorageCrash, StorageFault
from repro.store.log import RecordLog
from repro.store.tiered import SilverEntry, TieredStore

__all__ = [
    "ChangeEvent",
    "DeltaFeed",
    "RecordLog",
    "SilverEntry",
    "StorageCrash",
    "StorageFault",
    "TieredStore",
]
