"""Deterministic crash injection for the tiered store.

Modeled on the web layer's ``FaultPlan``: faults are *scheduled*, not
random at run time, so every test failure replays exactly.  A
:class:`StorageFault` kills the writing process at a chosen byte offset,
counted across every byte the store attempts to write, in write order.
The bytes before the offset reach the file (and are flushed, simulating
what the OS had already accepted); everything after is lost, which is
precisely the torn-tail shape recovery must tolerate.

Once a fault fires, the "process" is dead: all further writes raise
:class:`StorageCrash` immediately and touch nothing.  The
:class:`~repro.store.tiered.TieredStore` translates that into a sticky
``crashed`` flag so upper layers degrade to in-memory-only operation,
the same way a real process would simply be gone.
"""

from __future__ import annotations

import random
from typing import BinaryIO

from repro.errors import WebBaseError


class StorageCrash(WebBaseError):
    """Raised when a scheduled storage fault kills a write mid-flight."""


class StorageFault:
    """Kill the writer after exactly ``kill_at_byte`` bytes have been written.

    The counter is global across all files sharing this fault instance
    (the tiered store threads one fault through every tier's log), so a
    single offset addresses any point in the store's total write stream:
    record boundaries, mid-header, mid-payload.
    """

    def __init__(self, kill_at_byte: int) -> None:
        if kill_at_byte < 0:
            raise ValueError("kill_at_byte must be >= 0: %r" % kill_at_byte)
        self.kill_at_byte = kill_at_byte
        self.written = 0
        self.fired = False

    def write(self, handle: BinaryIO, data: bytes) -> None:
        """Write ``data`` to ``handle``, crashing at the scheduled offset.

        Writes the surviving prefix (if any), flushes it, then raises
        :class:`StorageCrash`.  After firing, every call raises without
        writing a single byte — a dead process writes nothing.
        """
        if self.fired:
            raise StorageCrash(
                "storage fault already fired at byte %d" % self.kill_at_byte
            )
        remaining = self.kill_at_byte - self.written
        if len(data) <= remaining:
            handle.write(data)
            self.written += len(data)
            return
        if remaining > 0:
            handle.write(data[:remaining])
        handle.flush()
        self.written = self.kill_at_byte
        self.fired = True
        raise StorageCrash(
            "simulated crash: write torn at global byte %d" % self.kill_at_byte
        )

    @staticmethod
    def sample_offsets(seed: int, total_bytes: int, count: int) -> list[int]:
        """``count`` deterministic kill offsets in ``[0, total_bytes)``.

        Seeded so a failing offset reported by a test reproduces exactly.
        """
        if total_bytes <= 0:
            return []
        rng = random.Random(("storage-fault", seed, total_bytes, count).__repr__())
        return sorted(rng.randrange(total_bytes) for _ in range(count))
