"""Offline rebuild: prove silver and gold are functions of bronze.

The bronze log holds every page the Web ever served plus every fetch
intent.  A :class:`ReplayServer` serves those pages back — no sockets,
no live world — so a stock :class:`NavigationExecutor` over the
persisted navigation maps can re-run each current-revision intent and
re-extract its relation.  Comparing the re-extraction against the
persisted silver segments (and re-answering gold queries over them)
yields a three-way verdict per entry:

``match``
    replay reproduced the persisted rows exactly (the invariant the
    crash suite asserts byte-for-byte),
``recovered``
    bronze has the pages but silver lost the segment (crash between the
    page writes and the silver append) — rebuild resurrects it,
``mismatch`` / ``unreplayable``
    genuine divergence or pages missing from bronze; both are surfaced,
    never papered over.

``python -m repro store rebuild`` drives this and writes the canonical
rebuilt segments to ``silver.rebuilt``/``gold.rebuilt`` next to the
live logs.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any

from repro.store.log import RecordLog
from repro.store.tiered import KeyPairs, TieredStore, key_to_json
from repro.web.clock import LatencyModel
from repro.web.http import Response, parse_url
from repro.web.server import HttpError


class ReplayServer:
    """Serves bronze-logged pages: the 'Web' of the rebuild path.

    Implements the two methods :class:`~repro.web.browser.Browser`
    actually uses (``fetch`` and ``latency_for``); a request whose key
    was never logged is a hard 404 — rebuild must never invent pages.
    """

    def __init__(self, pages: dict[tuple, dict[str, Any]]) -> None:
        self._pages = pages
        self._latency = LatencyModel(rtt=0.0, per_kilobyte=0.0)
        self.misses: list[tuple] = []

    def latency_for(self, host: str) -> LatencyModel:
        return self._latency

    def fetch(self, request: Any) -> Response:
        from repro.web.browser import request_key

        key = request_key(request)
        record = self._pages.get(key)
        if record is None:
            self.misses.append(key)
            raise HttpError(404, "page not in bronze log: %s %s" % (key[0], key[1]))
        return Response(
            record["status"],
            record["body"],
            final_url=parse_url(record["final_url"]) if record["final_url"] else None,
            location=record["location"],
        )


@dataclass
class RebuildReport:
    """Outcome of one rebuild pass, entry by entry."""

    silver_matches: int = 0
    silver_mismatches: list[str] = field(default_factory=list)
    silver_recovered: list[str] = field(default_factory=list)
    silver_unreplayable: list[str] = field(default_factory=list)
    gold_matches: int = 0
    gold_mismatches: list[str] = field(default_factory=list)
    rebuilt_silver_path: str | None = None
    rebuilt_gold_path: str | None = None

    @property
    def clean(self) -> bool:
        return not (
            self.silver_mismatches or self.silver_unreplayable or self.gold_mismatches
        )

    def summary(self) -> str:
        lines = [
            "silver: %d match, %d recovered, %d mismatch, %d unreplayable"
            % (
                self.silver_matches,
                len(self.silver_recovered),
                len(self.silver_mismatches),
                len(self.silver_unreplayable),
            ),
            "gold: %d match, %d mismatch"
            % (self.gold_matches, len(self.gold_mismatches)),
        ]
        for label in self.silver_mismatches + self.silver_unreplayable:
            lines.append("  silver! %s" % label)
        for label in self.gold_mismatches:
            lines.append("  gold! %s" % label)
        return "\n".join(lines)


def _result_record(
    relation: str, host: str, revision: int, key: KeyPairs, value: Any
) -> dict[str, Any]:
    return {
        "kind": "result",
        "relation": relation,
        "host": host,
        "revision": revision,
        "key": key_to_json(key),
        "schema": list(value.schema),
        "rows": [list(row) for row in value.rows],
    }


class _SilverBackedCatalog:
    """A Catalog that answers from rebuilt silver, replaying on a miss.

    The gold tier is defined over silver; a key silver never captured
    (e.g. a fetch the planner probed but the crash lost) falls through
    to bronze replay so the rebuild chain stays closed.
    """

    def __init__(self, vps: Any, segments: dict[tuple[str, KeyPairs], Any]) -> None:
        self._vps = vps
        self._segments = segments

    def base_schema(self, name: str) -> Any:
        return self._vps.base_schema(name)

    def base_binding_sets(self, name: str) -> Any:
        return self._vps.base_binding_sets(name)

    def host_of(self, name: str) -> str:
        return self._vps.host_of(name)

    def _key(self, given: dict[str, Any]) -> KeyPairs:
        return tuple(
            sorted((attr, value) for attr, value in given.items() if value is not None)
        )

    def fetch(self, name: str, given: dict[str, Any], context: Any = None) -> Any:
        entry = self._segments.get((name, self._key(given)))
        if entry is not None:
            return entry
        return self._vps.fetch(name, given)

    def fetch_batch(
        self, name: str, givens: list[dict[str, Any]], context: Any = None
    ) -> list[Any]:
        return [self.fetch(name, given) for given in givens]


def _build_replay_vps(store: TieredStore) -> tuple[Any, ReplayServer]:
    """A VpsSchema whose executor navigates the bronze page log."""
    from repro.navigation.compiler import compile_map
    from repro.navigation.executor import NavigationExecutor
    from repro.vps.schema import VpsSchema

    navmaps = store.load_navmaps()
    if not navmaps:
        raise ValueError(
            "store at %r has no persisted navigation maps; attach a webbase first"
            % store.root
        )
    server = ReplayServer(store.page_index())
    executor = NavigationExecutor(server)
    vps = VpsSchema(executor)
    for _, navmap in sorted(navmaps.items()):
        vps.add_compiled_site(compile_map(navmap))
    return vps, server


def rebuild(store: TieredStore, write: bool = True) -> RebuildReport:
    """Re-derive silver from bronze and gold from silver; compare both.

    When ``write`` is true the canonical rebuilt segments are written to
    ``silver.rebuilt`` / ``gold.rebuilt`` in the store directory (framed
    like the live logs, deterministically ordered) so two stores can be
    compared byte-for-byte.
    """
    from repro.errors import WebBaseError
    from repro.relational.relation import Relation

    report = RebuildReport()
    vps, _server = _build_replay_vps(store)
    revisions = store.revisions()

    # -- silver from bronze --------------------------------------------------
    rebuilt: dict[tuple[str, KeyPairs], dict[str, Any]] = {}
    seen: set[tuple[str, KeyPairs]] = set()
    for intent in store.intents(current_only=True):
        relation = intent["relation"]
        key = tuple((pair[0], pair[1]) for pair in intent["key"])
        if (relation, key) in seen:
            continue
        seen.add((relation, key))
        label = "%s %s" % (relation, json.dumps(intent["key"]))
        try:
            value = vps.fetch(relation, dict(key))
        except WebBaseError as exc:
            report.silver_unreplayable.append("%s (%s)" % (label, exc))
            continue
        rebuilt[(relation, key)] = _result_record(
            relation, intent["host"], intent["revision"], key, value
        )

    persisted = store.silver_current()
    for identity, record in sorted(
        persisted.items(), key=lambda item: json.dumps(item[1]["key"])
    ):
        label = "%s %s" % (identity[0], json.dumps(record["key"]))
        replayed = rebuilt.get(identity)
        if replayed is None:
            # No current intent replayed this key; replay it directly from
            # the silver identity so every persisted segment is checked.
            try:
                value = vps.fetch(identity[0], dict(identity[1]))
            except WebBaseError as exc:
                report.silver_unreplayable.append("%s (%s)" % (label, exc))
                continue
            replayed = _result_record(
                identity[0], record["host"], record["revision"], identity[1], value
            )
            rebuilt[identity] = replayed
        if replayed["schema"] == record["schema"] and replayed["rows"] == record["rows"]:
            report.silver_matches += 1
        else:
            report.silver_mismatches.append(label)
    for identity in sorted(set(rebuilt) - set(persisted), key=str):
        report.silver_recovered.append(
            "%s %s" % (identity[0], json.dumps(key_to_json(identity[1])))
        )

    # -- gold from silver ----------------------------------------------------
    from repro.logical.mapping import car_logical_schema
    from repro.ur.usedcars import build_used_car_ur

    segments = {
        identity: Relation(record["schema"], [tuple(row) for row in record["rows"]])
        for identity, record in rebuilt.items()
    }
    catalog = _SilverBackedCatalog(vps, segments)
    logical = car_logical_schema(catalog)
    ur = build_used_car_ur(logical, optimizer="off")
    rebuilt_gold: list[dict[str, Any]] = []
    for record in store.current_answers():
        label = record["query"]
        try:
            answer = ur.answer(record["query"])
        except WebBaseError as exc:
            report.gold_mismatches.append("%s (%s)" % (label, exc))
            continue
        replayed = {
            "kind": "answer",
            "query": record["query"],
            "schema": list(answer.schema),
            "rows": [list(row) for row in answer.rows],
            "revisions": record["revisions"],
        }
        rebuilt_gold.append(replayed)
        if replayed["schema"] == record["schema"] and replayed["rows"] == record["rows"]:
            report.gold_matches += 1
        else:
            report.gold_mismatches.append(label)

    if write:
        silver_path = os.path.join(store.root, "silver.rebuilt")
        gold_path = os.path.join(store.root, "gold.rebuilt")
        for path in (silver_path, gold_path):
            if os.path.exists(path):
                os.remove(path)
        silver_log = RecordLog(silver_path)
        for _, record in sorted(
            rebuilt.items(),
            key=lambda item: (item[1]["host"], item[0][0], json.dumps(item[1]["key"])),
        ):
            silver_log.append(record)
        silver_log.close()
        gold_log = RecordLog(gold_path)
        for record in sorted(rebuilt_gold, key=lambda r: r["query"]):
            gold_log.append(record)
        gold_log.close()
        report.rebuilt_silver_path = silver_path
        report.rebuilt_gold_path = gold_path
    return report
