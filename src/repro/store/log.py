"""Append-only record log with checksum framing and torn-tail recovery.

Every tier of the store is one of these files.  A record is::

    <length:u32le> <crc32(payload):u32le> <payload:canonical JSON>

Canonical JSON (sorted keys, compact separators, ascii) makes the byte
stream a pure function of the record sequence — the crash-replay suite
leans on that to assert prefix consistency and byte-identical rebuilds.

Recovery happens at open: the file is scanned record by record and
truncated at the first frame whose length or checksum does not hold.
Everything before that point is served; nothing after it ever is.  A
torn tail is therefore indistinguishable from a clean log that simply
stopped earlier — the write-ahead contract.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import zlib
from typing import Any, Iterator

from repro.store.faults import StorageFault

_HEADER = struct.Struct("<II")

#: Upper bound on a single record's payload, as a corruption guard: a torn
#: header can otherwise decode as a multi-gigabyte length and defeat the
#: scan.  Pages in the simulated web are a few KB; 16 MiB is generous.
MAX_RECORD_BYTES = 16 * 1024 * 1024


def encode_record(record: dict[str, Any]) -> bytes:
    """Frame one record as bytes (header + canonical JSON payload)."""
    payload = json.dumps(
        record, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    ).encode("ascii")
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def scan_records(data: bytes) -> tuple[list[dict[str, Any]], int]:
    """Decode ``data``, returning ``(records, good_end)``.

    ``good_end`` is the offset of the first byte that is not part of a
    complete, checksum-valid record — the truncation point for recovery.
    """
    records: list[dict[str, Any]] = []
    offset = 0
    size = len(data)
    while offset + _HEADER.size <= size:
        length, crc = _HEADER.unpack_from(data, offset)
        start = offset + _HEADER.size
        end = start + length
        if length > MAX_RECORD_BYTES or end > size:
            break
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            break
        try:
            record = json.loads(payload.decode("ascii"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            break
        if not isinstance(record, dict):
            break
        records.append(record)
        offset = end
    return records, offset


class RecordLog:
    """One append-only framed log file.

    ``fsync=False`` (the default) flushes to the OS after every append but
    leaves durability to the page cache — the store's crash model injects
    faults *above* the OS write, so recovery guarantees are identical in
    either mode; fsync only narrows the window against real power loss.
    """

    def __init__(
        self,
        path: str,
        fsync: bool = False,
        fault: StorageFault | None = None,
    ) -> None:
        self.path = path
        self.fsync = fsync
        self._fault = fault
        self._lock = threading.Lock()
        self._records, self.torn_bytes = self._recover()
        self._handle = open(path, "ab")

    def _recover(self) -> tuple[list[dict[str, Any]], int]:
        """Scan the file, truncate any torn tail, return the good records."""
        try:
            with open(self.path, "rb") as handle:
                data = handle.read()
        except FileNotFoundError:
            return [], 0
        records, good_end = scan_records(data)
        torn = len(data) - good_end
        if torn:
            with open(self.path, "r+b") as handle:
                handle.truncate(good_end)
        return records, torn

    @property
    def records(self) -> list[dict[str, Any]]:
        """All durable records, oldest first (live view; do not mutate)."""
        return self._records

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return iter(self._records)

    def append(self, record: dict[str, Any]) -> dict[str, Any]:
        """Append one record durably; raises StorageCrash on a torn write."""
        frame = encode_record(record)
        with self._lock:
            if self._fault is not None:
                self._fault.write(self._handle, frame)
            else:
                self._handle.write(frame)
            self._handle.flush()
            if self.fsync:
                os.fsync(self._handle.fileno())
            self._records.append(record)
        return record

    def rewrite(self, records: list[dict[str, Any]]) -> None:
        """Atomically replace the log's contents (compaction path).

        Written to a temp file and renamed over the original, so a crash
        during compaction leaves either the old log or the new one —
        never a mix.  Not routed through the fault layer: compaction is
        an offline maintenance action in this codebase.
        """
        tmp = self.path + ".tmp"
        with self._lock:
            with open(tmp, "wb") as handle:
                for record in records:
                    handle.write(encode_record(record))
                handle.flush()
                os.fsync(handle.fileno())
            self._handle.close()
            os.replace(tmp, self.path)
            self._handle = open(self.path, "ab")
            self._records = list(records)

    def size_bytes(self) -> int:
        """Current on-disk size of the log."""
        try:
            return os.path.getsize(self.path)
        except OSError:
            return 0

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.close()
