"""A second application domain: job listings.

Section 2: the external schema "targets specific application domains
(e.g., used car ads, computer equipment, etc.)" and Section 6 expects
webbases to be "designed for application domains (such as cars, jobs,
houses) by the experts in those domains".  This module is that exercise
for *jobs*, built entirely from the library's public machinery — nothing
here is car-specific, which is the point:

* a deterministic dataset of postings and salary-survey medians;
* two job boards with different vocabularies (MonsterBoard's
  title/city table vs CareerPath's position/location blocks) and a
  salary-survey site, all simulated;
* designer sessions mapping each site by example;
* a logical schema (``postings`` = union of the boards; ``survey``);
* a JobsUR with its own concept hierarchy and compatibility rules.

The flagship query: *jobs in New York paying above the market median* —
a cross-site join a 1999 job hunter could never pose to either board.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.logical.schema import LogicalSchema
from repro.logical.standardize import to_usd
from repro.navigation.builder import MapBuilder
from repro.navigation.compiler import compile_map
from repro.navigation.executor import NavigationExecutor
from repro.relational.algebra import Derive, Project, Union, rename
from repro.relational.algebra import Base as BaseRel
from repro.ur.compat import allows
from repro.ur.concepts import Concept
from repro.ur.planner import StructuredUR
from repro.vps.schema import VpsSchema
from repro.web import html as H
from repro.web.browser import Browser
from repro.web.http import Request, Url
from repro.web.server import Site, WebServer

TITLES = ["software engineer", "dba", "web designer", "sysadmin", "analyst"]
CITIES = ["new york", "boston", "chicago", "austin", "seattle"]
COMPANIES = [
    "Initech",
    "Globex",
    "Hooli",
    "Vandelay",
    "Wayne Tech",
    "Acme Data",
    "Pied Piper",
    "Umbrella IT",
]

MONSTER_HOST = "jobs.monsterboard.com"
CAREER_HOST = "www.careerpath.com"
SURVEY_HOST = "www.salarysurvey.org"


@dataclass(frozen=True)
class Posting:
    posting_id: int
    host: str
    title: str
    city: str
    company: str
    salary: int
    contact: str


@dataclass(frozen=True)
class Median:
    title: str
    city: str
    median_salary: int


class JobsDataset:
    """Postings for two boards plus a salary survey, seeded."""

    def __init__(self, seed: int = 2026, postings_per_host: int = 60) -> None:
        base = {
            "software engineer": 72000,
            "dba": 68000,
            "web designer": 52000,
            "sysadmin": 58000,
            "analyst": 61000,
        }
        city_factor = {
            "new york": 1.25,
            "boston": 1.15,
            "chicago": 1.05,
            "austin": 0.95,
            "seattle": 1.10,
        }
        self.medians = [
            Median(title, city, int(round(base[title] * city_factor[city], -2)))
            for title in TITLES
            for city in CITIES
        ]
        median_index = {(m.title, m.city): m.median_salary for m in self.medians}
        self.postings: list[Posting] = []
        posting_id = 5000
        for host in (MONSTER_HOST, CAREER_HOST):
            rng = random.Random("%s:jobs:%s" % (seed, host))
            for i in range(postings_per_host):
                if i < 4:
                    # Guarantee above-median NY software jobs at each board.
                    title, city = "software engineer", "new york"
                    salary = int(median_index[(title, city)] * rng.uniform(1.05, 1.25))
                else:
                    title = rng.choice(TITLES)
                    city = rng.choice(CITIES)
                    salary = int(median_index[(title, city)] * rng.uniform(0.8, 1.2))
                self.postings.append(
                    Posting(
                        posting_id=posting_id,
                        host=host,
                        title=title,
                        city=city,
                        company=rng.choice(COMPANIES),
                        salary=int(round(salary, -2)),
                        contact="hr%d@%s.example"
                        % (posting_id, rng.choice(COMPANIES).lower().replace(" ", "")),
                    )
                )
                posting_id += 1

    def postings_for(
        self, host: str, title: str | None = None, city: str | None = None
    ) -> list[Posting]:
        return [
            p
            for p in self.postings
            if p.host == host
            and (title is None or p.title == title)
            and (city is None or p.city == city)
        ]

    def medians_for(self, title: str) -> list[Median]:
        return [m for m in self.medians if m.title == title]


# -- the simulated job sites -----------------------------------------------------------


class MonsterBoardSite(Site):
    """Table results; title mandatory (select), city optional (select)."""

    def __init__(self, dataset: JobsDataset) -> None:
        super().__init__(MONSTER_HOST)
        self.dataset = dataset
        self.route("/", self.entry)
        self.route("/search", self.search)
        self.route("/cgi-bin/jobs", self.results)

    def entry(self, request: Request) -> H.Element:
        return H.page("MonsterBoard", H.bullet_links([("Find Jobs", "/search")]))

    def search(self, request: Request) -> H.Element:
        form = H.form(
            "/cgi-bin/jobs",
            H.labeled("Title", H.select("title", TITLES)),
            H.labeled("City", H.select("city", [""] + CITIES)),
            H.submit_button("Search"),
            method="get",
        )
        return H.page("MonsterBoard Search", form)

    def results(self, request: Request) -> H.Element:
        params = request.params
        postings = self.dataset.postings_for(
            MONSTER_HOST, params.get("title") or None, params.get("city") or None
        )
        start = int(params.get("start", "0") or 0)
        chunk = postings[start : start + 10]
        rows = [
            [p.title, p.city, p.company, "${:,}".format(p.salary), p.contact]
            for p in chunk
        ]
        body = [H.table(["Title", "City", "Company", "Salary", "Contact"], rows)]
        if start + 10 < len(postings):
            next_params = dict(params)
            next_params["start"] = str(start + 10)
            more = Url(MONSTER_HOST, "/cgi-bin/jobs").with_params(next_params)
            body.append(H.el("p", H.link(str(more), "More")))
        return H.page("MonsterBoard Listings", *body)


class CareerPathSite(Site):
    """Different vocabulary (position/location) and labeled-block layout."""

    def __init__(self, dataset: JobsDataset) -> None:
        super().__init__(CAREER_HOST)
        self.dataset = dataset
        self.route("/", self.entry)
        self.route("/listings", self.search)
        self.route("/cgi-bin/match", self.results)

    def entry(self, request: Request) -> H.Element:
        return H.page("CareerPath", H.bullet_links([("Job Listings", "/listings")]))

    def search(self, request: Request) -> H.Element:
        form = H.form(
            "/cgi-bin/match",
            H.labeled("Position", H.select("position", TITLES)),
            H.labeled("Location", H.select("location", [""] + CITIES)),
            H.submit_button("Match"),
            method="get",
        )
        return H.page("CareerPath Listings", form)

    def results(self, request: Request) -> H.Element:
        params = request.params
        postings = self.dataset.postings_for(
            CAREER_HOST, params.get("position") or None, params.get("location") or None
        )
        start = int(params.get("start", "0") or 0)
        chunk = postings[start : start + 12]
        blocks = []
        for p in chunk:
            blocks.append(
                H.el(
                    "dl",
                    H.el("dt", "Position"),
                    H.el("dd", p.title),
                    H.el("dt", "Location"),
                    H.el("dd", p.city),
                    H.el("dt", "Employer"),
                    H.el("dd", p.company),
                    H.el("dt", "Pay"),
                    H.el("dd", "${:,}".format(p.salary)),
                    H.el("dt", "Apply"),
                    H.el("dd", p.contact),
                )
            )
        if start + 12 < len(postings):
            next_params = dict(params)
            next_params["start"] = str(start + 12)
            more = Url(CAREER_HOST, "/cgi-bin/match").with_params(next_params)
            blocks.append(H.el("p", H.link(str(more), "More")))
        return H.page("CareerPath Matches", *blocks)


class SalarySurveySite(Site):
    """Median salaries by title (one row per city)."""

    def __init__(self, dataset: JobsDataset) -> None:
        super().__init__(SURVEY_HOST)
        self.dataset = dataset
        self.route("/", self.entry)
        self.route("/survey", self.search)
        self.route("/cgi-bin/median", self.results)

    def entry(self, request: Request) -> H.Element:
        return H.page(
            "Salary Survey", H.bullet_links([("Salary Data", "/survey")])
        )

    def search(self, request: Request) -> H.Element:
        form = H.form(
            "/cgi-bin/median",
            H.labeled("Title", H.select("title", TITLES)),
            H.submit_button("Look Up"),
            method="get",
        )
        return H.page("Salary Survey Lookup", form)

    def results(self, request: Request) -> H.Element:
        title = request.params.get("title", "")
        rows = [
            [m.title, m.city, "${:,}".format(m.median_salary)]
            for m in self.dataset.medians_for(title)
        ]
        if not rows:
            return H.page("Survey", H.el("p", "No data for %s." % title))
        return H.page(
            "Median Salaries", H.table(["Title", "City", "Median Salary"], rows)
        )


# -- assembling the jobs webbase ----------------------------------------------------------


@dataclass
class JobsWorld:
    server: WebServer
    dataset: JobsDataset


def build_jobs_world(seed: int = 2026, postings_per_host: int = 60) -> JobsWorld:
    dataset = JobsDataset(seed=seed, postings_per_host=postings_per_host)
    server = WebServer()
    server.add_site(MonsterBoardSite(dataset))
    server.add_site(CareerPathSite(dataset))
    server.add_site(SalarySurveySite(dataset))
    return JobsWorld(server=server, dataset=dataset)


def _map_monster(world: JobsWorld) -> MapBuilder:
    browser = Browser(world.server)
    builder = MapBuilder(MONSTER_HOST)
    browser.subscribe(builder)
    browser.get("http://%s/" % MONSTER_HOST)
    browser.follow_named("Find Jobs")
    page = browser.submit_by_attribute({"title": "software engineer"})
    first = page.tables()[0][1]
    builder.mark_data_page(
        "monster",
        dict(zip(["title", "city", "company", "salary", "contact"], first)),
    )
    while browser.page.has_link_named("More"):
        browser.follow_named("More")
    return builder


def _map_careerpath(world: JobsWorld) -> MapBuilder:
    browser = Browser(world.server)
    builder = MapBuilder(CAREER_HOST)
    browser.subscribe(builder)
    browser.get("http://%s/" % CAREER_HOST)
    browser.follow_named("Job Listings")
    page = browser.submit_by_attribute({"position": "software engineer"})
    first_dl = page.dom.find_all("dl")[0]
    values = [dd.text() for dd in first_dl.find_all("dd")]
    builder.mark_data_page(
        "careerpath",
        dict(zip(["position", "location", "employer", "pay", "apply"], values)),
    )
    while browser.page.has_link_named("More"):
        browser.follow_named("More")
    return builder


def _map_survey(world: JobsWorld) -> MapBuilder:
    browser = Browser(world.server)
    builder = MapBuilder(SURVEY_HOST)
    browser.subscribe(builder)
    browser.get("http://%s/" % SURVEY_HOST)
    browser.follow_named("Salary Data")
    page = browser.submit_by_attribute({"title": "dba"})
    first = page.tables()[0][1]
    builder.mark_data_page(
        "survey", dict(zip(["title", "city", "median_salary"], first))
    )
    return builder


POSTING_SCHEMA = ("title", "city", "company", "salary", "contact")


def jobs_logical_schema(vps: VpsSchema) -> LogicalSchema:
    logical = LogicalSchema(vps)
    monster = Project(
        Derive(BaseRel("monster"), "salary", lambda r: to_usd(r.get("salary"))),
        POSTING_SCHEMA,
    )
    career = Project(
        Derive(
            rename(
                BaseRel("careerpath"),
                {
                    "position": "title",
                    "location": "city",
                    "employer": "company",
                    "pay": "salary",
                    "apply": "contact",
                },
            ),
            "salary",
            lambda r: to_usd(r.get("salary")),
        ),
        POSTING_SCHEMA,
    )
    logical.define("postings", Union(monster, career))
    logical.define(
        "market",
        Derive(
            BaseRel("survey"),
            "median_salary",
            lambda r: to_usd(r.get("median_salary")),
        ),
    )
    return logical


def jobs_hierarchy() -> Concept:
    root = Concept("JobsUR")
    root.add(
        Concept("Job").add("title", "city"),
        Concept("Posting").add("company", "salary", "contact"),
        Concept("Market").add("median_salary"),
    )
    root.validate()
    return root


class JobsWebBase:
    """The jobs-domain webbase: the same three layers, new domain."""

    def __init__(self, seed: int = 2026, postings_per_host: int = 60) -> None:
        self.world = build_jobs_world(seed=seed, postings_per_host=postings_per_host)
        self.builders = {
            MONSTER_HOST: _map_monster(self.world),
            CAREER_HOST: _map_careerpath(self.world),
            SURVEY_HOST: _map_survey(self.world),
        }
        self.executor = NavigationExecutor(self.world.server)
        self.vps = VpsSchema(self.executor)
        for builder in self.builders.values():
            self.vps.add_compiled_site(compile_map(builder.map))
        self.logical = jobs_logical_schema(self.vps)
        self.ur = StructuredUR(
            logical=self.logical,
            hierarchy=jobs_hierarchy(),
            rules=allows("postings", "market"),
            relations=["postings", "market"],
        )

    def query(self, text: str):
        return self.ur.answer(text)

    def plan(self, text: str):
        return self.ur.plan(text)
