"""The paper's other named application domain: computer equipment.

Section 2 calls out "used car ads, computer equipment, etc." as the
domains external schemas are built for.  This is the computer-equipment
webbase: two mail-order vendors with different vocabularies plus a
hardware-review site, assembled from the library's public machinery just
like the cars and jobs domains.

Flagship query: *laptops under $2,500 with a review rating of 4 or
better* — prices from whichever vendor carries the machine, ratings from
the review site, joined on brand and model.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.logical.schema import LogicalSchema
from repro.logical.standardize import to_percent, to_usd
from repro.navigation.builder import MapBuilder
from repro.navigation.compiler import compile_map
from repro.navigation.executor import NavigationExecutor
from repro.relational.algebra import Base as BaseRel
from repro.relational.algebra import Derive, Project, Union, rename
from repro.ur.compat import allows, mutually_exclusive
from repro.ur.concepts import Concept
from repro.ur.planner import StructuredUR
from repro.vps.schema import VpsSchema
from repro.web import html as H
from repro.web.browser import Browser
from repro.web.http import Request, Url
from repro.web.server import Site, WebServer

CATEGORIES = ["laptop", "desktop", "monitor", "printer"]
BRANDS = ["ibm", "compaq", "dell", "apple", "hp"]
MODELS = {
    "ibm": ["tp600", "tp770"],
    "compaq": ["armada", "presario"],
    "dell": ["inspiron", "optiplex"],
    "apple": ["powerbook", "imac"],
    "hp": ["omnibook", "pavilion"],
}

WAREHOUSE_HOST = "www.compuwarehouse.com"
PCDIRECT_HOST = "www.pcdirect.com"
REVIEWS_HOST = "www.hardwarereviews.net"


@dataclass(frozen=True)
class Listing:
    host: str
    category: str
    brand: str
    model: str
    price: int


@dataclass(frozen=True)
class Review:
    brand: str
    model: str
    rating: float


class HardwareDataset:
    """Vendor listings plus review ratings, seeded."""

    def __init__(self, seed: int = 1998, listings_per_host: int = 50) -> None:
        base_price = {"laptop": 2800, "desktop": 1800, "monitor": 700, "printer": 400}
        self.reviews: list[Review] = []
        for brand in BRANDS:
            for model in MODELS[brand]:
                roll = random.Random("%s:rev:%s:%s" % (seed, brand, model))
                self.reviews.append(
                    Review(brand, model, round(roll.uniform(2.5, 5.0), 1))
                )
        rating_index = {(r.brand, r.model): r.rating for r in self.reviews}

        self.listings: list[Listing] = []
        for host in (WAREHOUSE_HOST, PCDIRECT_HOST):
            rng = random.Random("%s:hw:%s" % (seed, host))
            for i in range(listings_per_host):
                if i < 3:
                    # Guarantee well-reviewed cheap laptops at each vendor.
                    category = "laptop"
                    brand, model = max(
                        ((b, m) for b in BRANDS for m in MODELS[b]),
                        key=lambda bm: rating_index[bm],
                    )
                    price = int(rng.uniform(1800, 2400))
                else:
                    category = rng.choice(CATEGORIES)
                    brand = rng.choice(BRANDS)
                    model = rng.choice(MODELS[brand])
                    price = int(base_price[category] * rng.uniform(0.7, 1.4))
                self.listings.append(
                    Listing(host, category, brand, model, int(round(price, -1)))
                )

    def listings_for(
        self, host: str, category: str | None = None, brand: str | None = None
    ) -> list[Listing]:
        return [
            l
            for l in self.listings
            if l.host == host
            and (category is None or l.category == category)
            and (brand is None or l.brand == brand)
        ]

    def reviews_for(self, brand: str) -> list[Review]:
        return [r for r in self.reviews if r.brand == brand]


class _VendorSite(Site):
    """Shared vendor skeleton; vocabulary injected per store."""

    def __init__(
        self,
        host: str,
        dataset: HardwareDataset,
        category_field: str,
        brand_field: str,
        headers: list[str],
        link_name: str,
    ) -> None:
        super().__init__(host)
        self.dataset = dataset
        self.category_field = category_field
        self.brand_field = brand_field
        self.headers = headers
        self.link_name = link_name
        self.route("/", self.entry)
        self.route("/catalog", self.search)
        self.route("/cgi-bin/stock", self.results)

    def entry(self, request: Request) -> H.Element:
        return H.page(self.host, H.bullet_links([(self.link_name, "/catalog")]))

    def search(self, request: Request) -> H.Element:
        form = H.form(
            "/cgi-bin/stock",
            H.labeled("Category", H.select(self.category_field, CATEGORIES)),
            H.labeled("Brand", H.select(self.brand_field, [""] + BRANDS)),
            H.submit_button("Browse"),
            method="get",
        )
        return H.page("%s Catalog" % self.host, form)

    def results(self, request: Request) -> H.Element:
        params = request.params
        listings = self.dataset.listings_for(
            self.host,
            params.get(self.category_field) or None,
            params.get(self.brand_field) or None,
        )
        start = int(params.get("start", "0") or 0)
        chunk = listings[start : start + 10]
        rows = [
            [l.category, l.brand, l.model, "${:,}".format(l.price)] for l in chunk
        ]
        body = [H.table(self.headers, rows)]
        if start + 10 < len(listings):
            next_params = dict(params)
            next_params["start"] = str(start + 10)
            more = Url(self.host, "/cgi-bin/stock").with_params(next_params)
            body.append(H.el("p", H.link(str(more), "More")))
        return H.page("%s Stock" % self.host, *body)


class ReviewsSite(Site):
    def __init__(self, dataset: HardwareDataset) -> None:
        super().__init__(REVIEWS_HOST)
        self.dataset = dataset
        self.route("/", self.entry)
        self.route("/ratings", self.search)
        self.route("/cgi-bin/rate", self.results)

    def entry(self, request: Request) -> H.Element:
        return H.page("Hardware Reviews", H.bullet_links([("Ratings", "/ratings")]))

    def search(self, request: Request) -> H.Element:
        form = H.form(
            "/cgi-bin/rate",
            H.labeled("Brand", H.select("brand", BRANDS)),
            H.submit_button("Show"),
            method="get",
        )
        return H.page("Ratings Lookup", form)

    def results(self, request: Request) -> H.Element:
        brand = request.params.get("brand", "")
        rows = [
            [r.brand, r.model, "%.1f" % r.rating]
            for r in self.dataset.reviews_for(brand)
        ]
        if not rows:
            return H.page("Ratings", H.el("p", "No reviews for %s." % brand))
        return H.page("Ratings", H.table(["Brand", "Model", "Rating"], rows))


@dataclass
class HardwareWorld:
    server: WebServer
    dataset: HardwareDataset


def build_hardware_world(seed: int = 1998, listings_per_host: int = 50) -> HardwareWorld:
    dataset = HardwareDataset(seed=seed, listings_per_host=listings_per_host)
    server = WebServer()
    server.add_site(
        _VendorSite(
            WAREHOUSE_HOST,
            dataset,
            category_field="category",
            brand_field="brand",
            headers=["Category", "Brand", "Model", "Price"],
            link_name="Shop Online",
        )
    )
    server.add_site(
        _VendorSite(
            PCDIRECT_HOST,
            dataset,
            category_field="type",
            brand_field="maker",
            headers=["Type", "Maker", "Model", "Our Price"],
            link_name="Direct Sales",
        )
    )
    server.add_site(ReviewsSite(dataset))
    return HardwareWorld(server=server, dataset=dataset)


def _map_vendor(world: HardwareWorld, host: str, link_name: str, columns: list[str], relation: str, category_value: str) -> MapBuilder:
    browser = Browser(world.server)
    builder = MapBuilder(host)
    browser.subscribe(builder)
    browser.get("http://%s/" % host)
    browser.follow_named(link_name)
    field = "category" if host == WAREHOUSE_HOST else "type"
    page = browser.submit_by_attribute({field: category_value})
    first = page.tables()[0][1]
    builder.mark_data_page(relation, dict(zip(columns, first)))
    while browser.page.has_link_named("More"):
        browser.follow_named("More")
    return builder


def _map_reviews(world: HardwareWorld) -> MapBuilder:
    browser = Browser(world.server)
    builder = MapBuilder(REVIEWS_HOST)
    browser.subscribe(builder)
    browser.get("http://%s/" % REVIEWS_HOST)
    browser.follow_named("Ratings")
    page = browser.submit_by_attribute({"brand": "ibm"})
    first = page.tables()[0][1]
    builder.mark_data_page("reviews", dict(zip(["brand", "model", "rating"], first)))
    return builder


LISTING_SCHEMA = ("category", "brand", "model", "price")


def hardware_logical_schema(vps: VpsSchema) -> LogicalSchema:
    logical = LogicalSchema(vps)
    warehouse = Project(
        Derive(BaseRel("warehouse"), "price", lambda r: to_usd(r.get("price"))),
        LISTING_SCHEMA,
    )
    pcdirect = Project(
        Derive(
            rename(
                BaseRel("pcdirect"),
                {"type": "category", "maker": "brand", "our_price": "price"},
            ),
            "price",
            lambda r: to_usd(r.get("price")),
        ),
        LISTING_SCHEMA,
    )
    logical.define("stock", Union(warehouse, pcdirect))
    logical.define(
        "ratings",
        Derive(BaseRel("reviews"), "rating", lambda r: to_percent(r.get("rating"))),
    )
    return logical


def hardware_hierarchy() -> Concept:
    root = Concept("HardwareUR")
    root.add(
        Concept("Product").add("category", "brand", "model"),
        Concept("Offer").add("price"),
        Concept("Opinion").add("rating"),
    )
    root.validate()
    return root


class HardwareWebBase:
    """The computer-equipment webbase."""

    def __init__(self, seed: int = 1998, listings_per_host: int = 50) -> None:
        self.world = build_hardware_world(seed=seed, listings_per_host=listings_per_host)
        self.builders = {
            WAREHOUSE_HOST: _map_vendor(
                self.world,
                WAREHOUSE_HOST,
                "Shop Online",
                ["category", "brand", "model", "price"],
                "warehouse",
                "laptop",
            ),
            PCDIRECT_HOST: _map_vendor(
                self.world,
                PCDIRECT_HOST,
                "Direct Sales",
                ["type", "maker", "model", "our_price"],
                "pcdirect",
                "laptop",
            ),
            REVIEWS_HOST: _map_reviews(self.world),
        }
        self.executor = NavigationExecutor(self.world.server)
        self.vps = VpsSchema(self.executor)
        for builder in self.builders.values():
            self.vps.add_compiled_site(compile_map(builder.map))
        self.logical = hardware_logical_schema(self.vps)
        self.ur = StructuredUR(
            logical=self.logical,
            hierarchy=hardware_hierarchy(),
            rules=allows("stock", "ratings"),
            relations=["stock", "ratings"],
        )

    def query(self, text: str):
        return self.ur.answer(text)

    def plan(self, text: str):
        return self.ur.plan(text)
