"""Additional application domains built on the webbase framework.

The paper expects webbases "designed for application domains (such as
cars, jobs, houses) by the experts in those domains"; this package holds
the non-car domains, each assembled purely from the library's public
machinery.
"""

from repro.domains.hardware import HardwareWebBase, build_hardware_world
from repro.domains.jobs import JobsWebBase, build_jobs_world

__all__ = ["HardwareWebBase", "JobsWebBase", "build_hardware_world", "build_jobs_world"]
