"""repro — a reproduction of "A Layered Architecture for Querying Dynamic
Web Content" (Davulcu, Freire, Kifer, Ramakrishnan; SIGMOD 1999).

A *webbase*: a database system over Web content reachable only through
HTML forms, built as three layers over a (here: simulated) raw Web —

* the **virtual physical schema**: relations populated by navigation
  expressions in a Transaction F-logic calculus, derived automatically
  from navigation maps that a designer builds *by example* while browsing;
* the **logical schema**: site-independent relational views with binding
  propagation;
* the **external schema**: a structured universal relation with concept
  hierarchies and compatibility rules, queried as ``SELECT ... WHERE ...``.

Quickstart::

    from repro import WebBase
    webbase = WebBase.create()
    print(webbase.query(
        "SELECT make, model, year, price, contact "
        "WHERE make = 'jaguar' AND year >= 1993"
    ).pretty())
"""

from repro import errors
from repro.core.execution import (
    AccessBatch,
    AccessCancelled,
    AccessHandle,
    DeadlineExceeded,
    ExecutionContext,
    FanoutError,
    FetchFailedError,
    RetryPolicy,
    WebBaseConfig,
)
from repro.core.resilience import ResilienceManager, ResiliencePolicy
from repro.core.webbase import WebBase
from repro.errors import WebBaseError
from repro.service import ServiceClient, ServiceConfig, WebBaseService
from repro.sites.world import World, build_world
from repro.store.faults import StorageCrash, StorageFault
from repro.store.tiered import TieredStore
from repro.ur.builder import QueryBuilder
from repro.vps.cache import CachePolicy
from repro.web.server import FaultPlan

__version__ = "0.1.0"

__all__ = [
    "AccessBatch",
    "AccessCancelled",
    "AccessHandle",
    "CachePolicy",
    "DeadlineExceeded",
    "ExecutionContext",
    "FanoutError",
    "FaultPlan",
    "FetchFailedError",
    "QueryBuilder",
    "ResilienceManager",
    "ResiliencePolicy",
    "RetryPolicy",
    "ServiceClient",
    "ServiceConfig",
    "StorageCrash",
    "StorageFault",
    "TieredStore",
    "WebBase",
    "WebBaseConfig",
    "WebBaseError",
    "WebBaseService",
    "World",
    "build_world",
    "errors",
    "__version__",
]
