"""Datalog view definitions for the logical layer.

Section 5: the logical-to-VPS mapping "can be done using conventional
techniques (e.g., relational algebra, or Datalog rules)".  The hand-built
algebra views live in :mod:`repro.logical.mapping`; this module provides
the Datalog alternative: conjunctive rules over VPS relations, compiled
into the same binding-aware algebra.

Syntax (classic positional Datalog)::

    cheap_fords(Make, Model, Price) :-
        newsday(Contact, Make, Model, Price, Url, Year), Make = 'ford'.
    cheap_fords(Make, Model, Price) :-
        nytimes(Price, Contact, Features, Make, Model, Year), Make = 'ford'.

* body atoms are VPS (or previously defined Datalog) relations; argument
  *positions* follow the relation's schema order;
* shared variables join; constants select; ``Var = const`` and
  ``Var < Var2`` comparisons select too;
* several rules with the same head union;
* the produced view's attributes are the head's variable names,
  lowercased.

Compilation per rule: each atom becomes ``Rename(Base(r), attr->var)``
(with equality selections for constant arguments), atoms natural-join on
shared variables, comparisons become a selection, and the head projects.
Binding propagation then applies to the result exactly as to hand-built
views — Datalog views are first-class logical relations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.logical.schema import LogicalSchema
from repro.relational.algebra import (
    Base,
    Catalog,
    Expr,
    Join,
    Project,
    Rename,
    Select,
    Union,
)
from repro.relational.conditions import (
    And,
    Attr,
    Comparison,
    Condition,
    Const,
    conj,
)


class DatalogError(Exception):
    """Ill-formed Datalog program or rule."""


@dataclass(frozen=True)
class DatalogAtom:
    """One body atom: relation name + positional argument terms.

    Arguments are variable names (capitalized strings) or constants.
    """

    relation: str
    args: tuple[Any, ...]


@dataclass(frozen=True)
class DatalogComparison:
    """A body comparison ``left op right`` over variables/constants."""

    left: Any
    op: str
    right: Any


@dataclass(frozen=True)
class DatalogRule:
    head: str
    head_vars: tuple[str, ...]
    atoms: tuple[DatalogAtom, ...]
    comparisons: tuple[DatalogComparison, ...] = ()


def _is_var(term: Any) -> bool:
    return isinstance(term, str) and term[:1].isupper()


# -- parsing -------------------------------------------------------------------------


def _tokenize(text: str) -> list[str]:
    tokens: list[str] = []
    i = 0
    n = len(text)
    symbols = (":-", "<=", ">=", "!=", "(", ")", ",", ".", "=", "<", ">")
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "%":
            while i < n and text[i] != "\n":
                i += 1
            continue
        if ch == "'":
            j = text.find("'", i + 1)
            if j == -1:
                raise DatalogError("unterminated string literal")
            tokens.append(text[i : j + 1])
            i = j + 1
            continue
        matched = False
        for sym in symbols:
            if text.startswith(sym, i):
                tokens.append(sym)
                i += len(sym)
                matched = True
                break
        if matched:
            continue
        j = i
        while j < n and (text[j].isalnum() or text[j] == "_"):
            j += 1
        if j == i:
            raise DatalogError("unexpected character %r" % ch)
        tokens.append(text[i:j])
        i = j
    return tokens


class _Parser:
    def __init__(self, text: str) -> None:
        self.tokens = _tokenize(text)
        self.pos = 0

    def peek(self) -> str | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> str:
        if self.pos >= len(self.tokens):
            raise DatalogError("unexpected end of program")
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def expect(self, token: str) -> None:
        got = self.next()
        if got != token:
            raise DatalogError("expected %r, got %r" % (token, got))

    def parse_term(self) -> Any:
        token = self.next()
        if token.startswith("'"):
            return token[1:-1]
        if token[:1].isdigit() or (token[:1] == "-" and token[1:2].isdigit()):
            return float(token) if "." in token else int(token)
        if not (token[:1].isalpha() or token[:1] == "_"):
            raise DatalogError("term expected, got %r" % token)
        return token  # variable (capitalized) or symbolic constant

    def parse_atom_or_comparison(self) -> DatalogAtom | DatalogComparison:
        first = self.parse_term()
        nxt = self.peek()
        if nxt == "(":
            if _is_var(first):
                raise DatalogError("relation name cannot be a variable: %r" % first)
            self.next()
            args = [self.parse_term()]
            while self.peek() == ",":
                self.next()
                args.append(self.parse_term())
            self.expect(")")
            return DatalogAtom(first, tuple(args))
        if nxt in ("=", "<", "<=", ">", ">=", "!="):
            op = self.next()
            right = self.parse_term()
            return DatalogComparison(first, op, right)
        raise DatalogError("atom or comparison expected near %r" % nxt)

    def parse_rule(self) -> DatalogRule:
        head = self.parse_atom_or_comparison()
        if not isinstance(head, DatalogAtom):
            raise DatalogError("rule head must be an atom")
        if not all(_is_var(a) for a in head.args):
            raise DatalogError("head arguments must be variables: %r" % (head,))
        atoms: list[DatalogAtom] = []
        comparisons: list[DatalogComparison] = []
        if self.peek() == ":-":
            self.next()
            while True:
                literal = self.parse_atom_or_comparison()
                if isinstance(literal, DatalogAtom):
                    atoms.append(literal)
                else:
                    comparisons.append(literal)
                if self.peek() == ",":
                    self.next()
                    continue
                break
        self.expect(".")
        if not atoms:
            raise DatalogError("rule for %s has no body atoms" % head.relation)
        return DatalogRule(head.relation, head.args, tuple(atoms), tuple(comparisons))

    def parse_program(self) -> list[DatalogRule]:
        rules = []
        while self.peek() is not None:
            rules.append(self.parse_rule())
        return rules


def parse_datalog(text: str) -> list[DatalogRule]:
    """Parse a Datalog program (a sequence of rules)."""
    return _Parser(text).parse_program()


# -- compilation ----------------------------------------------------------------------


def _operand(term: Any):
    if _is_var(term):
        return Attr(term.lower())
    return Const(term)


def _compile_atom(atom: DatalogAtom, catalog: Catalog) -> tuple[Expr, list[Condition]]:
    schema = catalog.base_schema(atom.relation)
    if len(atom.args) != len(schema):
        raise DatalogError(
            "atom %s/%d does not match schema %r"
            % (atom.relation, len(atom.args), tuple(schema))
        )
    expr: Expr = Base(atom.relation)
    selections: list[Condition] = []
    mapping: dict[str, str] = {}
    seen_vars: dict[str, str] = {}
    post_join: list[Condition] = []
    for attr, term in zip(schema.attrs, atom.args):
        if _is_var(term):
            var_attr = term.lower()
            if term in seen_vars:
                # Repeated variable within one atom: equality selection on
                # the two columns before renaming collapses them.
                selections.append(Comparison(Attr(attr), "=", Attr(seen_vars[term])))
            else:
                seen_vars[term] = attr
                mapping[attr] = var_attr
        else:
            selections.append(Comparison(Attr(attr), "=", Const(term)))
    if selections:
        expr = Select(expr, conj(*selections))
    # Project away columns bound to constants or duplicate variables, then
    # rename the surviving columns to the variable names.
    kept = tuple(seen_vars.values())
    expr = Project(expr, kept)
    expr = Rename(expr, tuple(sorted(mapping.items())))
    return expr, post_join


def compile_rule(rule: DatalogRule, catalog: Catalog) -> Expr:
    """Compile one conjunctive rule into an algebra expression."""
    expr: Expr | None = None
    for atom in rule.atoms:
        atom_expr, _ = _compile_atom(atom, catalog)
        expr = atom_expr if expr is None else Join(expr, atom_expr)
    assert expr is not None
    if rule.comparisons:
        parts = [
            Comparison(_operand(c.left), c.op, _operand(c.right))
            for c in rule.comparisons
        ]
        expr = Select(expr, conj(*parts))
    head_attrs = tuple(v.lower() for v in rule.head_vars)
    return Project(expr, head_attrs)


def compile_program(rules: list[DatalogRule], catalog: Catalog) -> dict[str, Expr]:
    """Compile a program: same-head rules union; later views may reference
    earlier ones is *not* supported (views are over the catalog only)."""
    by_head: dict[str, list[DatalogRule]] = {}
    for rule in rules:
        by_head.setdefault(rule.head, []).append(rule)
    views: dict[str, Expr] = {}
    for head, head_rules in by_head.items():
        widths = {len(r.head_vars) for r in head_rules}
        if len(widths) != 1:
            raise DatalogError("rules for %s disagree on arity" % head)
        attr_sets = {tuple(v.lower() for v in r.head_vars) for r in head_rules}
        if len(attr_sets) != 1:
            raise DatalogError(
                "rules for %s must use the same head variable names" % head
            )
        expr: Expr | None = None
        for rule in head_rules:
            compiled = compile_rule(rule, catalog)
            expr = compiled if expr is None else Union(expr, compiled)
        views[head] = expr
    return views


def define_datalog_views(logical: LogicalSchema, program_text: str) -> list[str]:
    """Parse ``program_text`` and register every view on ``logical``.

    Returns the list of defined relation names.
    """
    rules = parse_datalog(program_text)
    views = compile_program(rules, logical.vps)
    for name, expr in views.items():
        logical.define(name, expr)
    return sorted(views)
