"""The logical layer: site-independent relations over the VPS.

Each :class:`LogicalRelation` is a relational-algebra view over VPS
relations (Table 2 of the paper): unions of renamed/projected site
relations, with representation standardization (currency, numeric types)
applied through ``Derive`` nodes.  The :class:`LogicalSchema` is itself a
:class:`~repro.relational.algebra.Catalog`, so the external schema layer
can evaluate over logical relations exactly the way the logical layer
evaluates over the VPS.
"""

from __future__ import annotations

from typing import Any

from repro.relational.algebra import (
    Catalog,
    Expr,
    binding_sets_of,
    evaluate,
    evaluate_batch,
    schema_of,
)
from repro.relational.bindings import BindingSets
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.logical.standardize import fuzzy_match


class LogicalRelation:
    """A named view over the VPS."""

    def __init__(self, name: str, definition: Expr, vps: Catalog) -> None:
        self.name = name
        self.definition = definition
        self._vps = vps
        self.schema: Schema = schema_of(definition, vps)
        self.binding_sets: BindingSets = binding_sets_of(definition, vps)

    def fetch(self, given: dict[str, Any], context: Any = None) -> Relation:
        """Evaluate the view; with an execution context, independent VPS
        fetches under the view fan out across its workers and the view gets
        its own trace span."""
        if context is None:
            return evaluate(self.definition, self._vps, given)
        with context.span("view", self.name):
            return evaluate(self.definition, self._vps, given, context)

    def fetch_batch(
        self, givens: list[dict[str, Any]], context: Any = None
    ) -> list[Relation]:
        """Evaluate the view for a whole batch of probe bindings at once.

        One ``view`` span covers the batch, carrying ``batch=K`` so the
        planner's feedback loop and EXPLAIN count K accesses for it; the
        VPS fetches underneath run through the batched engine path (one
        navigation session per worker chunk, shared prefix pages)."""
        if context is None:
            return [evaluate(self.definition, self._vps, given) for given in givens]
        with context.span("view", self.name) as span:
            span.attrs["batch"] = len(givens)
            return evaluate_batch(self.definition, self._vps, givens, context)

    def __repr__(self) -> str:
        return "LogicalRelation(%s%s)" % (self.name, tuple(self.schema))


class LogicalSchema:
    """The catalog of logical relations (site independence boundary)."""

    def __init__(self, vps: Catalog) -> None:
        self.vps = vps
        self.relations: dict[str, LogicalRelation] = {}

    def define(self, name: str, definition: Expr) -> LogicalRelation:
        if name in self.relations:
            raise ValueError("logical relation %r already defined" % name)
        relation = LogicalRelation(name, definition, self.vps)
        self.relations[name] = relation
        return relation

    def relation(self, name: str) -> LogicalRelation:
        try:
            return self.relations[name]
        except KeyError:
            raise KeyError("no logical relation %r" % name) from None

    @property
    def relation_names(self) -> list[str]:
        return sorted(self.relations)

    def all_attributes(self) -> list[str]:
        """Every attribute appearing in some logical relation (the universe
        from which the universal relation is formed)."""
        attrs: set[str] = set()
        for relation in self.relations.values():
            attrs |= set(relation.schema.attrs)
        return sorted(attrs)

    def resolve_attribute(self, name: str) -> str:
        """Resolve a user-typed attribute name, falling back to fuzzy
        matching against the known attribute universe."""
        universe = self.all_attributes()
        if name in universe:
            return name
        matched = fuzzy_match(name, universe)
        if matched is None:
            raise KeyError("unknown attribute %r" % name)
        return matched

    def relations_with_attribute(self, attr: str) -> list[str]:
        return sorted(
            name
            for name, relation in self.relations.items()
            if attr in relation.schema
        )

    # -- the Catalog protocol (consumed by the external schema layer) -----------

    def base_schema(self, name: str) -> Schema:
        return self.relation(name).schema

    def base_binding_sets(self, name: str) -> BindingSets:
        return self.relation(name).binding_sets

    def fetch(self, name: str, given: dict[str, Any], context: Any = None) -> Relation:
        return self.relation(name).fetch(given, context=context)

    def fetch_batch(
        self, name: str, givens: list[dict[str, Any]], context: Any = None
    ) -> list[Relation]:
        return self.relation(name).fetch_batch(givens, context=context)
