"""The used-car webbase's logical schema: the definitions of Table 2.

Five site-independent relations over the VPS::

    classifieds(make, model, year, price, contact, features)
        = π(newsday ⋈ newsday_car_features) ∪ π(ρ(nytimes))
    dealers(make, model, year, price, contact, features, zip)
        = π(ρ(carpoint)) ∪ π(ρ(autoweb))
    blue_price(make, model, year, condition, bb_price) = ρ(kellys)
    reliability(make, model, year, safety)             = caranddriver
    interest(zip, duration, rate)                      = ρ(carfinance)

plus one extension relation, ``all_ads``, unioning the classified/dealer
listings of *every* mapped ad site (used by the parallelization ablation).

Each branch renames the site vocabulary into the logical one and applies
the standardizing casts (prices to integer USD — converting WWWheels'
Canadian dollars — years/durations to int, rates to float).
"""

from __future__ import annotations

from repro.logical.schema import LogicalSchema
from repro.logical.standardize import to_int, to_percent, to_usd
from repro.relational.algebra import (
    Base,
    Catalog,
    Derive,
    Expr,
    Join,
    Project,
    Rename,
    Union,
    rename,
    union_all,
)

AD_SCHEMA = ("make", "model", "year", "price", "contact")


def car_catalog_stats(logical: LogicalSchema, ads_per_host: int = 120):
    """Optimizer statistics for the Table-2 relations.

    Cardinalities and distinct-value counts follow from the simulated
    world's generation parameters (catalog size, year range, zip pool);
    fetch weights and probe attributes are derived from the definitions
    themselves by :meth:`~repro.relational.cost.CatalogStats.from_catalog`.
    The ``model → make`` functional dependency tells the cost model that
    fixing a make leaves only a couple of models, not the whole catalog.
    """
    from repro.relational.cost import CatalogStats
    from repro.sites.dataset import (
        CAR_CATALOG,
        CONDITIONS,
        MAKES,
        NY_ZIPCODES,
        OTHER_ZIPCODES,
        SAFETY_RATINGS,
        YEARS,
    )

    makes, models, years = len(MAKES), len(CAR_CATALOG), len(YEARS)
    zips = len(NY_ZIPCODES) + len(OTHER_ZIPCODES)
    conditions, safety = len(CONDITIONS), len(SAFETY_RATINGS)
    durations = 4  # the finance sites quote 24/36/48/60-month loans
    ads = 2 * ads_per_host  # each listing relation unions two sites
    common = {"make": makes, "model": models, "year": years}

    def listing(card: int, **extra: int) -> dict[str, int]:
        return {**common, "price": card, "contact": card, "features": card, **extra}

    cardinalities = {
        "classifieds": ads,
        "dealers": ads,
        "blue_price": models * years * conditions,
        "reliability": models * years,
        "interest": zips * durations,
        "all_ads": 9 * ads_per_host,
    }
    distinct = {
        "classifieds": listing(ads),
        "dealers": listing(ads, zip=zips),
        "blue_price": {**common, "condition": conditions,
                       "bb_price": models * years * conditions},
        "reliability": {**common, "safety": safety},
        "interest": {"zip": zips, "duration": durations, "rate": zips * durations},
        "all_ads": listing(9 * ads_per_host),
    }
    return CatalogStats.from_catalog(
        logical,
        logical.relation_names,
        cardinalities=cardinalities,
        distinct=distinct,
        fd_parents={"model": "make"},
    )


def _standardize(
    expr: Expr,
    renames: dict[str, str] | None = None,
    usd_attrs: tuple[str, ...] = (),
    int_attrs: tuple[str, ...] = (),
    percent_attrs: tuple[str, ...] = (),
) -> Expr:
    """Rename into logical vocabulary, then cast displayed values."""
    if renames:
        expr = rename(expr, renames)
    for attr in usd_attrs:
        expr = Derive(expr, attr, _usd_of(attr))
    for attr in int_attrs:
        expr = Derive(expr, attr, _int_of(attr))
    for attr in percent_attrs:
        expr = Derive(expr, attr, _percent_of(attr))
    return expr


def _usd_of(attr: str):
    return lambda row: to_usd(row.get(attr))


def _int_of(attr: str):
    return lambda row: to_int(row.get(attr))


def _percent_of(attr: str):
    return lambda row: to_percent(row.get(attr))


def _newsday_branch() -> Expr:
    joined = Join(Base("newsday"), Base("newsday_car_features"))
    converted = _standardize(joined, usd_attrs=("price",), int_attrs=("year",))
    return Project(converted, AD_SCHEMA + ("features",))


def _nytimes_branch() -> Expr:
    converted = _standardize(
        Base("nytimes"),
        renames={"manufacturer": "make", "asking_price": "price"},
        usd_attrs=("price",),
        int_attrs=("year",),
    )
    return Project(converted, AD_SCHEMA + ("features",))


def _carpoint_branch() -> Expr:
    converted = _standardize(
        Base("carpoint"),
        renames={"dealer": "contact"},
        usd_attrs=("price",),
        int_attrs=("year",),
    )
    return Project(converted, AD_SCHEMA + ("features", "zip"))


def _autoweb_branch() -> Expr:
    converted = _standardize(
        Base("autoweb"),
        renames={"seller": "contact", "options": "features", "zip_code": "zip"},
        usd_attrs=("price",),
        int_attrs=("year",),
    )
    return Project(converted, AD_SCHEMA + ("features", "zip"))


def _plain_ads(base_name: str, renames: dict[str, str] | None = None) -> Expr:
    converted = _standardize(
        Base(base_name), renames=renames, usd_attrs=("price",), int_attrs=("year",)
    )
    return Project(converted, AD_SCHEMA)


def car_logical_schema(vps: Catalog) -> LogicalSchema:
    """Assemble the full Table-2 logical schema over a VPS catalog."""
    logical = LogicalSchema(vps)

    logical.define("classifieds", Union(_newsday_branch(), _nytimes_branch()))
    logical.define("dealers", Union(_carpoint_branch(), _autoweb_branch()))
    logical.define(
        "blue_price",
        _standardize(
            Base("kellys"), usd_attrs=("bb_price",), int_attrs=("year",)
        ),
    )
    logical.define(
        "reliability", _standardize(Base("caranddriver"), int_attrs=("year",))
    )
    logical.define(
        "interest",
        _standardize(
            Base("carfinance"),
            renames={"zip_code": "zip"},
            int_attrs=("duration",),
            percent_attrs=("rate",),
        ),
    )

    # Extension: every ad site at once (exercised by the parallel ablation).
    logical.define(
        "all_ads",
        union_all(
            [
                Project(_newsday_branch(), AD_SCHEMA),
                Project(_nytimes_branch(), AD_SCHEMA),
                Project(_carpoint_branch(), AD_SCHEMA),
                Project(_autoweb_branch(), AD_SCHEMA),
                _plain_ads("nydaily"),
                _plain_ads("carreviews"),
                _plain_ads("wwwheels"),
                _plain_ads("autoconnect"),
                _plain_ads("yahoocars"),
            ]
        ),
    )
    return logical
