"""The logical layer: site independence over the virtual physical schema."""

from repro.logical.datalog import (
    DatalogError,
    DatalogRule,
    compile_program,
    compile_rule,
    define_datalog_views,
    parse_datalog,
)
from repro.logical.mapping import car_logical_schema
from repro.logical.schema import LogicalRelation, LogicalSchema
from repro.logical.standardize import (
    edit_distance,
    fuzzy_match,
    parse_money,
    to_int,
    to_percent,
    to_usd,
)

__all__ = [
    "DatalogError",
    "DatalogRule",
    "LogicalRelation",
    "LogicalSchema",
    "car_logical_schema",
    "compile_program",
    "compile_rule",
    "define_datalog_views",
    "edit_distance",
    "fuzzy_match",
    "parse_datalog",
    "parse_money",
    "to_int",
    "to_percent",
    "to_usd",
]
