"""Vocabulary and representation standardization for the logical layer.

"Data collected from different sources resides in different relations,
thus semantic and representational discrepancies are likely to exist ...
prices could be represented using different currencies and semantically
identical attributes can have different names.  These differences are
smoothed out at the logical layer."

This module supplies the smoothing: money parsing (with currency
conversion), numeric casts, percentage parsing — all tolerant of the raw
display strings VPS relations hold — and the fuzzy attribute-name matcher
used when no explicit mapping was provided.
"""

from __future__ import annotations

from typing import Any

# 1999-vintage conversion rates into USD.
USD_PER_CURRENCY: dict[str, float] = {
    "USD": 1.0,
    "CAD": 1.0 / 1.48,
}


def parse_money(text: Any) -> tuple[float, str] | None:
    """Parse a displayed price into (amount, currency).

    Handles ``$12,500``, ``12500``, ``CAD 18,500``, ``USD 9,000``.
    Returns None when the text is not a price.
    """
    if text is None:
        return None
    if isinstance(text, (int, float)):
        return (float(text), "USD")
    raw = str(text).strip()
    currency = "USD"
    for code in USD_PER_CURRENCY:
        if raw.upper().startswith(code):
            currency = code
            raw = raw[len(code) :].strip()
            break
    raw = raw.lstrip("$").replace(",", "").strip()
    try:
        return (float(raw), currency)
    except ValueError:
        return None


def to_usd(text: Any) -> int | None:
    """A displayed price as an integer USD amount, or None."""
    parsed = parse_money(text)
    if parsed is None:
        return None
    amount, currency = parsed
    return int(round(amount * USD_PER_CURRENCY[currency]))


def to_int(text: Any) -> int | None:
    if text is None:
        return None
    if isinstance(text, int):
        return text
    try:
        return int(str(text).strip())
    except ValueError:
        return None


def to_percent(text: Any) -> float | None:
    """``'7.25%'`` or ``'7.25'`` -> 7.25."""
    if text is None:
        return None
    if isinstance(text, (int, float)):
        return float(text)
    raw = str(text).strip().rstrip("%")
    try:
        return float(raw)
    except ValueError:
        return None


def edit_distance(a: str, b: str) -> int:
    """Levenshtein distance (iterative two-row implementation)."""
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    previous = list(range(len(b) + 1))
    for i, ca in enumerate(a, start=1):
        current = [i]
        for j, cb in enumerate(b, start=1):
            current.append(
                min(
                    previous[j] + 1,  # deletion
                    current[j - 1] + 1,  # insertion
                    previous[j - 1] + (ca != cb),  # substitution
                )
            )
        previous = current
    return previous[-1]


def fuzzy_match(name: str, candidates: list[str], max_relative_distance: float = 0.4) -> str | None:
    """The closest candidate attribute name, or None if nothing is close.

    The paper: "If a mapping is not provided for a certain attribute name,
    we employ fuzzy matching techniques, which evidently are not full-proof."
    Substring containment counts as very close (``zip`` vs ``zip_code``).
    """
    name = name.lower()
    best: tuple[float, str] | None = None
    for candidate in candidates:
        lowered = candidate.lower()
        if name == lowered:
            return candidate
        if name in lowered or lowered in name:
            distance = 0.1
        else:
            distance = edit_distance(name, lowered) / max(len(name), len(lowered))
        if distance <= max_relative_distance and (best is None or distance < best[0]):
            best = (distance, candidate)
    return best[1] if best else None
