"""Speculative prefetch for enumerated form submissions.

When a select/radio widget's mandatory attribute arrives unbound, the
navigation executor enumerates the widget's finite domain — one submission
per value, as backtracking alternatives.  Those submissions are *certain*
to be issued (the F-logic solve consumes every alternative), so issuing
them ahead of demand is pure win: the :class:`SpeculativePrefetcher` runs
them on short-lived worker threads, each with its own browser over the
shared server, and parks the results in the query's
:class:`~repro.web.browser.PrefixPageCache`.

Correctness is delegated entirely to the page cache's single-flight
protocol: :meth:`~repro.web.browser.PrefixPageCache.try_lead` skips
requests already cached or claimed, and the demand path waits on a
prefetch flight like on any other leader — so no page is ever fetched
twice, and a failed speculative fetch simply leaves the demand path to
retry under the engine's normal retry policy.

Simulated network seconds spent prefetching are reported through the
``charge`` callback, so the execution context's lane-based timing model
accounts for the overlapped work.
"""

from __future__ import annotations

import threading

from collections import deque
from typing import Any, Callable, Iterable

from repro.web.browser import Browser, NavigationError, PrefixPageCache, request_key
from repro.web.clock import SimClock
from repro.web.http import Request
from repro.web.server import WebServer


class SpeculativePrefetcher:
    """Issues enumerated submissions ahead of demand, into a page cache."""

    def __init__(
        self,
        server: WebServer,
        cache: PrefixPageCache,
        metrics: Any = None,
        max_workers: int = 4,
        charge: Callable[[float], None] | None = None,
        admit: Callable[[str], bool] | None = None,
    ) -> None:
        self.server = server
        self.cache = cache
        self.metrics = metrics
        self.max_workers = max(1, int(max_workers))
        self._charge = charge
        # Per-host admission gate, consulted as each queued request is
        # about to issue (not at enqueue time — the breaker may trip while
        # a request sits in the queue).  The execution context wires this
        # to the resilience layer: speculation against a host whose
        # circuit breaker is open is skipped, never queued behind it.
        self._admit = admit
        self._queue: deque[Request] = deque()
        self._threads: list[threading.Thread] = []
        self._lock = threading.Lock()
        self._active = 0

    def _count(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc(amount)

    def prefetch(self, requests: Iterable[Request]) -> int:
        """Queue ``requests`` and make sure workers are draining the queue.
        Returns how many were accepted (deduplicated against the queue)."""
        accepted = 0
        with self._lock:
            queued = {request_key(r) for r in self._queue}
            for request in requests:
                key = request_key(request)
                if key in queued:
                    continue
                queued.add(key)
                self._queue.append(request)
                accepted += 1
            spawn = min(
                self.max_workers - self._active, len(self._queue)
            )
            new_threads = []
            for _ in range(max(0, spawn)):
                self._active += 1
                thread = threading.Thread(target=self._worker, daemon=True)
                new_threads.append(thread)
                self._threads.append(thread)
        if accepted:
            self._count("nav.prefetch_issued", accepted)
        for thread in new_threads:
            thread.start()
        return accepted

    def _worker(self) -> None:
        clock = SimClock()
        browser = Browser(self.server, clock)
        pages = 0
        try:
            while True:
                with self._lock:
                    if not self._queue:
                        return
                    request = self._queue.popleft()
                host = request.url.host
                if self._admit is not None and not self._admit(host):
                    self._count("nav.prefetch_skipped")
                    continue
                key = request_key(request)
                claim = self.cache.try_lead(host, key)
                if claim is None:
                    continue  # cached, or the demand path beat us to it
                flight, revision = claim
                try:
                    page = browser.request(request)
                except NavigationError as exc:
                    # Never share a failure: the demand path retries it
                    # under the engine's retry policy.
                    self.cache.abandon(host, key, flight, error=exc)
                    continue
                except BaseException as exc:  # pragma: no cover - defensive
                    self.cache.abandon(host, key, flight, error=exc)
                    raise
                pages += 1
                self.cache.fulfill(host, key, flight, page, revision)
        finally:
            with self._lock:
                self._active -= 1
            if pages:
                self._count("nav.prefetch_pages", pages)
            if self._charge is not None and clock.network_seconds:
                self._charge(clock.network_seconds)

    def drain(self) -> None:
        """Wait for every outstanding speculative fetch (tests and
        benchmarks use this for deterministic accounting)."""
        while True:
            with self._lock:
                threads = [t for t in self._threads if t.is_alive()]
                self._threads = threads
            if not threads:
                return
            for thread in threads:
                thread.join()
