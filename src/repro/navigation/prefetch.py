"""Speculative prefetch for enumerated form submissions.

When a select/radio widget's mandatory attribute arrives unbound, the
navigation executor enumerates the widget's finite domain — one submission
per value, as backtracking alternatives.  Those submissions are *certain*
to be issued (the F-logic solve consumes every alternative), so issuing
them ahead of demand is pure win: the :class:`SpeculativePrefetcher` runs
them on short-lived worker threads, each with its own browser over the
shared server, and parks the results in the query's
:class:`~repro.web.browser.PrefixPageCache`.

Correctness is delegated entirely to the page cache's single-flight
protocol: :meth:`~repro.web.browser.PrefixPageCache.try_lead` skips
requests already cached or claimed, and the demand path waits on a
prefetch flight like on any other leader — so no page is ever fetched
twice, and a failed speculative fetch simply leaves the demand path to
retry under the engine's normal retry policy.

Simulated network seconds spent prefetching are reported through the
``charge`` callback, so the execution context's lane-based timing model
accounts for the overlapped work.

"Certain to be consumed" stops being true the moment speculation gets
more ambitious (a binding may be cancelled mid-enumeration, a breaker
may shed the demand path after the prefetch issued), so speculation runs
under an explicit :class:`SpeculationBudget`: a per-host allowance of
*potentially wasted* pages, adapting to how often the host's speculative
pages are actually consumed.
"""

from __future__ import annotations

import threading

from collections import deque
from typing import Any, Callable, Iterable

from repro.web.browser import Browser, NavigationError, PrefixPageCache, request_key
from repro.web.clock import SimClock
from repro.web.http import Request
from repro.web.server import WebServer


class SpeculationBudget:
    """An adaptive per-host allowance of *potentially wasted* pages.

    Speculation is only free when it is consumed; against a host whose
    enumerations the query never demands, every prefetched page is pure
    waste.  The budget bounds that waste explicitly: a host may have at
    most ``allowance`` speculative pages *outstanding* — issued but not
    yet consumed by a demand hit.  Consumption releases the reservation
    (and the evidence that this host's speculation pays off *grows* the
    allowance, up to ``max_allowance``); an abandoned or stale page is
    reported wasted, which *shrinks* the allowance toward
    ``min_allowance``.  Thread-safe; counts
    ``nav.speculation_denied`` / ``nav.speculation_wasted``.
    """

    def __init__(
        self,
        wasted_pages: int = 16,
        min_allowance: int = 2,
        max_allowance: int = 64,
        metrics: Any = None,
    ) -> None:
        if wasted_pages < 1:
            raise ValueError("wasted_pages must be >= 1; got %r" % wasted_pages)
        self.initial = int(wasted_pages)
        self.min_allowance = max(1, int(min_allowance))
        self.max_allowance = max(self.initial, int(max_allowance))
        self.metrics = metrics
        self._lock = threading.Lock()
        self._allowance: dict[str, int] = {}
        self._outstanding: dict[str, int] = {}
        self.consumed_total = 0
        self.wasted_total = 0

    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc()

    def allowance(self, host: str) -> int:
        with self._lock:
            return self._allowance.get(host, self.initial)

    def outstanding(self, host: str) -> int:
        with self._lock:
            return self._outstanding.get(host, 0)

    def try_issue(self, host: str) -> bool:
        """Reserve one speculative page against ``host``'s allowance;
        ``False`` means the host is at its wasted-pages cap right now."""
        with self._lock:
            if self._outstanding.get(host, 0) >= self._allowance.get(
                host, self.initial
            ):
                denied = True
            else:
                self._outstanding[host] = self._outstanding.get(host, 0) + 1
                denied = False
        if denied:
            self._count("nav.speculation_denied")
        return not denied

    def consumed(self, host: str) -> None:
        """A speculative page was demanded: release its reservation and
        let the host speculate a little deeper."""
        with self._lock:
            self._outstanding[host] = max(0, self._outstanding.get(host, 0) - 1)
            self._allowance[host] = min(
                self.max_allowance, self._allowance.get(host, self.initial) + 1
            )
            self.consumed_total += 1

    def release(self, host: str) -> None:
        """Hand back an unused reservation (nothing was fetched): neutral —
        no allowance adjustment either way."""
        with self._lock:
            self._outstanding[host] = max(0, self._outstanding.get(host, 0) - 1)

    def wasted(self, host: str) -> None:
        """A speculative page never paid off (failed, went stale, or was
        abandoned): release the reservation but shrink the allowance."""
        with self._lock:
            self._outstanding[host] = max(0, self._outstanding.get(host, 0) - 1)
            self._allowance[host] = max(
                self.min_allowance, self._allowance.get(host, self.initial) - 1
            )
            self.wasted_total += 1
        self._count("nav.speculation_wasted")


class SpeculativePrefetcher:
    """Issues enumerated submissions ahead of demand, into a page cache."""

    def __init__(
        self,
        server: WebServer,
        cache: PrefixPageCache,
        metrics: Any = None,
        max_workers: int = 4,
        charge: Callable[[float], None] | None = None,
        admit: Callable[[str], bool] | None = None,
        budget: SpeculationBudget | None = None,
    ) -> None:
        self.server = server
        self.cache = cache
        self.metrics = metrics
        self.max_workers = max(1, int(max_workers))
        self._charge = charge
        # The wasted-pages budget: each speculative fetch reserves one
        # page against its host's allowance, settled when the page is
        # consumed by demand (via the cache's speculative marking) or
        # reported wasted here on failure.
        self.budget = budget
        if budget is not None:
            cache.budget = budget
        # Per-host admission gate, consulted as each queued request is
        # about to issue (not at enqueue time — the breaker may trip while
        # a request sits in the queue).  The execution context wires this
        # to the resilience layer: speculation against a host whose
        # circuit breaker is open is skipped, never queued behind it.
        self._admit = admit
        self._queue: deque[Request] = deque()
        self._threads: list[threading.Thread] = []
        self._lock = threading.Lock()
        self._active = 0

    def _count(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc(amount)

    def prefetch(self, requests: Iterable[Request]) -> int:
        """Queue ``requests`` and make sure workers are draining the queue.
        Returns how many were accepted (deduplicated against the queue)."""
        accepted = 0
        with self._lock:
            queued = {request_key(r) for r in self._queue}
            for request in requests:
                key = request_key(request)
                if key in queued:
                    continue
                queued.add(key)
                self._queue.append(request)
                accepted += 1
            spawn = min(
                self.max_workers - self._active, len(self._queue)
            )
            new_threads = []
            for _ in range(max(0, spawn)):
                self._active += 1
                thread = threading.Thread(target=self._worker, daemon=True)
                new_threads.append(thread)
                self._threads.append(thread)
        if accepted:
            self._count("nav.prefetch_issued", accepted)
        for thread in new_threads:
            thread.start()
        return accepted

    def _worker(self) -> None:
        clock = SimClock()
        browser = Browser(self.server, clock)
        pages = 0
        try:
            while True:
                with self._lock:
                    if not self._queue:
                        return
                    request = self._queue.popleft()
                host = request.url.host
                if self._admit is not None and not self._admit(host):
                    self._count("nav.prefetch_skipped")
                    continue
                if self.budget is not None and not self.budget.try_issue(host):
                    self._count("nav.prefetch_skipped")
                    continue
                key = request_key(request)
                claim = self.cache.try_lead(host, key)
                if claim is None:
                    if self.budget is not None:
                        # Reserved but nothing to fetch: hand it straight
                        # back without the waste penalty.
                        self.budget.release(host)
                    continue  # cached, or the demand path beat us to it
                flight, revision = claim
                try:
                    page = browser.request(request)
                except NavigationError as exc:
                    # Never share a failure: the demand path retries it
                    # under the engine's retry policy.
                    self.cache.abandon(host, key, flight, error=exc)
                    if self.budget is not None:
                        self.budget.wasted(host)
                    continue
                except BaseException as exc:  # pragma: no cover - defensive
                    self.cache.abandon(host, key, flight, error=exc)
                    raise
                pages += 1
                self.cache.fulfill(
                    host, key, flight, page, revision, speculative=True
                )
        finally:
            with self._lock:
                self._active -= 1
            if pages:
                self._count("nav.prefetch_pages", pages)
            if self._charge is not None and clock.network_seconds:
                self._charge(clock.network_seconds)

    def drain(self) -> None:
        """Wait for every outstanding speculative fetch (tests and
        benchmarks use this for deterministic accounting)."""
        while True:
            with self._lock:
                threads = [t for t in self._threads if t.is_alive()]
                self._threads = threads
            if not threads:
                return
            for thread in threads:
                thread.join()
