"""Rendering navigation maps for humans.

The paper's map builder shows the designer "a graphical representation of
the navigation map as it is being constructed, highlighting in the map
the node corresponding to the page displayed in the browser".  This
module provides the two renderings our harness needs: Graphviz DOT (for
documentation) and a plain-text tree (for terminals), with optional
highlighting of a current node.
"""

from __future__ import annotations

from repro.navigation.model import FormEdge, LinkEdge
from repro.navigation.navmap import NavigationMap


def _dot_escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def to_dot(navmap: NavigationMap, highlight: str | None = None) -> str:
    """Graphviz DOT for the map.  Data nodes are doubly circled; the
    optional ``highlight`` node id is filled (the designer's current page)."""
    lines = [
        "digraph navmap {",
        '  rankdir=LR; node [shape=box, fontname="Helvetica"];',
        '  label="navigation map of %s";' % _dot_escape(navmap.host),
    ]
    for node in navmap.nodes.values():
        attrs = ['label="%s\\n%s"' % (node.node_id, _dot_escape(node.signature.path))]
        if node.is_data:
            attrs.append("peripheries=2")
            attrs[0] = 'label="%s\\n%s\\n[%s]"' % (
                node.node_id,
                _dot_escape(node.signature.path),
                _dot_escape(node.relation_name or "data"),
            )
        if node.node_id == highlight:
            attrs.append('style=filled fillcolor="lightyellow"')
        lines.append("  %s [%s];" % (node.node_id, ", ".join(attrs)))
    for edge in navmap.edges:
        if isinstance(edge, LinkEdge):
            style = ' style=dashed color="gray40"' if edge.row_link else ""
            lines.append(
                '  %s -> %s [label="link(%s)"%s];'
                % (edge.source, edge.target, _dot_escape(edge.link_name), style)
            )
        elif isinstance(edge, FormEdge):
            lines.append(
                '  %s -> %s [label="form(%s)" color="blue"];'
                % (
                    edge.source,
                    edge.target,
                    _dot_escape(",".join(sorted(edge.form_key.widgets))),
                )
            )
    lines.append("}")
    return "\n".join(lines)


def to_text(navmap: NavigationMap, highlight: str | None = None) -> str:
    """An indented text tree from the root (cycles shown once)."""
    if navmap.root_id is None:
        return "(empty map)"
    lines: list[str] = []
    seen: set[str] = set()

    def visit(node_id: str, depth: int, via: str) -> None:
        node = navmap.node(node_id)
        marker = " *" if node_id == highlight else ""
        data = " [data:%s]" % node.relation_name if node.is_data else ""
        loop = " (revisited)" if node_id in seen else ""
        lines.append(
            "%s%s%s %s%s%s%s"
            % ("  " * depth, via, node.node_id, node.signature.path, data, marker, loop)
        )
        if node_id in seen:
            return
        seen.add(node_id)
        for edge in navmap.out_edges(node_id):
            visit(edge.target, depth + 1, "--%s--> " % edge.label)

    visit(navmap.root_id, 0, "")
    return "\n".join(lines)
