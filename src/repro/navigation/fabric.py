"""The async navigation fabric: thousands of in-flight pages, one loop.

The thread-pool execution engine (PR 1) caps concurrent page navigations
at the worker-bundle count — each in-flight fetch owns a thread, a
browser, and a simulated connection lane.  The fabric lifts that ceiling:
an :class:`AsyncNavigationExecutor` runs compiled navigation programs as
coroutines on a single virtual-time event loop
(:class:`~repro.core.simclock.SimLoop`), so a page fetch *awaits* its
simulated latency instead of charging it to a per-worker clock, and the
latencies of every concurrent binding overlap.  That is what makes "keep
thousands of cheap speculative accesses alive so irrelevant ones can be
revoked late" affordable.

Contract with the threaded path (tested property-style in
``tests/test_async_fabric.py``): **byte-identical rows**.  The
:class:`~repro.flogic.engine.AsyncEngine` explores alternatives in
exactly the sync interpreter's order, the same
:class:`~repro.web.browser.PrefixPageCache` provides query-scoped page
reuse, and the same retry/timeout/cancellation semantics are applied by
:meth:`~repro.core.execution.ExecutionContext.run_fetch` — only the
*concurrency mechanism* differs.

Per-binding state (browser, request memo, page budget) lives in a
:class:`BindingRun`, carried by a :data:`contextvars.ContextVar` so that
interleaved solves on one loop never see each other's counters.  Live
navigations are gated by a per-host connection semaphore
(:data:`CONNECTIONS_PER_HOST`) — the fabric multiplexes *waiting*, it
does not pretend a host accepts unbounded parallel connections.
Speculative prefetch of enumerated form submissions runs as loop tasks
under the same :class:`~repro.navigation.prefetch.SpeculationBudget`
wasted-pages allowance as the threaded prefetcher.
"""

from __future__ import annotations

import asyncio
import contextvars
from typing import Any, Callable, Iterable

from repro.flogic.engine import AsyncEngine
from repro.flogic.formulas import Pred, Program
from repro.flogic.terms import Var, resolve, unify
from repro.navigation.executor import (
    ExecutorError,
    NavigationExecutor,
    PageBudgetExceeded,
)
from repro.web.browser import (
    AsyncBrowser,
    NavigationError,
    TransientNetworkError,
    request_key,
)
from repro.web.http import Request, Url, parse_url
from repro.web.page import WebPage
from repro.web.server import WebServer

#: How many live navigations the fabric keeps in flight per host.  The
#: event loop can *hold* thousands of pending bindings, but a real site
#: serves a bounded number of connections — modelling that keeps the
#: fabric's simulated-elapsed wins honest.
CONNECTIONS_PER_HOST = 16

#: The coroutine executing a solve reads its run state from here; asyncio
#: tasks each get their own context, so interleaved bindings are isolated.
_RUN: contextvars.ContextVar["BindingRun"] = contextvars.ContextVar("fabric_run")


class BindingRun:
    """One binding's private navigation state for one fetch attempt.

    The sync engine isolates concurrent fetches by giving each worker
    thread its own :class:`~repro.core.execution.ExecutorBundle`; on the
    fabric every binding shares one executor, so the mutable parts — the
    browser (latency accounting), the per-fetch request memo, the live
    page counter, the cancellation checkpoint — move into this object,
    one per in-flight attempt.
    """

    def __init__(
        self,
        server: WebServer,
        max_pages: int,
        cancel_check: Callable[[], None] | None = None,
    ) -> None:
        self.browser = AsyncBrowser(server)
        self.max_pages = max_pages
        self.cancel_check = cancel_check
        self.memo: dict[tuple, WebPage] = {}
        self.pages = 0

    @property
    def network_seconds(self) -> float:
        """Simulated seconds this run awaited on the network."""
        return self.browser.network_seconds

    def check_page_budget(self) -> None:
        """The per-fetch live-page rail, mirroring the sync executor's
        (memo and prefix-cache hits never count against it)."""
        if self.pages >= self.max_pages:
            raise PageBudgetExceeded(
                "fetch exceeded its budget of %d pages" % self.max_pages
            )


class AsyncNavigationExecutor(NavigationExecutor):
    """Runs compiled navigation programs as coroutines.

    A drop-in async sibling of :class:`NavigationExecutor`: same compiled
    sites, same builtin action predicates, same row assembly — but
    :meth:`afetch` is a coroutine whose page navigations await simulated
    latency on the fabric loop.  One instance serves arbitrarily many
    concurrent bindings (state lives in per-attempt :class:`BindingRun`
    objects), so the execution context keeps exactly one per query.
    """

    def __init__(
        self,
        server: WebServer,
        max_pages_per_fetch: int = 500,
        connections_per_host: int = CONNECTIONS_PER_HOST,
        metrics: Any = None,
        admit: Callable[[str], bool] | None = None,
        budget: Any = None,
    ) -> None:
        super().__init__(server, max_pages_per_fetch=max_pages_per_fetch)
        self.server = server
        self.metrics = metrics
        self.connections_per_host = max(1, int(connections_per_host))
        # Speculation controls, mirroring the threaded prefetcher's: the
        # admission gate (breaker state, context liveness) and the
        # wasted-pages budget.
        self._admit = admit
        self.budget = budget
        self._connections: dict[str, asyncio.Semaphore] = {}
        self._spec_tasks: list[asyncio.Task] = []
        # Replace the sync engine built by the base constructor with the
        # coroutine interpreter; sites are added afterwards, so their
        # programs land in the async engine.
        self.engine = AsyncEngine(Program())
        self._register_async_builtins()

    # -- per-binding state ---------------------------------------------------

    def new_run(self, cancel_check: Callable[[], None] | None = None) -> BindingRun:
        """A fresh per-attempt state bundle (browser, memo, page budget)."""
        return BindingRun(
            self.server, self.max_pages_per_fetch, cancel_check=cancel_check
        )

    def _connection(self, host: str) -> asyncio.Semaphore:
        sem = self._connections.get(host)
        if sem is None:
            sem = self._connections[host] = asyncio.Semaphore(
                self.connections_per_host
            )
        return sem

    def _count(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc(amount)

    # -- fetching ------------------------------------------------------------

    async def afetch(
        self,
        name: str,
        given: dict[str, Any],
        goal: str | None = None,
        run: BindingRun | None = None,
    ) -> list[dict[str, str | None]]:
        """Coroutine twin of :meth:`NavigationExecutor.fetch`: all tuples
        of VPS relation ``name`` consistent with ``given``, in the same
        order the sync executor would produce them."""
        compiled_site, rel = self.relations.get(name, (None, None))
        if rel is None:
            raise ExecutorError("unknown relation %r" % name)
        token = _RUN.set(run if run is not None else self.new_run())
        try:
            args: list[Any] = []
            for attr in rel.vector:
                if attr in given and given[attr] is not None:
                    args.append(str(given[attr]))
                else:
                    args.append(Var("Q_" + attr))
            goal_pred = Pred(goal or rel.name, tuple(args))
            rows: list[dict[str, str | None]] = []
            seen: set[tuple] = set()
            async for subst, _state in self.engine.asolve(goal_pred):
                row: dict[str, str | None] = {}
                for attr, arg in zip(rel.vector, args):
                    if attr not in rel.schema:
                        continue
                    value = resolve(arg, subst)
                    row[attr] = None if isinstance(value, Var) else value
                key = tuple(row.get(a) for a in rel.schema)
                if key not in seen:
                    seen.add(key)
                    rows.append(row)
            return rows
        finally:
            _RUN.reset(token)

    async def _afetch_page(self, request: Request) -> WebPage | None:
        run = _RUN.get()
        key = request_key(request)
        if key in run.memo:
            return run.memo[key]
        if run.cancel_check is not None:
            run.cancel_check()
        gate = self._connection(request.url.host)
        try:
            if self.page_cache is not None:
                page, live = await run.browser.request_cached(
                    request,
                    self.page_cache,
                    on_live=run.check_page_budget,
                    poll=run.cancel_check,
                    gate=gate,
                )
            else:
                run.check_page_budget()
                async with gate:
                    page = await run.browser.request(request)
                live = True
        except TransientNetworkError:
            # Retryable: the execution engine's retry policy decides.
            raise
        except NavigationError:
            return None
        if live:
            run.pages += 1
        run.memo[key] = page
        return page

    # -- builtins ------------------------------------------------------------

    def _register_async_builtins(self) -> None:
        self.engine.register_builtin("nav_entry", 2, self._abi_entry)
        self.engine.register_builtin("nav_get", 2, self._abi_get)
        self.engine.register_builtin("nav_follow", 3, self._abi_follow)
        self.engine.register_builtin("nav_submit", 4, self._abi_submit)
        # Extraction is pure computation; the sync builtin serves as-is.
        self.engine.register_builtin("nav_extract", 3, self._bi_extract)

    async def _abi_entry(self, args, subst, state):
        host = resolve(args[0], subst)
        if isinstance(host, Var):
            raise ExecutorError("nav_entry requires a bound host")
        page = await self._afetch_page(Request("GET", Url(str(host), "/")))
        if page is None:
            return
        bound = unify(args[1], page, subst)
        if bound is not None:
            yield bound, state

    async def _abi_get(self, args, subst, state):
        target = resolve(args[0], subst)
        if isinstance(target, Var):
            return  # a detail fetch without its key cannot run
        try:
            url = parse_url(str(target))
        except ValueError:
            return
        page = await self._afetch_page(Request("GET", url))
        if page is None:
            return
        bound = unify(args[1], page, subst)
        if bound is not None:
            yield bound, state

    async def _abi_follow(self, args, subst, state):
        page = resolve(args[0], subst)
        name = resolve(args[1], subst)
        if isinstance(page, Var) or isinstance(name, Var):
            raise ExecutorError("nav_follow requires a bound page and link name")
        if not isinstance(page, WebPage):
            return
        try:
            link = page.link_named(str(name))
        except KeyError:
            return
        target = await self._afetch_page(Request("GET", link.address))
        if target is None:
            return
        bound = unify(args[2], target, subst)
        if bound is not None:
            yield bound, state

    async def _abi_submit(self, args, subst, state):
        page = resolve(args[0], subst)
        ident = resolve(args[1], subst)
        pairs = resolve(args[2], subst)
        if isinstance(page, Var) or isinstance(ident, Var):
            raise ExecutorError("nav_submit requires a bound page and form")
        if not isinstance(page, WebPage):
            return
        live_form = self._find_form(page, str(ident))
        if live_form is None:
            return
        assignments = list(self._assignments(live_form, pairs, subst))
        if self.page_cache is not None and len(assignments) > 1:
            # The enumeration below will demand one submission per domain
            # value; issue them as concurrent loop tasks (budget allowing)
            # so they overlap instead of serializing.
            self._speculate(live_form, [values for values, _ in assignments])
        for values, bound in assignments:
            try:
                params = live_form.fill(values)
            except ValueError:
                continue
            request = self._submit_request(live_form, params)
            target = await self._afetch_page(request)
            if target is None:
                continue
            final = unify(args[3], target, bound)
            if final is not None:
                yield final, state

    # -- speculation -----------------------------------------------------------

    def _speculate(self, form, all_values: list[dict[str, str]]) -> None:
        """Spawn loop tasks prefetching enumerated submissions into the
        page cache, under the wasted-pages budget and the admission gate
        (an open breaker, a cancelled context).  Overrides the threaded
        executor's prefetcher hand-off."""
        run = _RUN.get()
        issued = 0
        for values in all_values:
            try:
                params = form.fill(values)
            except ValueError:
                continue
            request = self._submit_request(form, params)
            key = request_key(request)
            if key in run.memo:
                continue
            host = request.url.host
            if self._admit is not None and not self._admit(host):
                self._count("nav.prefetch_skipped")
                continue
            if self.budget is not None and not self.budget.try_issue(host):
                self._count("nav.prefetch_skipped")
                continue
            claim = self.page_cache.try_lead(host, key)
            if claim is None:
                if self.budget is not None:
                    self.budget.release(host)
                continue  # cached, or another binding is already on it
            flight, revision = claim
            task = asyncio.get_running_loop().create_task(
                self._spec_fetch(request, host, key, flight, revision)
            )
            self._spec_tasks.append(task)
            issued += 1
        if issued:
            self._count("nav.prefetch_issued", issued)

    async def _spec_fetch(
        self, request: Request, host: str, key: tuple, flight: Any, revision: int
    ) -> None:
        browser = AsyncBrowser(self.server)
        try:
            async with self._connection(host):
                page = await browser.request(request)
        except NavigationError as exc:
            # Never share a failure: the demand path retries it under the
            # engine's retry policy.
            self.page_cache.abandon(host, key, flight, error=exc)
            if self.budget is not None:
                self.budget.wasted(host)
            return
        except BaseException as exc:  # pragma: no cover - defensive
            self.page_cache.abandon(host, key, flight, error=exc)
            raise
        self._count("nav.prefetch_pages")
        self.page_cache.fulfill(host, key, flight, page, revision, speculative=True)

    async def drain_speculation(self) -> None:
        """Await every speculative task spawned so far (deterministic
        accounting at the end of a batch)."""
        tasks, self._spec_tasks = self._spec_tasks, []
        for task in tasks:
            try:
                await task
            except Exception:  # noqa: BLE001 - speculative; demand path retries
                pass
