"""The navigation map builder: mapping by example.

"The main idea behind mapping by example is to discover the structure (or
schema) of a site while the webbase designer moves from page to page,
filling forms and following links."

:class:`MapBuilder` subscribes to a :class:`~repro.web.browser.Browser`
(standing in for the paper's JavaScript event handlers) and incrementally
constructs a :class:`~repro.navigation.navmap.NavigationMap`:

* every page load inserts (or re-finds) a node;
* every follow/submit action inserts an edge;
* widget-based inference runs automatically: radio buttons are mandatory,
  selects without an empty option are mandatory, select/radio domains are
  read off the widgets;
* the few facts that need a human — mandatory text fields, attribute
  renames, the extraction example — arrive through :class:`DesignerHints`
  and :meth:`MapBuilder.mark_data_page`, and are counted as *manual* facts
  for the Section 7 automation statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.navigation.extract import canonical_attr, induce_wrapper
from repro.navigation.model import FormKey, FormModel, WidgetModel
from repro.navigation.navmap import MapError, NavigationMap
from repro.web.browser import ActionEvent, BrowserObserver
from repro.web.page import FormSpec, WebPage, Widget


@dataclass
class DesignerHints:
    """The designer-supplied facts for one site.

    ``attr_renames`` maps canonicalized raw names (widget names, column
    headers, block labels) to the attribute names the designer prefers —
    the paper's "facts to standardize attribute and domain value names".
    ``mandatory_text`` lists the (renamed) attributes whose free-text
    widgets the designer declared mandatory.
    """

    attr_renames: dict[str, str] = field(default_factory=dict)
    mandatory_text: set[str] = field(default_factory=set)

    @property
    def fact_count(self) -> int:
        return len(self.attr_renames) + len(self.mandatory_text)


@dataclass
class AutomationReport:
    """The Section 7 accounting: how much of the map was built by hand."""

    objects: int
    attributes: int
    manual_facts: int

    @property
    def manual_ratio(self) -> float:
        """Manual share of all facts in the map (the paper reports <5%)."""
        total = self.attributes + self.manual_facts
        return self.manual_facts / total if total else 0.0


class MapBuilder(BrowserObserver):
    """Builds a navigation map for one host from observed browsing."""

    def __init__(self, host: str, hints: DesignerHints | None = None) -> None:
        self.host = host
        self.hints = hints or DesignerHints()
        self.map = NavigationMap(host=host)
        self.manual_facts = self.hints.fact_count
        self._last_page: WebPage | None = None

    # -- browser events ------------------------------------------------------

    def on_page(self, page: WebPage) -> None:
        if page.url.host != self.host:
            return
        node, _created = self.map.node_for_page(page)
        self._last_page = page
        node.seen_link_names.update(
            link.name.strip().lower() for link in page.links
        )
        for form in page.forms:
            key = FormKey.of(form)
            if key not in node.forms:
                node.forms[key] = self._model_form(form)

    def on_action(self, event: ActionEvent) -> None:
        if event.source.url.host != self.host or event.target.url.host != self.host:
            return
        source = self.map.node_by_signature(event.source)
        target = self.map.node_by_signature(event.target)
        if source is None or target is None:
            raise MapError("action between pages that were never loaded")
        if event.kind == "follow" and event.link is not None:
            from repro.navigation.model import LinkEdge

            row_link = self._is_row_link(source, event.source, event.link.name)
            edge = LinkEdge(source.node_id, target.node_id, event.link.name, row_link)
            # A later observation may reveal an edge to be a row link (e.g.
            # the wrapper was induced after the link was first followed).
            stale = LinkEdge(source.node_id, target.node_id, event.link.name, not row_link)
            if row_link and stale in self.map.edges:
                self.map.replace_edge(stale, edge)
            else:
                self.map.add_edge(edge)
        elif event.kind == "submit" and event.form is not None:
            from repro.navigation.model import FormEdge

            self.map.add_edge(
                FormEdge(source.node_id, target.node_id, FormKey.of(event.form))
            )

    # -- designer operations ---------------------------------------------------

    def mark_data_page(self, relation_name: str, example: dict[str, str]) -> None:
        """Declare the current page a data page by pointing at one tuple.

        The designer names the relation and gives one example tuple; the
        wrapper is induced from it.  Counted as two manual facts (the name
        and the example), matching the paper's designer-supplied
        extraction script.
        """
        if self._last_page is None:
            raise MapError("no page loaded on %s yet" % self.host)
        node = self.map.node_by_signature(self._last_page)
        if node is None:
            raise MapError("current page is not in the map")
        wrapper = induce_wrapper(self._last_page, example)
        node.wrapper = wrapper
        node.relation_name = relation_name
        self.manual_facts += 2

    def automation_report(self) -> AutomationReport:
        return AutomationReport(
            objects=self.map.object_count(),
            attributes=self.map.attribute_count(),
            manual_facts=self.manual_facts,
        )

    # -- inference ---------------------------------------------------------------

    def _model_form(self, form: FormSpec) -> FormModel:
        model = FormModel(
            key=FormKey.of(form),
            action=form.action,
            method=form.method,
            hidden_state=form.hidden_state,
        )
        for widget in form.widgets:
            if widget.kind == "hidden":
                continue
            attr = canonical_attr(widget.name, self.hints.attr_renames)
            model.widgets.append(
                WidgetModel(
                    name=widget.name,
                    attr=attr,
                    kind=widget.kind,
                    mandatory=self._infer_mandatory(widget, attr),
                    domain=widget.domain,
                    default=widget.default,
                    label=widget.label,
                )
            )
        return model

    def _infer_mandatory(self, widget: Widget, attr: str) -> bool:
        """The paper's widget-based inference, plus designer hints for text.

        * radio buttons: "we can safely assume it is mandatory";
        * selects with no empty option: every submission carries a value,
          so the server treats the attribute as always present;
        * text fields: mandatory only if the designer says so.
        """
        if widget.kind == "radio":
            return True
        if widget.kind == "select":
            return "" not in widget.domain
        if widget.kind == "text":
            return attr in self.hints.mandatory_text
        return False

    def _is_row_link(self, node, page: WebPage, link_name: str) -> bool:
        """A link that belongs to data rows connects to a detail relation.

        Primary signal: the source node's wrapper has a link-valued column
        displaying this link.  Fallback (wrapper not induced yet): the link
        name occurs more than once on the page — once per row.
        """
        wanted = link_name.strip().lower()
        if node.wrapper is not None:
            link_attrs = getattr(node.wrapper, "link_attrs", ())
            if any(name.strip().lower() == wanted for _attr, name in link_attrs):
                return True
            return False
        occurrences = sum(
            1 for l in page.links if l.name.strip().lower() == wanted
        )
        return occurrences > 1
