"""The process-oriented object model of navigation maps (Figure 3).

Navigation maps are labeled directed graphs whose nodes model page
*structure* (not individual pages — every paginated result page of one
listing is the same node) and whose edges model *actions*: following a
link or submitting a form.

Node identity is the :class:`PageSignature`: the host, the URL path, and
the set of forms present.  Two pages with the same signature are the same
node — this is how the builder decides "whether actions and Web page
objects are new before adding them to a map", and how the refinement page
and the data page behind the same CGI script become distinct nodes (they
carry different forms).

:func:`map_to_store` lowers a map into the F-logic object store using the
class signatures of Figure 3 (``action``, ``web_page``, ``data_page``,
``link``, ``form``, ``attr_val_pair``), which is what the paper's
automation statistics count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.flogic.store import ObjectStore, Signature
from repro.web.http import Url
from repro.web.page import FormSpec, WebPage

if TYPE_CHECKING:  # pragma: no cover
    from repro.navigation.extract import PageWrapper


@dataclass(frozen=True)
class FormKey:
    """Structural identity of a form: where it posts and what it asks."""

    action_path: str
    method: str
    widgets: frozenset[str]

    @classmethod
    def of(cls, form: FormSpec) -> "FormKey":
        return cls(
            action_path=form.action.path,
            method=form.method,
            widgets=frozenset(w.name for w in form.widgets if w.kind != "hidden"),
        )

    def matches(self, form: FormSpec) -> bool:
        return FormKey.of(form) == self

    @property
    def ident(self) -> str:
        return "%s|%s|%s" % (self.action_path, self.method, ",".join(sorted(self.widgets)))


@dataclass(frozen=True)
class PageSignature:
    """Structural identity of a page node."""

    host: str
    path: str
    form_keys: frozenset[FormKey]

    @classmethod
    def of(cls, page: WebPage) -> "PageSignature":
        return cls(
            host=page.url.host,
            path=page.url.path,
            form_keys=frozenset(FormKey.of(f) for f in page.forms),
        )


@dataclass
class WidgetModel:
    """What the map remembers about one form widget (an ``attr_val_pair``).

    ``attr`` is the canonical attribute name (after designer renames);
    ``mandatory`` is the widget-based inference, possibly overridden by a
    designer hint; ``domain`` is read off select options / radio values.
    """

    name: str
    attr: str
    kind: str
    mandatory: bool
    domain: tuple[str, ...] = ()
    default: str = ""
    label: str = ""


@dataclass
class FormModel:
    """A form object in the map (the paper's ``form`` class)."""

    key: FormKey
    action: Url
    method: str
    widgets: list[WidgetModel] = field(default_factory=list)
    hidden_state: dict[str, str] = field(default_factory=dict)

    @property
    def attrs(self) -> list[str]:
        return [w.attr for w in self.widgets]

    @property
    def mandatory_attrs(self) -> set[str]:
        return {w.attr for w in self.widgets if w.mandatory}

    def widget_for_attr(self, attr: str) -> WidgetModel:
        for w in self.widgets:
            if w.attr == attr:
                return w
        raise KeyError("form %s has no attribute %r" % (self.key.ident, attr))


@dataclass
class PageNode:
    """A node of the navigation map."""

    node_id: str
    signature: PageSignature
    sample_url: Url
    title: str
    forms: dict[FormKey, FormModel] = field(default_factory=dict)
    wrapper: "PageWrapper | None" = None
    relation_name: str | None = None
    # Display names of every link observed on instances of this page —
    # followed or not.  Maintenance uses this to tell genuinely new links
    # from links the designer merely chose not to explore.
    seen_link_names: set[str] = field(default_factory=set)

    @property
    def is_data(self) -> bool:
        """Data pages have a data extraction method (Figure 3)."""
        return self.wrapper is not None


@dataclass(frozen=True)
class LinkEdge:
    """A ``follow`` action: an edge labeled with the link's display name.

    ``row_link`` marks links that occur once per data row on a data page
    (e.g. the "Car Features" link); these connect a listing relation to a
    detail relation rather than being part of the listing's own path.
    """

    source: str
    target: str
    link_name: str
    row_link: bool = False

    @property
    def label(self) -> str:
        return "link(%s)" % self.link_name


@dataclass(frozen=True)
class FormEdge:
    """A ``submit`` action: an edge labeled with the submitted form."""

    source: str
    target: str
    form_key: FormKey

    @property
    def label(self) -> str:
        return "form(%s)" % ",".join(sorted(self.form_key.widgets))


Edge = LinkEdge | FormEdge


# -- lowering into F-logic (Figure 3) -----------------------------------------------


def flogic_base_store() -> ObjectStore:
    """The class hierarchy and signatures of Figure 3."""
    store = ObjectStore()
    store = store.with_subclass("form_submit", "action")
    store = store.with_subclass("link_follow", "action")
    store = store.with_subclass("data_page", "web_page")
    for sig in [
        Signature("action", "object", "object"),
        Signature("action", "source", "web_page"),
        Signature("action", "targets", "web_page", scalar=False),
        Signature("web_page", "address", "url"),
        Signature("web_page", "title", "string"),
        Signature("web_page", "actions", "action", scalar=False),
        Signature("data_page", "extract", "relation"),
        Signature("link", "name", "string"),
        Signature("link", "address", "url"),
        Signature("form", "cgi", "url"),
        Signature("form", "method", "meth"),
        Signature("form", "mandatory", "attribute", scalar=False),
        Signature("form", "optional", "attribute", scalar=False),
        Signature("form", "state", "attr_val_pair", scalar=False),
        Signature("attr_val_pair", "attr_name", "string"),
        Signature("attr_val_pair", "type", "widget"),
        Signature("attr_val_pair", "default", "object"),
        Signature("attr_val_pair", "value", "object", scalar=False),
    ]:
        store = store.with_signature(sig)
    return store
