"""The navigation map: the graph the map builder constructs and the
compiler consumes.

"A navigation map is a labeled directed graph where the nodes represent
the structure of static or dynamic Web pages, and the labeled edges
represent possible actions (i.e., following a link or filling out a form)
that can be executed from a dynamic page."
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.flogic.store import ObjectStore
from repro.navigation.model import (
    Edge,
    FormEdge,
    FormKey,
    FormModel,
    LinkEdge,
    PageNode,
    PageSignature,
    flogic_base_store,
)
from repro.web.page import WebPage


class MapError(Exception):
    """Inconsistent navigation-map construction or lookup."""


@dataclass
class NavigationMap:
    """All known access paths through one site."""

    host: str
    nodes: dict[str, PageNode] = field(default_factory=dict)
    edges: list[Edge] = field(default_factory=list)
    root_id: str | None = None
    _by_signature: dict[PageSignature, str] = field(default_factory=dict)

    # -- construction ---------------------------------------------------------

    def node_for_page(self, page: WebPage) -> tuple[PageNode, bool]:
        """The node for ``page``, creating it if its structure is new."""
        signature = PageSignature.of(page)
        node_id = self._by_signature.get(signature)
        if node_id is not None:
            return self.nodes[node_id], False
        node_id = "n%d" % len(self.nodes)
        node = PageNode(
            node_id=node_id,
            signature=signature,
            sample_url=page.url,
            title=page.title,
        )
        self.nodes[node_id] = node
        self._by_signature[signature] = node_id
        if self.root_id is None:
            self.root_id = node_id
        return node, True

    def node(self, node_id: str) -> PageNode:
        try:
            return self.nodes[node_id]
        except KeyError:
            raise MapError("no node %r in map of %s" % (node_id, self.host)) from None

    def node_by_signature(self, page: WebPage) -> PageNode | None:
        node_id = self._by_signature.get(PageSignature.of(page))
        return self.nodes[node_id] if node_id is not None else None

    def add_edge(self, edge: Edge) -> bool:
        """Add an edge if new; returns True when it was added."""
        if edge in self.edges:
            return False
        self.edges.append(edge)
        return True

    def replace_edge(self, old: Edge, new: Edge) -> None:
        self.edges[self.edges.index(old)] = new

    # -- queries ----------------------------------------------------------------

    @property
    def root(self) -> PageNode:
        if self.root_id is None:
            raise MapError("map of %s has no root" % self.host)
        return self.nodes[self.root_id]

    def out_edges(self, node_id: str) -> list[Edge]:
        return [e for e in self.edges if e.source == node_id]

    def in_edges(self, node_id: str) -> list[Edge]:
        return [e for e in self.edges if e.target == node_id]

    def data_nodes(self) -> list[PageNode]:
        return [n for n in self.nodes.values() if n.is_data]

    def form(self, key: FormKey) -> FormModel:
        for node in self.nodes.values():
            if key in node.forms:
                return node.forms[key]
        raise MapError("no form %s in map of %s" % (key.ident, self.host))

    def reaches_data(self, node_id: str, _seen: frozenset[str] = frozenset()) -> bool:
        """True when a data node is reachable from ``node_id`` without
        crossing row links (which belong to detail relations)."""
        if node_id in _seen:
            return False
        if self.nodes[node_id].is_data:
            return True
        seen = _seen | {node_id}
        for edge in self.out_edges(node_id):
            if isinstance(edge, LinkEdge) and edge.row_link:
                continue
            if self.reaches_data(edge.target, seen):
                return True
        return False

    # -- merging ------------------------------------------------------------------

    def merge(self, other: "NavigationMap") -> dict[str, str]:
        """Fold another session's map of the same host into this one.

        "Since building maps is an incremental process, our tool checks
        whether actions and Web page objects are new before adding them to
        a map" — merge is that check applied across designer sessions.
        Nodes unify by signature; forms, wrappers, relation names and seen
        links are combined; edges deduplicate (with row-link upgrades).
        Returns the node-id remapping from ``other`` into this map.
        """
        if other.host != self.host:
            raise MapError(
                "cannot merge map of %s into map of %s" % (other.host, self.host)
            )
        remap: dict[str, str] = {}
        for node_id in sorted(other.nodes, key=lambda i: int(i[1:])):
            incoming = other.nodes[node_id]
            existing_id = self._by_signature.get(incoming.signature)
            if existing_id is None:
                new_id = "n%d" % len(self.nodes)
                node = PageNode(
                    node_id=new_id,
                    signature=incoming.signature,
                    sample_url=incoming.sample_url,
                    title=incoming.title,
                )
                self.nodes[new_id] = node
                self._by_signature[incoming.signature] = new_id
                if self.root_id is None:
                    self.root_id = new_id
            else:
                node = self.nodes[existing_id]
            remap[node_id] = node.node_id
            for key, form in incoming.forms.items():
                node.forms.setdefault(key, form)
            node.seen_link_names |= incoming.seen_link_names
            if incoming.wrapper is not None:
                if node.wrapper is None:
                    node.wrapper = incoming.wrapper
                    node.relation_name = incoming.relation_name
                elif (
                    incoming.relation_name is not None
                    and node.relation_name != incoming.relation_name
                ):
                    raise MapError(
                        "merge conflict: node %s is relation %r here, %r there"
                        % (node.node_id, node.relation_name, incoming.relation_name)
                    )
        for edge in other.edges:
            if isinstance(edge, LinkEdge):
                mapped = LinkEdge(
                    remap[edge.source], remap[edge.target], edge.link_name, edge.row_link
                )
                weaker = LinkEdge(
                    mapped.source, mapped.target, mapped.link_name, False
                )
                if mapped.row_link and weaker in self.edges:
                    self.replace_edge(weaker, mapped)
                    continue
                stronger = LinkEdge(
                    mapped.source, mapped.target, mapped.link_name, True
                )
                if not mapped.row_link and stronger in self.edges:
                    continue  # keep the stronger knowledge
                self.add_edge(mapped)
            else:
                self.add_edge(
                    FormEdge(remap[edge.source], remap[edge.target], edge.form_key)
                )
        return remap

    # -- statistics & F-logic lowering -----------------------------------------------

    def object_count(self) -> int:
        """Objects in the F-logic representation (pages, forms, widgets,
        links, actions) — the unit of the paper's '85 objects' statistic."""
        store = self.to_store()
        return len(store.all_objects())

    def attribute_count(self) -> int:
        return self.to_store().attr_fact_count

    def to_store(self) -> ObjectStore:
        """Lower the map into F-logic objects per Figure 3."""
        store = flogic_base_store()
        for node in self.nodes.values():
            cls = "data_page" if node.is_data else "web_page"
            store = store.with_member(node.node_id, cls)
            store = store.with_attr(node.node_id, "address", str(node.sample_url.without_query()))
            store = store.with_attr(node.node_id, "title", node.title)
            if node.is_data and node.relation_name:
                store = store.with_attr(node.node_id, "extract", node.relation_name)
            for key, form in node.forms.items():
                form_id = "%s_form_%s" % (node.node_id, key.action_path.rsplit("/", 1)[-1])
                store = store.with_member(form_id, "form")
                store = store.with_attr(form_id, "cgi", str(form.action.without_query()))
                store = store.with_attr(form_id, "method", form.method)
                for hidden_name, hidden_value in sorted(form.hidden_state.items()):
                    store = store.with_attr(form_id, "state", (hidden_name, hidden_value))
                for widget in form.widgets:
                    widget_id = "%s_%s" % (form_id, widget.name)
                    store = store.with_member(widget_id, "attr_val_pair")
                    store = store.with_attr(widget_id, "attr_name", widget.attr)
                    store = store.with_attr(widget_id, "type", widget.kind)
                    if widget.default:
                        store = store.with_attr(widget_id, "default", widget.default)
                    for value in widget.domain:
                        store = store.with_attr(widget_id, "value", value)
                    bucket = "mandatory" if widget.mandatory else "optional"
                    store = store.with_attr(form_id, bucket, widget.attr)
        for index, edge in enumerate(self.edges):
            action_id = "a%d" % index
            if isinstance(edge, LinkEdge):
                store = store.with_member(action_id, "link_follow")
                link_id = "%s_link" % action_id
                store = store.with_member(link_id, "link")
                store = store.with_attr(link_id, "name", edge.link_name)
                store = store.with_attr(action_id, "object", link_id)
            else:
                store = store.with_member(action_id, "form_submit")
                store = store.with_attr(action_id, "object", "%s_form_%s" % (
                    edge.source, edge.form_key.action_path.rsplit("/", 1)[-1]))
            store = store.with_attr(action_id, "source", edge.source)
            store = store.with_attr(action_id, "targets", edge.target)
            store = store.with_attr(edge.source, "actions", action_id)
        return store

    def summary(self) -> str:
        lines = ["navigation map of %s: %d nodes, %d edges" % (self.host, len(self.nodes), len(self.edges))]
        for node in self.nodes.values():
            marker = " [data:%s]" % node.relation_name if node.is_data else ""
            lines.append("  %s %s%s" % (node.node_id, node.signature.path, marker))
            for edge in self.out_edges(node.node_id):
                lines.append("    --%s--> %s" % (edge.label, edge.target))
        return "\n".join(lines)
