"""Executing navigation expressions against the (simulated) Web.

The compiled programs of :mod:`repro.navigation.compiler` mention four
action predicates.  This module registers them as engine builtins bound to
a browser:

* ``nav_entry(Host, Page)`` — load a site's entry page;
* ``nav_get(Url, Page)`` — load an absolute URL (detail relations);
* ``nav_follow(Page, LinkName, Page2)`` — follow a named link;
* ``nav_submit(Page, FormIdent, Pairs, Page2)`` — fill out and submit a
  form.  Bound attribute variables are sent to the server; *unbound*
  variables are handled the way a patient human would handle them: a
  select with an empty option is submitted unconstrained, a select or
  radio group without one is enumerated over its (finite, widget-supplied)
  domain — one submission per value, as backtracking alternatives — and a
  free-text field is simply left blank;
* ``nav_extract(Page, WrapperId, Rows)`` — run the node's extraction
  wrapper; on pages that do not match the wrapper it yields no rows, which
  is what makes the Figure-4 "data page or second form?" choice resolve
  itself.

Within one :meth:`NavigationExecutor.fetch` call, responses are memoized
per request (a browser cache), so backtracking over alternatives does not
re-fetch pages; distinct ``fetch`` calls hit the live site again.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator

from repro.flogic.engine import Engine
from repro.flogic.formulas import Pred, Program
from repro.flogic.terms import Struct, Var, resolve, unify
from repro.navigation.compiler import CompiledRelation, CompiledSite
from repro.web.browser import (
    Browser,
    NavigationError,
    PrefixPageCache,
    TransientNetworkError,
    request_key,
)
from repro.web.clock import SimClock
from repro.web.http import Request, Url, parse_url
from repro.web.page import FormSpec, WebPage
from repro.web.server import WebServer

from repro.navigation.model import FormKey

from repro.errors import WebBaseError


class ExecutorError(WebBaseError):
    """Misconfiguration of the executor (unknown relation/wrapper/form)."""


class PageBudgetExceeded(ExecutorError):
    """One fetch navigated more pages than its budget allows.

    A safety rail against runaway maps (e.g. a pagination loop on a site
    that keeps generating More links): better to fail loudly than to
    hammer a live site indefinitely."""


class NavigationExecutor:
    """Runs compiled navigation programs; one browser, many sites."""

    def __init__(
        self,
        server: WebServer,
        clock: SimClock | None = None,
        max_pages_per_fetch: int = 500,
    ) -> None:
        self.browser = Browser(server, clock)
        self.engine = Engine(Program())
        self.max_pages_per_fetch = max_pages_per_fetch
        self._pages_this_fetch = 0
        self.sites: dict[str, CompiledSite] = {}
        self.relations: dict[str, tuple[CompiledSite, CompiledRelation]] = {}
        self._wrappers: dict[str, Any] = {}
        self._forms: dict[str, Any] = {}
        self._memo: dict[tuple, WebPage] = {}
        # Batched-navigation hooks, installed per query by the execution
        # engine: a query-scoped revision-stamped page cache shared across
        # fetches (and worker bundles), and a speculative prefetcher for
        # enumerated select/radio domains.  Both default off, so a bare
        # executor keeps the paper's per-fetch navigation semantics.
        self.page_cache: PrefixPageCache | None = None
        self.prefetcher: Any = None
        # Cooperative cancellation hook, installed per fetch by the
        # execution engine: polled before every page navigation (and while
        # waiting on a coalesced page fetch), it raises when the access
        # driving this fetch was revoked.  ``None`` = not cancellable.
        self.cancel_check: Any = None
        self._session_depth = 0
        self._register_builtins()

    # -- configuration ------------------------------------------------------

    def add_site(self, compiled: CompiledSite) -> None:
        if compiled.host in self.sites:
            raise ExecutorError("site %s already added" % compiled.host)
        self.sites[compiled.host] = compiled
        self.engine.program.extend(compiled.program)
        for rel in compiled.relations:
            if rel.name in self.relations:
                raise ExecutorError("relation %r defined twice" % rel.name)
            self.relations[rel.name] = (compiled, rel)
        self._wrappers.update(compiled.wrappers)
        self._forms.update(compiled.forms)

    def relation(self, name: str) -> CompiledRelation:
        try:
            return self.relations[name][1]
        except KeyError:
            raise ExecutorError("unknown relation %r" % name) from None

    @property
    def pages_last_fetch(self) -> int:
        """Pages actually navigated (memo misses) by the most recent
        :meth:`fetch` call — readable even when the fetch raised."""
        return self._pages_this_fetch

    @contextmanager
    def batch_session(self) -> Iterator[None]:
        """A navigation session spanning several :meth:`fetch` calls.

        Inside a session the per-request memo persists across fetches, so
        a batch of probe bindings walks the shared navigation prefix once
        and backtracks only over the parts that differ (the K form
        submissions).  The page budget still resets per fetch — it bounds
        each binding's *live* navigations, not the session's reuse.
        Re-entrant; the memo clears when the outermost session closes.
        """
        if self._session_depth == 0:
            self._memo.clear()
        self._session_depth += 1
        try:
            yield
        finally:
            self._session_depth -= 1
            if self._session_depth == 0:
                self._memo.clear()

    # -- fetching -------------------------------------------------------------

    def fetch(
        self, name: str, given: dict[str, Any], goal: str | None = None
    ) -> list[dict[str, str | None]]:
        """All tuples of VPS relation ``name`` consistent with ``given``.

        ``given`` values are coerced to strings: VPS relations hold raw
        extracted text (typing is the logical layer's job).  ``goal``
        selects a specific handle's navigation expression (defaults to the
        relation's combined goal).
        """
        compiled_site, rel = self.relations.get(name, (None, None))
        if rel is None:
            raise ExecutorError("unknown relation %r" % name)
        if self._session_depth == 0:
            self._memo.clear()
        self._pages_this_fetch = 0
        args: list[Any] = []
        for attr in rel.vector:
            if attr in given and given[attr] is not None:
                args.append(str(given[attr]))
            else:
                args.append(Var("Q_" + attr))
        goal = Pred(goal or rel.name, tuple(args))
        rows: list[dict[str, str | None]] = []
        seen: set[tuple] = set()
        for subst, _state in self.engine.solve(goal):
            row: dict[str, str | None] = {}
            for attr, arg in zip(rel.vector, args):
                if attr not in rel.schema:
                    continue
                value = resolve(arg, subst)
                row[attr] = None if isinstance(value, Var) else value
            key = tuple(row.get(a) for a in rel.schema)
            if key not in seen:
                seen.add(key)
                rows.append(row)
        return rows

    # -- request plumbing ---------------------------------------------------------

    def _check_page_budget(self) -> None:
        # The budget bounds *live* navigations only: memo hits and prefix
        # page-cache hits return before this check runs, so reused pages
        # never count against it.
        if self._pages_this_fetch >= self.max_pages_per_fetch:
            raise PageBudgetExceeded(
                "fetch exceeded its budget of %d pages" % self.max_pages_per_fetch
            )

    def _fetch_page(self, request: Request) -> WebPage | None:
        key = request_key(request)
        if key in self._memo:
            return self._memo[key]
        if self.cancel_check is not None:
            self.cancel_check()
        try:
            if self.page_cache is not None:
                page, live = self.browser.request_cached(
                    request,
                    self.page_cache,
                    on_live=self._check_page_budget,
                    poll=self.cancel_check,
                )
            else:
                self._check_page_budget()
                page = self.browser.request(request)
                live = True
        except TransientNetworkError:
            # Retryable: let the execution engine's retry policy decide,
            # instead of silently degrading to an empty answer.
            raise
        except NavigationError:
            return None
        if live:
            self._pages_this_fetch += 1
        self._memo[key] = page
        return page

    # -- builtins ----------------------------------------------------------------

    def _register_builtins(self) -> None:
        self.engine.register_builtin("nav_entry", 2, self._bi_entry)
        self.engine.register_builtin("nav_get", 2, self._bi_get)
        self.engine.register_builtin("nav_follow", 3, self._bi_follow)
        self.engine.register_builtin("nav_submit", 4, self._bi_submit)
        self.engine.register_builtin("nav_extract", 3, self._bi_extract)

    def _bi_entry(self, args, subst, state) -> Iterator:
        host = resolve(args[0], subst)
        if isinstance(host, Var):
            raise ExecutorError("nav_entry requires a bound host")
        page = self._fetch_page(Request("GET", Url(str(host), "/")))
        if page is None:
            return
        bound = unify(args[1], page, subst)
        if bound is not None:
            yield bound, state

    def _bi_get(self, args, subst, state) -> Iterator:
        target = resolve(args[0], subst)
        if isinstance(target, Var):
            return  # a detail fetch without its key cannot run
        try:
            url = parse_url(str(target))
        except ValueError:
            return
        page = self._fetch_page(Request("GET", url))
        if page is None:
            return
        bound = unify(args[1], page, subst)
        if bound is not None:
            yield bound, state

    def _bi_follow(self, args, subst, state) -> Iterator:
        page = resolve(args[0], subst)
        name = resolve(args[1], subst)
        if isinstance(page, Var) or isinstance(name, Var):
            raise ExecutorError("nav_follow requires a bound page and link name")
        if not isinstance(page, WebPage):
            return
        try:
            link = page.link_named(str(name))
        except KeyError:
            return
        target = self._fetch_page(Request("GET", link.address))
        if target is None:
            return
        bound = unify(args[2], target, subst)
        if bound is not None:
            yield bound, state

    def _bi_submit(self, args, subst, state) -> Iterator:
        page = resolve(args[0], subst)
        ident = resolve(args[1], subst)
        pairs = resolve(args[2], subst)
        if isinstance(page, Var) or isinstance(ident, Var):
            raise ExecutorError("nav_submit requires a bound page and form")
        if not isinstance(page, WebPage):
            return
        live_form = self._find_form(page, str(ident))
        if live_form is None:
            return
        assignments: Any = self._assignments(live_form, pairs, subst)
        if self.prefetcher is not None and self.page_cache is not None:
            # An unbound select/radio enumeration is about to issue one
            # submission per domain value; hand the whole batch to the
            # prefetcher so the submissions overlap instead of serializing.
            assignments = list(assignments)
            if len(assignments) > 1:
                self._speculate(live_form, [values for values, _ in assignments])
        for values, bound in assignments:
            try:
                params = live_form.fill(values)
            except ValueError:
                continue
            request = self._submit_request(live_form, params)
            target = self._fetch_page(request)
            if target is None:
                continue
            final = unify(args[3], target, bound)
            if final is not None:
                yield final, state

    def _bi_extract(self, args, subst, state) -> Iterator:
        page = resolve(args[0], subst)
        wrapper_id = resolve(args[1], subst)
        if isinstance(page, Var) or isinstance(wrapper_id, Var):
            raise ExecutorError("nav_extract requires a bound page and wrapper")
        if not isinstance(page, WebPage):
            return
        wrapper = self._wrappers.get(str(wrapper_id))
        if wrapper is None:
            raise ExecutorError("unknown wrapper %r" % wrapper_id)
        rows = tuple(
            tuple(row.get(a, "") for a in wrapper.attrs)
            for row in wrapper.extract(page)
        )
        bound = unify(args[2], rows, subst)
        if bound is not None:
            yield bound, state

    # -- helpers ------------------------------------------------------------------

    @staticmethod
    def _submit_request(form: FormSpec, params: dict[str, str]) -> Request:
        if form.method == "GET":
            return Request("GET", form.action.with_params(params))
        return Request("POST", form.action, form_params=params)

    def _speculate(self, form: FormSpec, all_values: list[dict[str, str]]) -> None:
        """Queue every enumerated submission with the prefetcher.  All of
        them will be consumed by the enumeration that follows, so nothing
        speculative is ever wasted; requests already cached, in flight, or
        memoized locally are skipped."""
        requests = []
        for values in all_values:
            try:
                params = form.fill(values)
            except ValueError:
                continue
            request = self._submit_request(form, params)
            if request_key(request) in self._memo:
                continue
            requests.append(request)
        if len(requests) > 1:
            self.prefetcher.prefetch(requests)

    def _find_form(self, page: WebPage, ident: str) -> FormSpec | None:
        for form in page.forms:
            if FormKey.of(form).ident == ident:
                return form
        return None

    def _assignments(
        self, form: FormSpec, pairs: Any, subst: dict
    ) -> Iterator[tuple[dict[str, str], dict]]:
        """All ways to fill the form given the (partially bound) attribute
        variables: bound values are used as-is; unbound enumerable widgets
        are enumerated; unbound free widgets are left blank."""
        if not isinstance(pairs, tuple):
            raise ExecutorError("nav_submit pairs must be a tuple")
        live = {w.name: w for w in form.widgets}

        def expand(index: int, values: dict[str, str], current: dict) -> Iterator:
            if index == len(pairs):
                yield dict(values), current
                return
            pair = pairs[index]
            if not (isinstance(pair, Struct) and pair.functor == "pair"):
                raise ExecutorError("malformed submit pair %r" % (pair,))
            widget_name, term = pair.args
            term = resolve(term, current)
            widget = live.get(str(widget_name))
            if widget is None:
                # The live form lost this widget; submit without it.
                yield from expand(index + 1, values, current)
                return
            if not isinstance(term, Var):
                values[widget_name] = str(term)
                yield from expand(index + 1, values, current)
                values.pop(widget_name, None)
                return
            # Unbound variable: decide by widget kind.
            if widget.kind in ("select", "radio") and widget.domain:
                if "" in widget.domain:
                    # Submitting the empty option asks the server for
                    # everything; the variable is bound later by extraction.
                    values[widget_name] = ""
                    yield from expand(index + 1, values, current)
                    values.pop(widget_name, None)
                    return
                for option in widget.domain:
                    bound = unify(term, option, current)
                    if bound is None:
                        continue
                    values[widget_name] = option
                    yield from expand(index + 1, values, bound)
                    values.pop(widget_name, None)
                return
            # Text/checkbox left unfilled.
            yield from expand(index + 1, values, current)

        yield from expand(0, {}, dict(subst))
