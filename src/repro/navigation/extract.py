"""Data extraction from data pages, including wrapper induction by example.

The paper assumes "the designer provides an extraction script" per data
page.  Here an extraction script is a :class:`PageWrapper`:

* :class:`TableWrapper` — data laid out as an HTML table with a header
  row; columns map to attributes, and a column may carry a per-row link
  whose *target URL* is the attribute value (the ``Url`` attribute of the
  ``newsday`` relation);
* :class:`LabeledWrapper` — data laid out as repeated labeled blocks
  (``<dl>`` definition lists), one block per tuple.

Designers rarely write these by hand: :func:`induce_wrapper` builds one
from a single example tuple the designer points at on a live page —
mapping by example extended down to the extraction level.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.web.http import parse_url
from repro.web.page import WebPage


class ExtractionError(Exception):
    """A wrapper could not be induced or applied."""


def canonical_attr(raw: str, renames: dict[str, str] | None = None) -> str:
    """Canonicalize a header/label/widget name into an attribute name."""
    name = raw.strip().lower().replace(" ", "_")
    name = "".join(c for c in name if c.isalnum() or c == "_")
    if renames and name in renames:
        return renames[name]
    return name


class PageWrapper:
    """Interface: extract tuples (attr -> text) from a page."""

    attrs: tuple[str, ...]

    def matches(self, page: WebPage) -> bool:
        raise NotImplementedError

    def extract(self, page: WebPage) -> list[dict[str, str]]:
        raise NotImplementedError


@dataclass(frozen=True)
class TableWrapper(PageWrapper):
    """Extracts rows from the table whose header matches ``header_attrs``.

    ``header_attrs`` maps canonicalized header text to attribute names;
    ``link_attrs`` maps an attribute to the display name of a per-row link
    whose href becomes the attribute's value.
    """

    attrs: tuple[str, ...]
    header_attrs: tuple[tuple[str, str], ...]  # (canonical header, attr)
    link_attrs: tuple[tuple[str, str], ...] = ()  # (attr, link display name)

    def _header_map(self) -> dict[str, str]:
        return dict(self.header_attrs)

    def _find_table(self, page: WebPage) -> tuple[list[str | None], object] | None:
        """Locate the matching table: (attr per column, table node)."""
        header_map = self._header_map()
        for table in page.dom.find_all("table"):
            rows = table.find_all("tr")
            if not rows:
                continue
            headers = [canonical_attr(c.text()) for c in rows[0].iter_nodes() if c.tag == "th"]
            if not headers:
                continue
            mapped = [header_map.get(h) for h in headers]
            found = [a for a in mapped if a]
            if found and set(found) >= set(header_map.values()):
                return (mapped, table)
        return None

    def matches(self, page: WebPage) -> bool:
        return self._find_table(page) is not None

    def extract(self, page: WebPage) -> list[dict[str, str]]:
        located = self._find_table(page)
        if located is None:
            return []
        mapped, table = located
        link_names = {attr: name for attr, name in self.link_attrs}
        tuples = []
        for tr in table.find_all("tr")[1:]:
            cells = [c for c in tr.iter_nodes() if c.tag == "td"]
            if not cells:
                continue
            row: dict[str, str] = {}
            for index, attr in enumerate(mapped):
                if attr is None or index >= len(cells):
                    continue
                cell = cells[index]
                if attr in link_names:
                    anchor = cell.find("a")
                    if anchor is not None:
                        # Resolve to an absolute URL so the value can seed a
                        # detail-relation navigation (nav_get).
                        row[attr] = str(parse_url(anchor.get("href"), base=page.url))
                    else:
                        row[attr] = cell.text()
                else:
                    row[attr] = cell.text()
            if row:
                tuples.append(row)
        return tuples


@dataclass(frozen=True)
class LabeledWrapper(PageWrapper):
    """Extracts one tuple per labeled block (``<dl>`` with dt/dd pairs)."""

    attrs: tuple[str, ...]
    label_attrs: tuple[tuple[str, str], ...]  # (canonical label, attr)

    def _blocks(self, page: WebPage) -> list[dict[str, str]]:
        label_map = dict(self.label_attrs)
        blocks = []
        for dl in page.dom.find_all("dl"):
            block: dict[str, str] = {}
            label: str | None = None
            for child in dl.iter_nodes():
                if child.tag == "dt":
                    label = canonical_attr(child.text())
                elif child.tag == "dd" and label is not None:
                    attr = label_map.get(label)
                    if attr:
                        block[attr] = child.text()
                    label = None
            if set(block) >= set(label_map.values()):
                blocks.append(block)
        return blocks

    def matches(self, page: WebPage) -> bool:
        return bool(self._blocks(page))

    def extract(self, page: WebPage) -> list[dict[str, str]]:
        return self._blocks(page)


def _induce_from_table(page: WebPage, example: dict[str, str]) -> TableWrapper | None:
    for table in page.dom.find_all("table"):
        rows = table.find_all("tr")
        if len(rows) < 2:
            continue
        headers = [c for c in rows[0].iter_nodes() if c.tag == "th"]
        if not headers:
            continue
        # Keys are the *raw* canonical headers (what extraction will see on
        # future pages); the designer's renames live in the attribute names.
        header_names = [canonical_attr(h.text()) for h in headers]
        for tr in rows[1:]:
            cells = [c for c in tr.iter_nodes() if c.tag == "td"]
            if not cells:
                continue
            texts = [c.text() for c in cells]
            hrefs = []
            link_names = []
            for cell in cells:
                anchor = cell.find("a")
                if anchor is not None:
                    hrefs.append(str(parse_url(anchor.get("href"), base=page.url)))
                    link_names.append(anchor.text())
                else:
                    hrefs.append(None)
                    link_names.append(None)
            # Try to locate every example value in this row.
            header_attrs: list[tuple[str, str]] = []
            link_attrs: list[tuple[str, str]] = []
            used: set[int] = set()
            for attr, value in example.items():
                value = str(value)
                hit = None
                for index, text in enumerate(texts):
                    if index in used:
                        continue
                    if text == value:
                        hit = (index, False)
                        break
                    if hrefs[index] is not None and hrefs[index] == value:
                        hit = (index, True)
                        break
                if hit is None:
                    header_attrs = []
                    break
                index, is_link = hit
                used.add(index)
                if index >= len(header_names):
                    header_attrs = []
                    break
                header_attrs.append((header_names[index], attr))
                if is_link:
                    link_attrs.append((attr, link_names[index] or ""))
            if header_attrs:
                ordered = tuple(sorted(example))
                return TableWrapper(
                    attrs=ordered,
                    header_attrs=tuple(sorted(header_attrs)),
                    link_attrs=tuple(sorted(link_attrs)),
                )
    return None


def _induce_from_labels(page: WebPage, example: dict[str, str]) -> LabeledWrapper | None:
    for dl in page.dom.find_all("dl"):
        pairs: dict[str, str] = {}
        label: str | None = None
        for child in dl.iter_nodes():
            if child.tag == "dt":
                label = canonical_attr(child.text())
            elif child.tag == "dd" and label is not None:
                pairs[label] = child.text()
                label = None
        label_attrs: list[tuple[str, str]] = []
        for attr, value in example.items():
            matched = [l for l, v in pairs.items() if v == str(value)]
            if not matched:
                label_attrs = []
                break
            label_attrs.append((matched[0], attr))
        if label_attrs:
            return LabeledWrapper(
                attrs=tuple(sorted(example)), label_attrs=tuple(sorted(label_attrs))
            )
    return None


def induce_wrapper(page: WebPage, example: dict[str, str]) -> PageWrapper:
    """Induce a wrapper from one example tuple the designer pointed at.

    ``example`` maps desired attribute names to the exact display values
    (or, for link-valued attributes, the target URL) of one tuple visible
    on ``page``.  Tabular layouts are tried first, then labeled blocks.
    """
    wrapper = _induce_from_table(page, example)
    if wrapper is None:
        wrapper = _induce_from_labels(page, example)
    if wrapper is None:
        raise ExtractionError(
            "no tuple matching %r found on %s" % (example, page.url)
        )
    extracted = wrapper.extract(page)
    if not any(all(row.get(a) == str(v) for a, v in example.items()) for row in extracted):
        raise ExtractionError("induced wrapper does not recover the example tuple")
    return wrapper


def wrapper_from_headers(
    attrs_by_header: dict[str, str], link_attrs: dict[str, str] | None = None
) -> TableWrapper:
    """Hand-written tabular extraction script (the paper's default path)."""
    attrs = tuple(sorted(attrs_by_header.values()))
    return TableWrapper(
        attrs=attrs,
        header_attrs=tuple(sorted((canonical_attr(h), a) for h, a in attrs_by_header.items())),
        link_attrs=tuple(sorted((link_attrs or {}).items())),
    )
