"""Persisting navigation maps.

Mapping a site is a designer activity done once (the paper: ~30 minutes
per site); querying happens forever after.  A real deployment therefore
stores maps between sessions.  This module serializes a
:class:`~repro.navigation.navmap.NavigationMap` — nodes, signatures,
forms, widgets, edges and extraction wrappers — to a JSON document and
back, with a format version for forward compatibility.

Round-trip fidelity is exact: a loaded map compiles to the same program
and handles as the original (property-tested in the suite).
"""

from __future__ import annotations

import json
from typing import Any

from repro.navigation.extract import LabeledWrapper, PageWrapper, TableWrapper
from repro.navigation.model import (
    FormEdge,
    FormKey,
    FormModel,
    LinkEdge,
    PageNode,
    PageSignature,
    WidgetModel,
)
from repro.navigation.navmap import NavigationMap
from repro.web.http import parse_url

FORMAT_VERSION = 1


class SerializeError(Exception):
    """The document is not a valid serialized navigation map."""


# -- wrappers ----------------------------------------------------------------------


def _wrapper_to_dict(wrapper: PageWrapper) -> dict[str, Any]:
    if isinstance(wrapper, TableWrapper):
        return {
            "kind": "table",
            "attrs": list(wrapper.attrs),
            "header_attrs": [list(pair) for pair in wrapper.header_attrs],
            "link_attrs": [list(pair) for pair in wrapper.link_attrs],
        }
    if isinstance(wrapper, LabeledWrapper):
        return {
            "kind": "labeled",
            "attrs": list(wrapper.attrs),
            "label_attrs": [list(pair) for pair in wrapper.label_attrs],
        }
    raise SerializeError("cannot serialize wrapper %r" % (wrapper,))


def _wrapper_from_dict(data: dict[str, Any]) -> PageWrapper:
    kind = data.get("kind")
    if kind == "table":
        return TableWrapper(
            attrs=tuple(data["attrs"]),
            header_attrs=tuple(tuple(pair) for pair in data["header_attrs"]),
            link_attrs=tuple(tuple(pair) for pair in data["link_attrs"]),
        )
    if kind == "labeled":
        return LabeledWrapper(
            attrs=tuple(data["attrs"]),
            label_attrs=tuple(tuple(pair) for pair in data["label_attrs"]),
        )
    raise SerializeError("unknown wrapper kind %r" % kind)


# -- forms -------------------------------------------------------------------------


def _form_key_to_dict(key: FormKey) -> dict[str, Any]:
    return {
        "action_path": key.action_path,
        "method": key.method,
        "widgets": sorted(key.widgets),
    }


def _form_key_from_dict(data: dict[str, Any]) -> FormKey:
    return FormKey(data["action_path"], data["method"], frozenset(data["widgets"]))


def _form_to_dict(form: FormModel) -> dict[str, Any]:
    return {
        "key": _form_key_to_dict(form.key),
        "action": str(form.action),
        "method": form.method,
        "hidden_state": dict(form.hidden_state),
        "widgets": [
            {
                "name": w.name,
                "attr": w.attr,
                "kind": w.kind,
                "mandatory": w.mandatory,
                "domain": list(w.domain),
                "default": w.default,
                "label": w.label,
            }
            for w in form.widgets
        ],
    }


def _form_from_dict(data: dict[str, Any]) -> FormModel:
    form = FormModel(
        key=_form_key_from_dict(data["key"]),
        action=parse_url(data["action"]),
        method=data["method"],
        hidden_state=dict(data["hidden_state"]),
    )
    for w in data["widgets"]:
        form.widgets.append(
            WidgetModel(
                name=w["name"],
                attr=w["attr"],
                kind=w["kind"],
                mandatory=w["mandatory"],
                domain=tuple(w["domain"]),
                default=w["default"],
                label=w["label"],
            )
        )
    return form


# -- the map ------------------------------------------------------------------------


def map_to_dict(navmap: NavigationMap) -> dict[str, Any]:
    """A JSON-ready representation of the map."""
    nodes = []
    for node in navmap.nodes.values():
        nodes.append(
            {
                "node_id": node.node_id,
                "path": node.signature.path,
                "form_keys": [_form_key_to_dict(k) for k in sorted(node.signature.form_keys, key=lambda k: k.ident)],
                "sample_url": str(node.sample_url),
                "title": node.title,
                "forms": [_form_to_dict(f) for _, f in sorted(node.forms.items(), key=lambda kv: kv[0].ident)],
                "wrapper": _wrapper_to_dict(node.wrapper) if node.wrapper else None,
                "relation_name": node.relation_name,
                "seen_link_names": sorted(node.seen_link_names),
            }
        )
    edges = []
    for edge in navmap.edges:
        if isinstance(edge, LinkEdge):
            edges.append(
                {
                    "kind": "link",
                    "source": edge.source,
                    "target": edge.target,
                    "link_name": edge.link_name,
                    "row_link": edge.row_link,
                }
            )
        else:
            edges.append(
                {
                    "kind": "form",
                    "source": edge.source,
                    "target": edge.target,
                    "form_key": _form_key_to_dict(edge.form_key),
                }
            )
    return {
        "format": FORMAT_VERSION,
        "host": navmap.host,
        "root_id": navmap.root_id,
        "nodes": nodes,
        "edges": edges,
    }


def map_from_dict(data: dict[str, Any]) -> NavigationMap:
    """Rebuild a map from :func:`map_to_dict` output."""
    if data.get("format") != FORMAT_VERSION:
        raise SerializeError(
            "unsupported navigation-map format %r" % data.get("format")
        )
    navmap = NavigationMap(host=data["host"])
    for node_data in data["nodes"]:
        signature = PageSignature(
            host=data["host"],
            path=node_data["path"],
            form_keys=frozenset(
                _form_key_from_dict(k) for k in node_data["form_keys"]
            ),
        )
        node = PageNode(
            node_id=node_data["node_id"],
            signature=signature,
            sample_url=parse_url(node_data["sample_url"]),
            title=node_data["title"],
        )
        for form_data in node_data["forms"]:
            form = _form_from_dict(form_data)
            node.forms[form.key] = form
        if node_data["wrapper"] is not None:
            node.wrapper = _wrapper_from_dict(node_data["wrapper"])
        node.relation_name = node_data["relation_name"]
        node.seen_link_names = set(node_data["seen_link_names"])
        navmap.nodes[node.node_id] = node
        navmap._by_signature[signature] = node.node_id  # noqa: SLF001 - rebuilding
    navmap.root_id = data["root_id"]
    for edge_data in data["edges"]:
        if edge_data["kind"] == "link":
            navmap.edges.append(
                LinkEdge(
                    edge_data["source"],
                    edge_data["target"],
                    edge_data["link_name"],
                    edge_data["row_link"],
                )
            )
        elif edge_data["kind"] == "form":
            navmap.edges.append(
                FormEdge(
                    edge_data["source"],
                    edge_data["target"],
                    _form_key_from_dict(edge_data["form_key"]),
                )
            )
        else:
            raise SerializeError("unknown edge kind %r" % edge_data["kind"])
    return navmap


def dumps(navmap: NavigationMap, indent: int | None = 2) -> str:
    """Serialize a map to a JSON string."""
    return json.dumps(map_to_dict(navmap), indent=indent, sort_keys=True)


def loads(text: str) -> NavigationMap:
    """Deserialize a map from a JSON string."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializeError("invalid JSON: %s" % exc) from exc
    if not isinstance(data, dict):
        raise SerializeError("expected a JSON object")
    return map_from_dict(data)


def save_map(navmap: NavigationMap, path: str) -> None:
    with open(path, "w") as handle:
        handle.write(dumps(navmap))


def load_map(path: str) -> NavigationMap:
    with open(path) as handle:
        return loads(handle.read())
