"""Compiling navigation maps into navigation expressions.

"Navigation expressions ... can be derived automatically directly from
the map in linear time in the size of the map."  This module performs
that derivation.  For every data node the compiler emits a small
Transaction F-logic program shaped exactly like Figure 4:

* one *relation rule* that starts a browsing process at the site entry
  (or, for detail relations, directly at a URL supplied as a mandatory
  attribute) and hands the page to the entry node's predicate;
* one *node rule* per action available at a node — following a link,
  or submitting a form with the attribute variables threaded through —
  with a choice over the action's possible target nodes;
* for data nodes, an *extraction rule* binding the output variables to a
  row of the page, and (when the map has a "More" self-loop) a recursive
  rule that continues to the next result page.

Handles are derived with the compilation: root-to-data paths are grouped
by the mandatory attributes of their *first* form.  One group yields one
handle whose goal is the relation itself; several groups (a site with
alternative access forms, Section 3's multi-handle case) yield one
navigation expression *per handle* — each restricted to its group's
paths — plus a combined relation rule that unions the accesses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.flogic.formulas import Pred, Program, Rule, choice, format_rule, serial
from repro.flogic.terms import Struct, Var
from repro.navigation.extract import PageWrapper
from repro.navigation.model import Edge, FormEdge, FormModel, LinkEdge, PageNode
from repro.navigation.navmap import NavigationMap
from repro.vps.handle import Handle, check_handle_family


@dataclass
class CompiledRelation:
    """One VPS relation produced from a navigation map."""

    name: str
    host: str
    schema: tuple[str, ...]  # output attributes (extraction + detail key)
    vector: tuple[str, ...]  # all predicate arguments: schema + form-only attrs
    handles: list[Handle]
    kind: str  # 'site' | 'detail'
    url_attr: str | None = None  # for detail relations


@dataclass
class CompiledSite:
    """Everything the executor needs to serve a site's VPS relations."""

    host: str
    entry_url: str
    program: Program
    relations: list[CompiledRelation]
    wrappers: dict[str, PageWrapper] = field(default_factory=dict)
    forms: dict[str, FormModel] = field(default_factory=dict)

    def relation(self, name: str) -> CompiledRelation:
        for rel in self.relations:
            if rel.name == name:
                return rel
        raise KeyError("site %s has no relation %r" % (self.host, name))


class CompileError(Exception):
    """The map cannot be compiled (no data nodes, broken topology, ...)."""


def _attr_var(attr: str) -> Var:
    return Var(attr[0].upper() + attr[1:])


def _non_row_out_edges(navmap: NavigationMap, node_id: str):
    for edge in navmap.out_edges(node_id):
        if isinstance(edge, LinkEdge) and edge.row_link:
            continue
        yield edge


def _forward_reachable(navmap: NavigationMap, start: str) -> set[str]:
    seen = {start}
    frontier = [start]
    while frontier:
        current = frontier.pop()
        for edge in _non_row_out_edges(navmap, current):
            if edge.target not in seen:
                seen.add(edge.target)
                frontier.append(edge.target)
    return seen


def _backward_reachable(navmap: NavigationMap, target: str) -> set[str]:
    seen = {target}
    changed = True
    while changed:
        changed = False
        for edge in navmap.edges:
            if isinstance(edge, LinkEdge) and edge.row_link:
                continue
            if edge.target in seen and edge.source not in seen:
                seen.add(edge.source)
                changed = True
    return seen


def _simple_paths(
    navmap: NavigationMap, source: str, target: str, limit: int = 200
) -> list[list[Edge]]:
    """Acyclic edge paths from ``source`` to ``target`` (row links excluded)."""
    paths: list[list[Edge]] = []

    def walk(current: str, visited: frozenset[str], trail: list[Edge]) -> None:
        if len(paths) >= limit:
            return
        if current == target:
            paths.append(list(trail))
            return
        for edge in _non_row_out_edges(navmap, current):
            if edge.target in visited:
                continue
            trail.append(edge)
            walk(edge.target, visited | {edge.target}, trail)
            trail.pop()

    walk(source, frozenset({source}), [])
    return paths


def _form_model(navmap: NavigationMap, edge: FormEdge) -> FormModel:
    node = navmap.node(edge.source)
    model = node.forms.get(edge.form_key)
    if model is None:
        model = navmap.form(edge.form_key)
    return model


@dataclass
class _HandleGroup:
    """Root-to-data paths sharing the same first-form mandatory set."""

    mandatory: frozenset[str]
    selection: set[str]
    paths: list[list[Edge]]


def _group_paths(
    navmap: NavigationMap, data_node: PageNode, root_id: str
) -> list[_HandleGroup]:
    paths = _simple_paths(navmap, root_id, data_node.node_id)
    if not paths:
        raise CompileError(
            "data node %s is unreachable from the root" % data_node.node_id
        )
    grouped: dict[frozenset[str], _HandleGroup] = {}
    for path in paths:
        form_edges = [e for e in path if isinstance(e, FormEdge)]
        if form_edges:
            first = _form_model(navmap, form_edges[0])
            mandatory = frozenset(first.mandatory_attrs)
        else:
            mandatory = frozenset()
        selection: set[str] = set(mandatory)
        for edge in form_edges:
            selection |= set(_form_model(navmap, edge).attrs)
        group = grouped.setdefault(mandatory, _HandleGroup(mandatory, set(), []))
        group.selection |= selection
        group.paths.append(path)
    return [grouped[key] for key in sorted(grouped, key=sorted)]


def _emit_node_rules(
    navmap: NavigationMap,
    node: PageNode,
    vector: tuple[str, ...],
    pred_of: Callable[[str], str],
    allowed: Callable[[Edge], bool],
    wrapper_id: str | None,
    program: Program,
) -> None:
    page = Var("Page")
    page2 = Var("Page2")
    vec_vars = tuple(_attr_var(a) for a in vector)
    head = Pred(pred_of(node.node_id), (page,) + vec_vars)

    if node.is_data and wrapper_id is not None:
        rows = Var("Rows")
        out_vars = tuple(_attr_var(a) for a in node.wrapper.attrs)
        program.add(
            Rule(
                head,
                serial(
                    Pred("nav_extract", (page, wrapper_id, rows)),
                    Pred("member", (out_vars, rows)),
                ),
            )
        )

    # Group actions: one rule per distinct action, choice over its targets.
    link_groups: dict[str, list[str]] = {}
    form_groups: dict[str, tuple[FormModel, list[str]]] = {}
    for edge in _non_row_out_edges(navmap, node.node_id):
        if not allowed(edge):
            continue
        if isinstance(edge, LinkEdge):
            link_groups.setdefault(edge.link_name, []).append(edge.target)
        else:
            model = _form_model(navmap, edge)
            group = form_groups.setdefault(model.key.ident, (model, []))
            group[1].append(edge.target)

    for link_name in sorted(link_groups):
        targets = sorted(set(link_groups[link_name]))
        continuation = choice(
            *[Pred(pred_of(t), (page2,) + vec_vars) for t in targets]
        )
        program.add(
            Rule(
                head,
                serial(Pred("nav_follow", (page, link_name, page2)), continuation),
            )
        )

    for ident in sorted(form_groups):
        model, targets = form_groups[ident]
        pairs = tuple(
            Struct("pair", (w.name, _attr_var(w.attr))) for w in model.widgets
        )
        continuation = choice(
            *[Pred(pred_of(t), (page2,) + vec_vars) for t in sorted(set(targets))]
        )
        program.add(
            Rule(
                head,
                serial(Pred("nav_submit", (page, ident, pairs, page2)), continuation),
            )
        )


def _expression_text(program: Program, goals: Iterable[str]) -> str:
    prefixes = tuple(goals)
    lines = []
    for rule in program.rules:
        name = rule.head.name
        if name in prefixes or any(name.startswith(p + "__") for p in prefixes):
            lines.append(format_rule(rule))
    return "\n".join(lines)


def _compile_site_relation(
    navmap: NavigationMap, data_node: PageNode, site: CompiledSite
) -> None:
    relation = data_node.relation_name
    assert relation is not None and data_node.wrapper is not None
    root_id = navmap.root_id
    assert root_id is not None

    participating = _forward_reachable(navmap, root_id) & _backward_reachable(
        navmap, data_node.node_id
    )
    # Attribute vector: extraction outputs first, then form-only inputs.
    outputs = tuple(data_node.wrapper.attrs)
    inputs: list[str] = []
    for node_id in sorted(participating, key=lambda i: int(i[1:])):
        for key, form in sorted(
            navmap.node(node_id).forms.items(), key=lambda kv: kv[0].ident
        ):
            for widget in form.widgets:
                if widget.attr not in outputs and widget.attr not in inputs:
                    inputs.append(widget.attr)
    vector = outputs + tuple(inputs)
    vec_vars = tuple(_attr_var(a) for a in vector)

    wrapper_id = "%s_wrapper" % relation
    site.wrappers[wrapper_id] = data_node.wrapper
    for node_id in sorted(participating, key=lambda i: int(i[1:])):
        for key, form in navmap.node(node_id).forms.items():
            site.forms[key.ident] = form

    groups = _group_paths(navmap, data_node, root_id)
    page = Var("Page")

    if len(groups) == 1:
        # The common case: one access path family, goal = the relation.
        def pred_of(node_id: str, _rel=relation) -> str:
            return "%s__%s" % (_rel, node_id)

        def allowed(edge: Edge, _p=frozenset(participating)) -> bool:
            return edge.target in _p and edge.source in _p

        site.program.add(
            Rule(
                Pred(relation, vec_vars),
                serial(
                    Pred("nav_entry", (navmap.host, page)),
                    Pred(pred_of(root_id), (page,) + vec_vars),
                ),
            )
        )
        for node_id in sorted(participating, key=lambda i: int(i[1:])):
            _emit_node_rules(
                navmap,
                navmap.node(node_id),
                vector,
                pred_of,
                allowed,
                wrapper_id if node_id == data_node.node_id else None,
                site.program,
            )
        handles = [
            Handle(relation, groups[0].mandatory, frozenset(groups[0].selection), relation)
        ]
    else:
        # Alternative access forms: one navigation expression per handle,
        # plus a combined relation rule unioning the accesses.
        handles = []
        for index, group in enumerate(groups):
            goal = "%s_h%d" % (relation, index)
            group_edges = {edge for path in group.paths for edge in path}
            group_nodes = {root_id}
            for edge in group_edges:
                group_nodes.add(edge.source)
                group_nodes.add(edge.target)

            def pred_of(node_id: str, _goal=goal) -> str:
                return "%s__%s" % (_goal, node_id)

            def allowed(edge: Edge, _edges=frozenset(group_edges), _nodes=frozenset(group_nodes)) -> bool:
                if edge in _edges:
                    return True
                # Keep self-loops (the More pagination) on group nodes.
                return edge.source == edge.target and edge.source in _nodes

            site.program.add(
                Rule(
                    Pred(goal, vec_vars),
                    serial(
                        Pred("nav_entry", (navmap.host, page)),
                        Pred(pred_of(root_id), (page,) + vec_vars),
                    ),
                )
            )
            for node_id in sorted(group_nodes, key=lambda i: int(i[1:])):
                _emit_node_rules(
                    navmap,
                    navmap.node(node_id),
                    vector,
                    pred_of,
                    allowed,
                    wrapper_id if node_id == data_node.node_id else None,
                    site.program,
                )
            handles.append(
                Handle(relation, group.mandatory, frozenset(group.selection), goal)
            )
        site.program.add(
            Rule(
                Pred(relation, vec_vars),
                choice(*[Pred(h.goal, vec_vars) for h in handles]),
            )
        )

    check_handle_family(handles)
    handles = [
        Handle(
            h.relation,
            h.mandatory,
            h.selection,
            h.goal,
            expression=_expression_text(site.program, [h.goal]),
        )
        for h in handles
    ]
    site.relations.append(
        CompiledRelation(
            name=relation,
            host=navmap.host,
            schema=outputs,
            vector=vector,
            handles=handles,
            kind="site",
        )
    )


def _compile_detail_relation(
    navmap: NavigationMap, data_node: PageNode, site: CompiledSite
) -> None:
    relation = data_node.relation_name
    assert relation is not None and data_node.wrapper is not None

    # Find the row link leading here and the source wrapper attribute whose
    # value is the link target URL.
    url_attr: str | None = None
    for edge in navmap.in_edges(data_node.node_id):
        if not (isinstance(edge, LinkEdge) and edge.row_link):
            continue
        source = navmap.node(edge.source)
        if source.wrapper is None:
            continue
        for attr, link_name in getattr(source.wrapper, "link_attrs", ()):
            if link_name.strip().lower() == edge.link_name.strip().lower():
                url_attr = attr
                break
    if url_attr is None:
        raise CompileError(
            "detail node %s has no row link with a matching URL attribute"
            % data_node.node_id
        )

    outputs = tuple(data_node.wrapper.attrs)
    vector = (url_attr,) + outputs
    wrapper_id = "%s_wrapper" % relation
    site.wrappers[wrapper_id] = data_node.wrapper

    page = Var("Page")
    vec_vars = tuple(_attr_var(a) for a in vector)

    def pred_of(node_id: str) -> str:
        return "%s__%s" % (relation, node_id)

    site.program.add(
        Rule(
            Pred(relation, vec_vars),
            serial(
                Pred("nav_get", (vec_vars[0], page)),
                Pred(pred_of(data_node.node_id), (page,) + vec_vars),
            ),
        )
    )
    _emit_node_rules(
        navmap,
        data_node,
        vector,
        pred_of,
        lambda edge: edge.source == data_node.node_id and edge.target == data_node.node_id,
        wrapper_id,
        site.program,
    )
    handle = Handle(
        relation=relation,
        mandatory=frozenset({url_attr}),
        selection=frozenset({url_attr}),
        goal=relation,
        expression=_expression_text(site.program, [relation]),
    )
    site.relations.append(
        CompiledRelation(
            name=relation,
            host=navmap.host,
            schema=vector,
            vector=vector,
            handles=[handle],
            kind="detail",
            url_attr=url_attr,
        )
    )


def compile_map(navmap: NavigationMap) -> CompiledSite:
    """Derive the navigation expressions and handles for every relation the
    map's data nodes define."""
    if navmap.root_id is None:
        raise CompileError("map of %s has no root" % navmap.host)
    data_nodes = navmap.data_nodes()
    if not data_nodes:
        raise CompileError("map of %s has no data pages marked" % navmap.host)
    names = [n.relation_name for n in data_nodes]
    if len(set(names)) != len(names):
        raise CompileError("duplicate relation names in map of %s" % navmap.host)

    site = CompiledSite(
        host=navmap.host,
        entry_url=str(navmap.root.sample_url),
        program=Program(),
        relations=[],
    )
    root_reachable = _forward_reachable(navmap, navmap.root_id)
    for data_node in sorted(data_nodes, key=lambda n: int(n.node_id[1:])):
        if data_node.node_id in root_reachable:
            _compile_site_relation(navmap, data_node, site)
        else:
            _compile_detail_relation(navmap, data_node, site)
    return site
