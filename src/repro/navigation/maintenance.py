"""Navigation-map maintenance: detecting and absorbing site changes.

"Modifications to Web sites can be automatically detected by periodically
comparing the navigation map against its corresponding site ... certain
structural changes such as the addition of a new form attribute require
manual intervention, others can be applied automatically (e.g., the
addition of a cell in a selection list)."

:func:`check_site` re-walks the map's link structure against the live
site and classifies every divergence as *auto* (new/removed select
options, changed defaults — absorbed by :func:`apply_auto_changes`) or
*manual* (new or removed form attributes, vanished links — the designer
must re-demonstrate the affected flow).

:func:`reconcile_site` is the maintenance *driver*: it runs the check,
absorbs what it can, and pushes the outcome into an invalidation sink
(the cross-query result cache, in the assembled webbase) — an
auto-absorbed change bumps the host's map revision so the cache evicts
everything captured under the old map, while a manual-intervention
change quarantines the host's entries until the designer steps in.
That wiring is what makes a warm cache safe over *dynamic* content: the
same machinery that keeps the navigation maps truthful keeps the cached
answers truthful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Protocol

from repro.navigation.model import FormKey, LinkEdge, PageNode, WidgetModel
from repro.navigation.navmap import NavigationMap
from repro.web.browser import Browser, NavigationError
from repro.web.page import WebPage


@dataclass(frozen=True)
class Change:
    """One detected divergence between the map and the live site."""

    kind: str  # see CHANGE_KINDS
    node_id: str
    detail: str
    auto: bool


CHANGE_KINDS = (
    "missing_link",
    "new_link",
    "new_form_attribute",
    "removed_form_attribute",
    "domain_value_added",
    "domain_value_removed",
    "default_changed",
)


@dataclass
class MaintenanceReport:
    """The outcome of one map-vs-site comparison."""

    host: str
    changes: list[Change]
    nodes_checked: int

    @property
    def auto_changes(self) -> list[Change]:
        return [c for c in self.changes if c.auto]

    @property
    def manual_changes(self) -> list[Change]:
        return [c for c in self.changes if not c.auto]

    @property
    def clean(self) -> bool:
        return not self.changes

    def summary(self) -> str:
        lines = [
            "maintenance check of %s: %d nodes, %d changes (%d auto / %d manual)"
            % (
                self.host,
                self.nodes_checked,
                len(self.changes),
                len(self.auto_changes),
                len(self.manual_changes),
            )
        ]
        for change in self.changes:
            marker = "auto" if change.auto else "MANUAL"
            lines.append("  [%s] %s @%s: %s" % (marker, change.kind, change.node_id, change.detail))
        return "\n".join(lines)


def _diff_forms(node: PageNode, page: WebPage, changes: list[Change]) -> None:
    live_by_key = {FormKey.of(f): f for f in page.forms}
    live_by_action = {(f.action.path, f.method): f for f in page.forms}
    for key, model in node.forms.items():
        live = live_by_key.get(key)
        if live is None:
            # Same CGI endpoint, different widget set?
            live = live_by_action.get((key.action_path, key.method))
            if live is None:
                changes.append(
                    Change(
                        "removed_form_attribute",
                        node.node_id,
                        "form %s vanished" % key.ident,
                        auto=False,
                    )
                )
                continue
            live_names = {w.name for w in live.widgets if w.kind != "hidden"}
            for name in sorted(live_names - key.widgets):
                changes.append(
                    Change(
                        "new_form_attribute",
                        node.node_id,
                        "form %s grew attribute %r" % (key.action_path, name),
                        auto=False,
                    )
                )
            for name in sorted(key.widgets - live_names):
                changes.append(
                    Change(
                        "removed_form_attribute",
                        node.node_id,
                        "form %s lost attribute %r" % (key.action_path, name),
                        auto=False,
                    )
                )
            # The shared widgets may have changed too (new select options
            # alongside the new attribute) — diff them as well.
            _diff_widgets(node, model.widgets, live, changes)
            continue
        _diff_widgets(node, model.widgets, live, changes)


def _diff_widgets(node: PageNode, widgets: list[WidgetModel], live_form, changes: list[Change]) -> None:
    live_widgets = {w.name: w for w in live_form.widgets}
    for widget in widgets:
        live = live_widgets.get(widget.name)
        if live is None:
            continue  # covered by the key diff
        if widget.kind in ("select", "radio"):
            old_domain = set(widget.domain)
            new_domain = set(live.domain)
            for value in sorted(new_domain - old_domain):
                changes.append(
                    Change(
                        "domain_value_added",
                        node.node_id,
                        "%s gained option %r" % (widget.name, value),
                        auto=True,
                    )
                )
            for value in sorted(old_domain - new_domain):
                changes.append(
                    Change(
                        "domain_value_removed",
                        node.node_id,
                        "%s lost option %r" % (widget.name, value),
                        auto=True,
                    )
                )
        if live.default != widget.default:
            changes.append(
                Change(
                    "default_changed",
                    node.node_id,
                    "%s default %r -> %r" % (widget.name, widget.default, live.default),
                    auto=True,
                )
            )


def check_site(navmap: NavigationMap, browser: Browser) -> MaintenanceReport:
    """Re-walk the map's link structure and diff what the site serves now.

    Only link edges are traversed (form targets are dynamic); that covers
    every static page and every form *definition*, which is where the
    auto-vs-manual distinction lives.
    """
    changes: list[Change] = []
    if navmap.root_id is None:
        return MaintenanceReport(navmap.host, [], 0)
    try:
        root_page = browser.get(navmap.root.sample_url)
    except NavigationError as exc:
        return MaintenanceReport(
            navmap.host,
            [Change("missing_link", navmap.root_id, "entry page unreachable: %s" % exc, auto=False)],
            0,
        )
    pages: dict[str, WebPage] = {navmap.root_id: root_page}
    frontier = [navmap.root_id]
    visited = {navmap.root_id}
    while frontier:
        node_id = frontier.pop()
        node = navmap.node(node_id)
        page = pages[node_id]
        known_links = set()
        for edge in navmap.out_edges(node_id):
            if not isinstance(edge, LinkEdge) or edge.row_link:
                continue
            known_links.add(edge.link_name.strip().lower())
            if not page.has_link_named(edge.link_name):
                changes.append(
                    Change(
                        "missing_link",
                        node_id,
                        "link %r no longer present" % edge.link_name,
                        auto=False,
                    )
                )
                continue
            if edge.target in visited:
                continue
            try:
                target_page = browser.follow(page.link_named(edge.link_name))
            except NavigationError:
                changes.append(
                    Change(
                        "missing_link",
                        node_id,
                        "link %r is broken" % edge.link_name,
                        auto=False,
                    )
                )
                continue
            visited.add(edge.target)
            pages[edge.target] = target_page
            frontier.append(edge.target)
        for link in page.links:
            if link.address.host != navmap.host:
                continue
            name = link.name.strip().lower()
            if name in node.seen_link_names:
                continue  # present when the designer mapped the site
            if name not in known_links:
                changes.append(
                    Change(
                        "new_link",
                        node_id,
                        "unmapped link %r -> %s" % (link.name, link.address),
                        auto=True,
                    )
                )
        _diff_forms(node, page, changes)
    # Deduplicate (the same new link may appear on several result pages).
    unique = sorted(set(changes), key=lambda c: (c.node_id, c.kind, c.detail))
    return MaintenanceReport(navmap.host, unique, nodes_checked=len(visited))


class InvalidationSink(Protocol):
    """What maintenance needs from a cache to keep it truthful.

    :class:`~repro.vps.cache.ResultCache` implements this; any other
    cross-query store can participate by providing the same two hooks.
    """

    def bump_revision(self, host: str) -> int: ...

    def quarantine(self, host: str) -> int: ...


def reconcile_site(
    navmap: NavigationMap,
    browser: Browser,
    invalidation: InvalidationSink | None = None,
    cdc: Any = None,
) -> MaintenanceReport:
    """One maintenance cycle for one site: check, absorb, invalidate.

    Auto changes are absorbed into the map and — because anything cached
    before the change may describe a page that no longer exists — the
    host's cache revision is bumped, evicting its entries.  Manual
    changes cannot be absorbed, so the host's entries are quarantined
    instead: the cache serves them flagged as stale or bypasses them,
    per its :class:`~repro.vps.cache.CachePolicy`.

    ``cdc`` turns eviction into *publication*: any non-clean sweep is
    also emitted on the given change feed (duck-typed as
    :class:`repro.store.cdc.DeltaFeed`), carrying the host's
    post-reconcile revision, so standing queries can re-evaluate against
    exactly the invalidations the cache saw.
    """
    report = check_site(navmap, browser)
    if report.clean:
        return report
    quarantined = False
    if report.auto_changes:
        apply_auto_changes(navmap, report, browser)
        if invalidation is not None:
            invalidation.bump_revision(navmap.host)
    if report.manual_changes and invalidation is not None:
        invalidation.quarantine(navmap.host)
        quarantined = True
    if cdc is not None:
        revision = 0
        revision_of = getattr(invalidation, "revision", None)
        if revision_of is not None:
            revision = revision_of(navmap.host)
        cdc.emit_report(
            navmap.host, report, revision=revision, quarantined=quarantined
        )
    return report


def apply_auto_changes(navmap: NavigationMap, report: MaintenanceReport, browser: Browser) -> int:
    """Absorb the automatically applicable changes into the map: refresh
    widget domains and defaults from the live forms.  Returns the number
    of changes applied."""
    applied = 0
    refreshed: dict[str, WebPage] = {}
    for change in report.auto_changes:
        if change.kind not in ("domain_value_added", "domain_value_removed", "default_changed"):
            continue
        node = navmap.node(change.node_id)
        page = refreshed.get(change.node_id)
        if page is None:
            try:
                page = browser.get(node.sample_url)
            except NavigationError:
                continue
            refreshed[change.node_id] = page
        live_by_action = {(f.action.path, f.method): f for f in page.forms}
        for key, model in node.forms.items():
            live = live_by_action.get((key.action_path, key.method))
            if live is None:
                continue
            live_widgets = {w.name: w for w in live.widgets}
            for widget in model.widgets:
                live_widget = live_widgets.get(widget.name)
                if live_widget is None:
                    continue
                if widget.domain != live_widget.domain or widget.default != live_widget.default:
                    widget.domain = live_widget.domain
                    widget.default = live_widget.default
        applied += 1
    return applied
