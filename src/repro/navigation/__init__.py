"""Navigation maps, mapping by example, and navigation-expression execution."""

from repro.navigation.builder import AutomationReport, DesignerHints, MapBuilder
from repro.navigation.compiler import (
    CompileError,
    CompiledRelation,
    CompiledSite,
    compile_map,
)
from repro.navigation.executor import ExecutorError, NavigationExecutor
from repro.navigation.extract import (
    ExtractionError,
    LabeledWrapper,
    PageWrapper,
    TableWrapper,
    canonical_attr,
    induce_wrapper,
    wrapper_from_headers,
)
from repro.navigation.model import (
    Edge,
    FormEdge,
    FormKey,
    FormModel,
    LinkEdge,
    PageNode,
    PageSignature,
    WidgetModel,
    flogic_base_store,
)
from repro.navigation.maintenance import (
    Change,
    MaintenanceReport,
    apply_auto_changes,
    check_site,
)
from repro.navigation.navmap import MapError, NavigationMap
from repro.navigation.serialize import (
    SerializeError,
    load_map,
    map_from_dict,
    map_to_dict,
    save_map,
)
from repro.navigation.visualize import to_dot, to_text

__all__ = [
    "AutomationReport",
    "Change",
    "CompileError",
    "CompiledRelation",
    "CompiledSite",
    "DesignerHints",
    "Edge",
    "ExecutorError",
    "ExtractionError",
    "FormEdge",
    "FormKey",
    "FormModel",
    "LabeledWrapper",
    "LinkEdge",
    "MaintenanceReport",
    "MapBuilder",
    "MapError",
    "NavigationExecutor",
    "NavigationMap",
    "PageNode",
    "PageSignature",
    "PageWrapper",
    "SerializeError",
    "TableWrapper",
    "WidgetModel",
    "apply_auto_changes",
    "canonical_attr",
    "check_site",
    "compile_map",
    "flogic_base_store",
    "induce_wrapper",
    "load_map",
    "map_from_dict",
    "map_to_dict",
    "save_map",
    "to_dot",
    "to_text",
    "wrapper_from_headers",
]
