"""The simulated raw-Web substrate: HTTP, HTML, sites, server and browser.

This package plays the role of the live 1999 Web in the original paper: an
opaque source of dynamic content reachable only by following links and
submitting forms.  Everything above it (navigation maps, the calculus, the
three schema layers) interacts with the Web exclusively through
:class:`~repro.web.browser.Browser`.
"""

from repro.web.browser import (
    ActionEvent,
    Browser,
    BrowserObserver,
    NavigationError,
)
from repro.web.clock import CpuTimer, LatencyModel, SimClock
from repro.web.html import Element, RenderStyle, el, page
from repro.web.htmlparser import HtmlNode, parse_html
from repro.web.http import Request, Response, Url, parse_url
from repro.web.page import FormSpec, Link, WebPage, Widget, parse_page
from repro.web.server import HttpError, Site, TrafficStats, WebServer

__all__ = [
    "ActionEvent",
    "Browser",
    "BrowserObserver",
    "CpuTimer",
    "Element",
    "FormSpec",
    "HtmlNode",
    "HttpError",
    "LatencyModel",
    "Link",
    "NavigationError",
    "Request",
    "Response",
    "RenderStyle",
    "SimClock",
    "Site",
    "TrafficStats",
    "Url",
    "WebPage",
    "WebServer",
    "Widget",
    "el",
    "page",
    "parse_html",
    "parse_page",
    "parse_url",
]
