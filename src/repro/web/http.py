"""HTTP primitives for the simulated Web.

The paper's webbase talks to the raw Web through HTTP requests produced by
following links and submitting forms.  Since this reproduction runs offline,
these primitives implement just enough of HTTP/URL semantics for the
navigation machinery: absolute/relative URL resolution, query-string
encoding, and GET/POST requests carrying form parameters.

Everything here is written from scratch (no ``urllib``) so the webbase layer
has full control over, and visibility into, its transport.
"""

from __future__ import annotations

from dataclasses import dataclass, field


_SAFE_URL_CHARS = frozenset(
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789-_.~"
)


def quote(text: str) -> str:
    """Percent-encode ``text`` for use inside a query string."""
    out = []
    for ch in text:
        if ch in _SAFE_URL_CHARS:
            out.append(ch)
        elif ch == " ":
            out.append("+")
        else:
            out.extend("%%%02X" % b for b in ch.encode("utf-8"))
    return "".join(out)


def unquote(text: str) -> str:
    """Decode a percent-encoded query-string component."""
    out = bytearray()
    i = 0
    while i < len(text):
        ch = text[i]
        if ch == "+":
            out.append(0x20)
            i += 1
        elif ch == "%" and i + 2 < len(text) + 1:
            hexpair = text[i + 1 : i + 3]
            try:
                out.append(int(hexpair, 16))
                i += 3
            except ValueError:
                out.append(ord("%"))
                i += 1
        else:
            out.extend(ch.encode("utf-8"))
            i += 1
    return out.decode("utf-8", errors="replace")


def encode_query(params: dict[str, str]) -> str:
    """Encode a parameter dict as an ``application/x-www-form-urlencoded`` string.

    Parameters are emitted in sorted key order so that URLs are canonical:
    two requests with the same parameters always produce the same URL, which
    the navigation map relies on for node identity.
    """
    return "&".join(
        "%s=%s" % (quote(str(k)), quote(str(v))) for k, v in sorted(params.items())
    )


def decode_query(query: str) -> dict[str, str]:
    """Decode a query string into a parameter dict. Later keys win."""
    params: dict[str, str] = {}
    if not query:
        return params
    for piece in query.split("&"):
        if not piece:
            continue
        key, _, value = piece.partition("=")
        params[unquote(key)] = unquote(value)
    return params


@dataclass(frozen=True)
class Url:
    """A parsed ``http://host/path?query`` URL.

    Only the ``http`` scheme exists in the simulated Web; ``host`` selects a
    site on the :class:`~repro.web.server.WebServer` and ``path`` selects a
    route within the site.
    """

    host: str
    path: str = "/"
    query: str = ""

    def __str__(self) -> str:
        base = "http://%s%s" % (self.host, self.path or "/")
        return "%s?%s" % (base, self.query) if self.query else base

    @property
    def params(self) -> dict[str, str]:
        """The decoded query parameters."""
        return decode_query(self.query)

    def with_params(self, params: dict[str, str]) -> "Url":
        """Return a copy of this URL carrying ``params`` as its query string."""
        return Url(self.host, self.path, encode_query(params))

    def without_query(self) -> "Url":
        """Return this URL with the query string stripped."""
        return Url(self.host, self.path)


class UrlError(ValueError):
    """Raised for malformed or non-http URLs."""


def parse_url(text: str, base: Url | None = None) -> Url:
    """Parse ``text`` into a :class:`Url`, resolving relative references.

    Relative resolution supports the forms that occur in real HTML anchors:
    absolute URLs, host-relative paths (``/a/b``), document-relative paths
    (``b.html``, ``../b``), and bare query strings (``?make=ford``).
    """
    text = text.strip()
    if text.startswith("http://"):
        rest = text[len("http://") :]
        hostpart, slash, pathpart = rest.partition("/")
        if not hostpart:
            raise UrlError("URL missing host: %r" % text)
        path, _, query = (slash + pathpart).partition("?")
        return Url(hostpart, path or "/", query)
    if text.startswith("https://"):
        raise UrlError("simulated Web supports only http: %r" % text)
    if base is None:
        raise UrlError("relative URL %r without a base" % text)
    if text.startswith("?"):
        return Url(base.host, base.path, text[1:])
    path, _, query = text.partition("?")
    if not path.startswith("/"):
        # Document-relative: resolve against the base path's directory.
        directory = base.path.rsplit("/", 1)[0]
        segments: list[str] = [s for s in directory.split("/") if s]
        for segment in path.split("/"):
            if segment == "..":
                if segments:
                    segments.pop()
            elif segment not in ("", "."):
                segments.append(segment)
        path = "/" + "/".join(segments)
    return Url(base.host, path, query)


@dataclass(frozen=True)
class Request:
    """An HTTP request issued by the browser against the simulated Web."""

    method: str
    url: Url
    form_params: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.method not in ("GET", "POST"):
            raise UrlError("unsupported method %r" % self.method)

    @property
    def params(self) -> dict[str, str]:
        """All parameters visible to the server: URL query plus form body.

        For GET form submissions the parameters travel in the query string;
        for POST they travel in the body.  CGI handlers should not care, so
        this property merges both (body wins on conflicts, as in real CGI).
        """
        merged = dict(self.url.params)
        merged.update(self.form_params)
        return merged


@dataclass
class Response:
    """An HTTP response from the simulated Web."""

    status: int
    body: str
    content_type: str = "text/html"
    final_url: Url | None = None
    location: str | None = None  # redirect target for 3xx statuses
    extra_latency: float = 0.0  # injected network delay (fault simulation)

    @classmethod
    def redirect(cls, location: "Url | str", status: int = 303) -> "Response":
        """A redirect response (CGI sites redirect POSTs to result URLs)."""
        return cls(status, "", location=str(location))

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    def __len__(self) -> int:
        return len(self.body)
