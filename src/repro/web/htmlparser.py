"""A tolerant HTML parser, written from scratch.

The paper's map builder "parses an HTML page and generates a set of F-logic
objects" and notes that its main practical difficulty was "the presence of
faulty HTML, in which case the parser needs to be able to recover from the
ill-formed documents".  This module provides that recovering parser:

* case-insensitive tag and attribute names,
* quoted and unquoted attribute values, valueless attributes,
* auto-closing of tags whose end tags are optional (``li``, ``p``, ``tr``,
  ``td``, ``option``, ...),
* stray end tags are dropped; unclosed elements are closed at EOF,
* character entities (named subset + numeric) are decoded in text.

The result is a plain DOM of :class:`HtmlNode` objects with the small query
surface the rest of the system needs (``find``, ``find_all``, ``text``).
"""

from __future__ import annotations

from dataclasses import dataclass, field


VOID_TAGS = frozenset({"br", "hr", "img", "input", "meta", "link", "base"})

# When a start tag of the key arrives, any open element in the value set is
# implicitly closed first.  This covers the common 1999-era omissions.
_IMPLIED_CLOSE: dict[str, frozenset[str]] = {
    "li": frozenset({"li", "p"}),
    "p": frozenset({"p"}),
    "tr": frozenset({"tr", "td", "th"}),
    "td": frozenset({"td", "th"}),
    "th": frozenset({"td", "th"}),
    "option": frozenset({"option"}),
    "dt": frozenset({"dt", "dd"}),
    "dd": frozenset({"dt", "dd"}),
}

# Closing a table row/table must also pop any cells left open, etc.  Maps an
# end tag to the set of tags it may implicitly close on its way out.
_END_POPS: dict[str, frozenset[str]] = {
    "table": frozenset({"tr", "td", "th"}),
    "tr": frozenset({"td", "th"}),
    "ul": frozenset({"li", "p"}),
    "ol": frozenset({"li", "p"}),
    "select": frozenset({"option"}),
    "dl": frozenset({"dt", "dd"}),
    "form": frozenset({"p", "li"}),
    "body": frozenset({"p", "li", "td", "th", "tr"}),
    "html": frozenset({"p", "li", "td", "th", "tr", "body"}),
}

_NAMED_ENTITIES = {
    "amp": "&",
    "lt": "<",
    "gt": ">",
    "quot": '"',
    "apos": "'",
    "nbsp": " ",
    "copy": "\N{COPYRIGHT SIGN}",
    "middot": "\N{MIDDLE DOT}",
}


def decode_entities(text: str) -> str:
    """Decode HTML character entities in ``text``; unknown ones pass through."""
    if "&" not in text:
        return text
    out: list[str] = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch != "&":
            out.append(ch)
            i += 1
            continue
        end = text.find(";", i + 1)
        if end == -1 or end - i > 10:
            out.append(ch)
            i += 1
            continue
        name = text[i + 1 : end]
        if name.startswith("#"):
            try:
                code = int(name[2:], 16) if name[1:2] in ("x", "X") else int(name[1:])
                out.append(chr(code))
                i = end + 1
                continue
            except (ValueError, OverflowError):
                pass
        elif name.lower() in _NAMED_ENTITIES:
            out.append(_NAMED_ENTITIES[name.lower()])
            i = end + 1
            continue
        out.append(ch)
        i += 1
    return "".join(out)


@dataclass
class HtmlNode:
    """One element in the parsed DOM."""

    tag: str
    attrs: dict[str, str] = field(default_factory=dict)
    children: list["HtmlNode | str"] = field(default_factory=list)
    parent: "HtmlNode | None" = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<HtmlNode %s %r (%d children)>" % (self.tag, self.attrs, len(self.children))

    def get(self, attr: str, default: str = "") -> str:
        """Attribute lookup (names are stored lowercase)."""
        return self.attrs.get(attr.lower(), default)

    def iter_nodes(self) -> "list[HtmlNode]":
        """All descendant element nodes, document order, self excluded."""
        found: list[HtmlNode] = []
        stack = [c for c in reversed(self.children) if isinstance(c, HtmlNode)]
        while stack:
            node = stack.pop()
            found.append(node)
            stack.extend(
                c for c in reversed(node.children) if isinstance(c, HtmlNode)
            )
        return found

    def find_all(self, tag: str, **attrs: str) -> "list[HtmlNode]":
        """All descendants with this tag whose attributes include ``attrs``."""
        tag = tag.lower()
        matches = []
        for node in self.iter_nodes():
            if node.tag != tag:
                continue
            if all(node.get(k) == v for k, v in attrs.items()):
                matches.append(node)
        return matches

    def find(self, tag: str, **attrs: str) -> "HtmlNode | None":
        """First descendant matching, or None."""
        found = self.find_all(tag, **attrs)
        return found[0] if found else None

    def text(self) -> str:
        """All text content of this subtree, whitespace-normalized."""
        pieces: list[str] = []
        stack: list[HtmlNode | str] = list(reversed(self.children))
        while stack:
            item = stack.pop()
            if isinstance(item, str):
                pieces.append(item)
            else:
                stack.extend(reversed(item.children))
        return " ".join(" ".join(pieces).split())

    def own_text(self) -> str:
        """Text directly inside this node (children's text excluded)."""
        pieces = [c for c in self.children if isinstance(c, str)]
        return " ".join(" ".join(pieces).split())

    def ancestors(self) -> "list[HtmlNode]":
        """Path from parent to the document root."""
        chain = []
        node = self.parent
        while node is not None:
            chain.append(node)
            node = node.parent
        return chain


@dataclass
class _Token:
    kind: str  # 'text' | 'start' | 'end'
    data: str = ""
    attrs: dict[str, str] = field(default_factory=dict)


def _tokenize(source: str) -> list[_Token]:
    tokens: list[_Token] = []
    i = 0
    n = len(source)
    while i < n:
        lt = source.find("<", i)
        if lt == -1:
            tokens.append(_Token("text", source[i:]))
            break
        if lt > i:
            tokens.append(_Token("text", source[i:lt]))
        if source.startswith("<!--", lt):
            close = source.find("-->", lt + 4)
            i = n if close == -1 else close + 3
            continue
        if source.startswith("<!", lt):  # doctype or bogus declaration
            close = source.find(">", lt)
            i = n if close == -1 else close + 1
            continue
        gt = source.find(">", lt)
        if gt == -1:
            tokens.append(_Token("text", source[lt:]))
            break
        inner = source[lt + 1 : gt].strip()
        i = gt + 1
        if not inner:
            continue
        if inner.startswith("/"):
            tokens.append(_Token("end", inner[1:].strip().lower()))
            continue
        if inner.endswith("/"):
            inner = inner[:-1].rstrip()
        tag, attrs = _parse_tag_contents(inner)
        if tag:
            tokens.append(_Token("start", tag, attrs))
    return tokens


def _parse_tag_contents(inner: str) -> tuple[str, dict[str, str]]:
    """Split ``a href="x" checked`` into tag name and attribute dict."""
    j = 0
    while j < len(inner) and not inner[j].isspace():
        j += 1
    tag = inner[:j].lower()
    if not all(c.isalnum() or c in "-_" for c in tag):
        return "", {}
    attrs: dict[str, str] = {}
    rest = inner[j:]
    k = 0
    while k < len(rest):
        while k < len(rest) and rest[k].isspace():
            k += 1
        if k >= len(rest):
            break
        name_start = k
        while k < len(rest) and not rest[k].isspace() and rest[k] != "=":
            k += 1
        name = rest[name_start:k].lower()
        while k < len(rest) and rest[k].isspace():
            k += 1
        if k < len(rest) and rest[k] == "=":
            k += 1
            while k < len(rest) and rest[k].isspace():
                k += 1
            if k < len(rest) and rest[k] in "\"'":
                quote_char = rest[k]
                k += 1
                value_start = k
                while k < len(rest) and rest[k] != quote_char:
                    k += 1
                value = rest[value_start:k]
                k += 1
            else:
                value_start = k
                while k < len(rest) and not rest[k].isspace():
                    k += 1
                value = rest[value_start:k]
        else:
            value = name  # valueless attribute, e.g. checked
        if name:
            attrs[name] = decode_entities(value)
    return tag, attrs


def parse_html(source: str) -> HtmlNode:
    """Parse (possibly faulty) HTML into a DOM rooted at a ``#document`` node."""
    root = HtmlNode("#document")
    open_stack: list[HtmlNode] = [root]

    def current() -> HtmlNode:
        return open_stack[-1]

    def close_implied(tags: frozenset[str]) -> None:
        while len(open_stack) > 1 and current().tag in tags:
            open_stack.pop()

    for token in _tokenize(source):
        if token.kind == "text":
            text = decode_entities(token.data)
            if text.strip():
                current().children.append(text)
        elif token.kind == "start":
            implied = _IMPLIED_CLOSE.get(token.data)
            if implied is not None:
                close_implied(implied)
            node = HtmlNode(token.data, token.attrs, parent=current())
            current().children.append(node)
            if token.data not in VOID_TAGS:
                open_stack.append(node)
        else:  # end tag
            tag = token.data
            pops = _END_POPS.get(tag)
            if pops is not None:
                close_implied(pops)
            # Find a matching open element; if none, this is a stray end tag.
            for depth in range(len(open_stack) - 1, 0, -1):
                if open_stack[depth].tag == tag:
                    del open_stack[depth:]
                    break
    return root
