"""The simulated Web: sites, routing, and the server that hosts them.

The webbase treats the Web as an opaque data source it can only reach
"through filing requests to the server by following links or by filling out
forms".  :class:`WebServer` is that opaque source here: it dispatches
requests by host to registered :class:`Site` objects and keeps per-host
traffic counters so benchmarks can report the paper's "# of pages" column.
"""

from __future__ import annotations

import random
import threading

from dataclasses import dataclass
from typing import Any, Callable

from repro.web.clock import LatencyModel
from repro.web.html import Element, RenderStyle
from repro.web.http import Request, Response, Url


class HttpError(Exception):
    """A non-success HTTP outcome from the simulated Web."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__("%d %s" % (status, message))
        self.status = status


class TransientHttpError(HttpError):
    """A failure that would succeed if the request were simply retried.

    The real Web produces these constantly (overloaded CGI gateways,
    dropped connections); the fault-injection layer raises them so the
    execution engine's retry machinery has something real to chew on."""


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of transient faults for the simulated Web.

    Every request to a covered host rolls against ``error_rate`` (raise a
    transient 503) and ``spike_rate`` (deliver the page after an extra
    ``spike_seconds`` of simulated latency).  Rolls depend only on
    ``(seed, host, per-host request ordinal)``, so a given world replays
    the identical fault sequence run after run — which is what makes the
    retry/timeout machinery testable and benchable.

    ``max_consecutive`` caps how many *consecutive* requests to one host
    may fail: with the default of 1, the immediate retry of a failed
    request always succeeds, so a retrying engine provably recovers.  Set
    it to a large value (or ``error_rate=1.0``) to simulate a dead host
    and exercise retry exhaustion.
    """

    seed: int = 7
    error_rate: float = 0.0
    spike_rate: float = 0.0
    spike_seconds: float = 4.0
    max_consecutive: int = 1
    hosts: tuple[str, ...] | None = None  # None = every host

    def covers(self, host: str) -> bool:
        return self.hosts is None or host in self.hosts

    def _roll(self, host: str, ordinal: int, kind: str) -> float:
        return random.Random(
            "%d:%s:%s:%d" % (self.seed, kind, host, ordinal)
        ).random()

    def should_fail(self, host: str, ordinal: int) -> bool:
        return self.covers(host) and self._roll(host, ordinal, "err") < self.error_rate

    def spike_for(self, host: str, ordinal: int) -> float:
        if self.covers(host) and self._roll(host, ordinal, "spk") < self.spike_rate:
            return self.spike_seconds
        return 0.0


# A route handler receives the request and returns either a full Response or
# an Element tree that the site renders with its own style.
Handler = Callable[[Request], "Response | Element"]


class Site:
    """One Web site: a host name, a render style, and a route table.

    Subclasses (in :mod:`repro.sites`) register handlers with :meth:`route`
    and generate pages with the builders in :mod:`repro.web.html`.  The
    ``style`` lets a site emit deliberately faulty HTML, and ``latency``
    overrides the server-wide network cost model for this host (distant or
    slow sites).
    """

    def __init__(
        self,
        host: str,
        style: RenderStyle | None = None,
        latency: LatencyModel | None = None,
    ) -> None:
        self.host = host
        self.style = style or RenderStyle.clean()
        self.latency = latency
        self._routes: dict[str, Handler] = {}

    def route(self, path: str, handler: Handler) -> None:
        """Register ``handler`` for ``path`` (exact match)."""
        self._routes[path] = handler

    def url(self, path: str, **params: str) -> Url:
        """Build an absolute URL into this site."""
        url = Url(self.host, path)
        return url.with_params({k: str(v) for k, v in params.items()}) if params else url

    @property
    def entry_url(self) -> Url:
        """The site's front door."""
        return Url(self.host, "/")

    def handle(self, request: Request) -> Response:
        handler = self._routes.get(request.url.path)
        if handler is None:
            return Response(404, "<html><body>Not Found</body></html>", final_url=request.url)
        result = handler(request)
        if isinstance(result, Response):
            if result.final_url is None:
                result.final_url = request.url
            return result
        return Response(200, result.render(self.style), final_url=request.url)


@dataclass
class TrafficStats:
    """Per-host counters maintained by the server."""

    requests: int = 0
    pages_ok: int = 0
    bytes_sent: int = 0
    faults: int = 0  # transient failures injected by the fault plan

    def record(self, response: Response) -> None:
        self.requests += 1
        self.bytes_sent += len(response)
        if response.ok:
            self.pages_ok += 1


class WebServer:
    """Dispatches requests to sites by host and accounts for traffic."""

    def __init__(self, latency: LatencyModel | None = None) -> None:
        self.default_latency = latency or LatencyModel()
        self._sites: dict[str, Site] = {}
        self.stats: dict[str, TrafficStats] = {}
        # The parallel fetcher serves several browsers from one server.
        self._stats_lock = threading.Lock()
        self.fault_plan: FaultPlan | None = None
        self._fault_ordinal: dict[str, int] = {}
        self._fault_streak: dict[str, int] = {}
        # Optional observer for every served page: the tiered store's
        # bronze log hooks in here, making this the single choke point
        # through which all durable raw content flows.  Must not raise.
        self.page_sink: Any = None

    def install_faults(self, plan: FaultPlan | None) -> None:
        """Install (or, with ``None``, remove) a deterministic fault plan.

        Installing resets the per-host fault counters so the same plan on
        the same workload replays the same fault sequence."""
        self.fault_plan = plan
        self._fault_ordinal = {}
        self._fault_streak = {}

    def add_site(self, site: Site) -> Site:
        if site.host in self._sites:
            raise ValueError("host %r already registered" % site.host)
        self._sites[site.host] = site
        self.stats[site.host] = TrafficStats()
        return site

    def site(self, host: str) -> Site:
        try:
            return self._sites[host]
        except KeyError:
            raise KeyError("no site registered for host %r" % host) from None

    @property
    def hosts(self) -> list[str]:
        return sorted(self._sites)

    def latency_for(self, host: str) -> LatencyModel:
        site = self._sites.get(host)
        if site is not None and site.latency is not None:
            return site.latency
        return self.default_latency

    def fetch(self, request: Request) -> Response:
        """Serve one request; raises :class:`HttpError` for unknown hosts
        and :class:`TransientHttpError` when the fault plan injects one."""
        site = self._sites.get(request.url.host)
        if site is None:
            raise HttpError(502, "unknown host %r" % request.url.host)
        spike = self._apply_faults(site.host)
        response = site.handle(request)
        if spike:
            response.extra_latency += spike
        with self._stats_lock:
            self.stats[site.host].record(response)
        if self.page_sink is not None:
            self.page_sink(request, response)
        return response

    def _apply_faults(self, host: str) -> float:
        """Roll the fault plan for one request; returns the latency spike
        to charge (0.0 for none) or raises :class:`TransientHttpError`."""
        plan = self.fault_plan
        if plan is None or not plan.covers(host):
            return 0.0
        with self._stats_lock:
            ordinal = self._fault_ordinal.get(host, 0)
            self._fault_ordinal[host] = ordinal + 1
            streak = self._fault_streak.get(host, 0)
            if plan.should_fail(host, ordinal) and streak < plan.max_consecutive:
                self._fault_streak[host] = streak + 1
                self.stats[host].faults += 1
                raise TransientHttpError(
                    503, "injected transient fault at %s (request #%d)" % (host, ordinal)
                )
            self._fault_streak[host] = 0
        return plan.spike_for(host, ordinal)

    def reset_stats(self) -> None:
        for host in self.stats:
            self.stats[host] = TrafficStats()
