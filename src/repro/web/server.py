"""The simulated Web: sites, routing, and the server that hosts them.

The webbase treats the Web as an opaque data source it can only reach
"through filing requests to the server by following links or by filling out
forms".  :class:`WebServer` is that opaque source here: it dispatches
requests by host to registered :class:`Site` objects and keeps per-host
traffic counters so benchmarks can report the paper's "# of pages" column.
"""

from __future__ import annotations

import threading

from dataclasses import dataclass
from typing import Callable

from repro.web.clock import LatencyModel
from repro.web.html import Element, RenderStyle
from repro.web.http import Request, Response, Url


class HttpError(Exception):
    """A non-success HTTP outcome from the simulated Web."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__("%d %s" % (status, message))
        self.status = status


# A route handler receives the request and returns either a full Response or
# an Element tree that the site renders with its own style.
Handler = Callable[[Request], "Response | Element"]


class Site:
    """One Web site: a host name, a render style, and a route table.

    Subclasses (in :mod:`repro.sites`) register handlers with :meth:`route`
    and generate pages with the builders in :mod:`repro.web.html`.  The
    ``style`` lets a site emit deliberately faulty HTML, and ``latency``
    overrides the server-wide network cost model for this host (distant or
    slow sites).
    """

    def __init__(
        self,
        host: str,
        style: RenderStyle | None = None,
        latency: LatencyModel | None = None,
    ) -> None:
        self.host = host
        self.style = style or RenderStyle.clean()
        self.latency = latency
        self._routes: dict[str, Handler] = {}

    def route(self, path: str, handler: Handler) -> None:
        """Register ``handler`` for ``path`` (exact match)."""
        self._routes[path] = handler

    def url(self, path: str, **params: str) -> Url:
        """Build an absolute URL into this site."""
        url = Url(self.host, path)
        return url.with_params({k: str(v) for k, v in params.items()}) if params else url

    @property
    def entry_url(self) -> Url:
        """The site's front door."""
        return Url(self.host, "/")

    def handle(self, request: Request) -> Response:
        handler = self._routes.get(request.url.path)
        if handler is None:
            return Response(404, "<html><body>Not Found</body></html>", final_url=request.url)
        result = handler(request)
        if isinstance(result, Response):
            if result.final_url is None:
                result.final_url = request.url
            return result
        return Response(200, result.render(self.style), final_url=request.url)


@dataclass
class TrafficStats:
    """Per-host counters maintained by the server."""

    requests: int = 0
    pages_ok: int = 0
    bytes_sent: int = 0

    def record(self, response: Response) -> None:
        self.requests += 1
        self.bytes_sent += len(response)
        if response.ok:
            self.pages_ok += 1


class WebServer:
    """Dispatches requests to sites by host and accounts for traffic."""

    def __init__(self, latency: LatencyModel | None = None) -> None:
        self.default_latency = latency or LatencyModel()
        self._sites: dict[str, Site] = {}
        self.stats: dict[str, TrafficStats] = {}
        # The parallel fetcher serves several browsers from one server.
        self._stats_lock = threading.Lock()

    def add_site(self, site: Site) -> Site:
        if site.host in self._sites:
            raise ValueError("host %r already registered" % site.host)
        self._sites[site.host] = site
        self.stats[site.host] = TrafficStats()
        return site

    def site(self, host: str) -> Site:
        try:
            return self._sites[host]
        except KeyError:
            raise KeyError("no site registered for host %r" % host) from None

    @property
    def hosts(self) -> list[str]:
        return sorted(self._sites)

    def latency_for(self, host: str) -> LatencyModel:
        site = self._sites.get(host)
        if site is not None and site.latency is not None:
            return site.latency
        return self.default_latency

    def fetch(self, request: Request) -> Response:
        """Serve one request; raises :class:`HttpError` for unknown hosts."""
        site = self._sites.get(request.url.host)
        if site is None:
            raise HttpError(502, "unknown host %r" % request.url.host)
        response = site.handle(request)
        with self._stats_lock:
            self.stats[site.host].record(response)
        return response

    def reset_stats(self) -> None:
        for host in self.stats:
            self.stats[host] = TrafficStats()
