"""Parsed Web pages: the structures of Figure 3 extracted from raw HTML.

The navigation calculus models the Web with classes ``WebPage``, ``Link``,
``Form`` and ``AttrValPair``.  This module derives those structures from a
parsed DOM: for every form it collects the widgets with their types, default
values and — where the widget reveals them — attribute domains (select
options, radio values) and mandatoriness (radio buttons), exactly the
inferences the paper's map builder performs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.web.htmlparser import HtmlNode, parse_html
from repro.web.http import Url, parse_url


@dataclass(frozen=True)
class Link:
    """A hyperlink on a page: display name plus absolute target URL."""

    name: str
    address: Url

    def __str__(self) -> str:
        return "link(%s -> %s)" % (self.name, self.address)


@dataclass
class Widget:
    """One form input, carrying everything the map builder can infer from it.

    ``kind`` is one of ``text``, ``select``, ``radio``, ``checkbox`` or
    ``hidden``.  ``domain`` is the set of allowed values when the widget
    exposes one (select options, radio values).  ``mandatory`` starts as the
    widget-based inference (radio buttons are safely mandatory); the designer
    can override it through hints.
    """

    name: str
    kind: str
    default: str = ""
    domain: tuple[str, ...] = ()
    label: str = ""
    mandatory: bool = False
    max_length: int | None = None


@dataclass
class FormSpec:
    """A form found on a page: CGI target, method, and its widgets."""

    action: Url
    method: str
    widgets: list[Widget] = field(default_factory=list)
    name: str = ""

    @property
    def attribute_names(self) -> list[str]:
        return [w.name for w in self.widgets if w.kind != "hidden"]

    @property
    def hidden_state(self) -> dict[str, str]:
        """Hidden inputs — the form's baked-in state (paper: ``state``)."""
        return {w.name: w.default for w in self.widgets if w.kind == "hidden"}

    def widget(self, name: str) -> Widget:
        for w in self.widgets:
            if w.name == name:
                return w
        raise KeyError("form %s has no widget %r" % (self.action, name))

    def fill(self, values: dict[str, str]) -> dict[str, str]:
        """Compute submission parameters: hidden state, defaults, and ``values``.

        Raises :class:`ValueError` when a value falls outside a widget's
        domain — the browser refuses submissions a human could not make.
        """
        params = dict(self.hidden_state)
        for w in self.widgets:
            if w.kind == "hidden":
                continue
            if w.name in values:
                value = str(values[w.name])
                if w.domain and value not in w.domain:
                    raise ValueError(
                        "value %r not in domain of %r (%s)"
                        % (value, w.name, ", ".join(w.domain))
                    )
                params[w.name] = value
            elif w.default:
                params[w.name] = w.default
        unknown = set(values) - {w.name for w in self.widgets}
        if unknown:
            raise ValueError(
                "form %s has no widgets %s" % (self.action, ", ".join(sorted(unknown)))
            )
        return params


@dataclass
class WebPage:
    """A fetched and parsed page: the browser's unit of navigation state."""

    url: Url
    title: str
    dom: HtmlNode
    links: list[Link] = field(default_factory=list)
    forms: list[FormSpec] = field(default_factory=list)

    def link_named(self, name: str) -> Link:
        """The first link whose display text equals ``name`` (case-insensitive)."""
        wanted = name.strip().lower()
        for link in self.links:
            if link.name.strip().lower() == wanted:
                return link
        raise KeyError("page %s has no link named %r" % (self.url, name))

    def has_link_named(self, name: str) -> bool:
        wanted = name.strip().lower()
        return any(l.name.strip().lower() == wanted for l in self.links)

    def form_with_attribute(self, attr: str) -> FormSpec:
        """The first form containing a non-hidden widget called ``attr``."""
        for spec in self.forms:
            if attr in spec.attribute_names:
                return spec
        raise KeyError("page %s has no form with attribute %r" % (self.url, attr))

    def tables(self) -> list[list[list[str]]]:
        """All tables as row-major cell text, header rows included."""
        extracted = []
        for table in self.dom.find_all("table"):
            rows = []
            for tr in table.find_all("tr"):
                cells = [c for c in tr.iter_nodes() if c.tag in ("td", "th")]
                rows.append([cell.text() for cell in cells])
            extracted.append(rows)
        return extracted


def _nearest_label(node: HtmlNode) -> str:
    """Best-effort label for a widget: bold/label text in the same paragraph."""
    for ancestor in node.ancestors():
        if ancestor.tag in ("p", "td", "div", "label"):
            for child in ancestor.iter_nodes():
                if child.tag in ("b", "label", "strong"):
                    text = child.text().rstrip(": ")
                    if text:
                        return text
            break
    return ""


def _parse_forms(dom: HtmlNode, base: Url) -> list[FormSpec]:
    specs = []
    for form_node in dom.find_all("form"):
        action = parse_url(form_node.get("action") or str(base), base)
        spec = FormSpec(
            action=action,
            method=form_node.get("method", "get").upper() or "GET",
            name=form_node.get("name"),
        )
        radios: dict[str, Widget] = {}
        for node in form_node.iter_nodes():
            if node.tag == "input":
                kind = node.get("type", "text").lower()
                name = node.get("name")
                if kind in ("submit", "reset", "image") or not name:
                    continue
                if kind == "radio":
                    widget = radios.get(name)
                    if widget is None:
                        # The paper: radio-button attributes are safely mandatory.
                        widget = Widget(
                            name,
                            "radio",
                            label=_nearest_label(node),
                            mandatory=True,
                        )
                        radios[name] = widget
                        spec.widgets.append(widget)
                    widget.domain = widget.domain + (node.get("value"),)
                    if node.get("checked"):
                        widget.default = node.get("value")
                elif kind == "checkbox":
                    spec.widgets.append(
                        Widget(
                            name,
                            "checkbox",
                            default=node.get("value") if node.get("checked") else "",
                            domain=(node.get("value") or "on",),
                            label=_nearest_label(node),
                        )
                    )
                elif kind == "hidden":
                    spec.widgets.append(Widget(name, "hidden", default=node.get("value")))
                else:  # text and friends
                    maxlength = node.get("maxlength")
                    spec.widgets.append(
                        Widget(
                            name,
                            "text",
                            default=node.get("value"),
                            label=_nearest_label(node),
                            max_length=int(maxlength) if maxlength.isdigit() else None,
                        )
                    )
            elif node.tag == "select":
                name = node.get("name")
                if not name:
                    continue
                options = []
                default = ""
                for option in node.find_all("option"):
                    value = option.get("value") or option.text()
                    options.append(value)
                    if option.get("selected"):
                        default = value
                spec.widgets.append(
                    Widget(
                        name,
                        "select",
                        default=default,
                        domain=tuple(options),
                        label=_nearest_label(node),
                    )
                )
        specs.append(spec)
    return specs


def parse_page(url: Url, body: str) -> WebPage:
    """Parse an HTTP response body into a :class:`WebPage`."""
    dom = parse_html(body)
    title_node = dom.find("title")
    title = title_node.text() if title_node is not None else ""
    links = []
    for anchor in dom.find_all("a"):
        href = anchor.get("href")
        if not href:
            continue
        try:
            address = parse_url(href, base=url)
        except ValueError:
            continue
        links.append(Link(anchor.text(), address))
    return WebPage(url=url, title=title, dom=dom, links=links, forms=_parse_forms(dom, url))
