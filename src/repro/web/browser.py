"""The programmatic browser driving the simulated Web.

The paper instruments a real browser with JavaScript handlers so that the
map builder can observe the designer's actions ("actions are dynamically
intercepted by JavaScript handlers ... when a new page is loaded into the
browser, it is parsed, and a new node corresponding to the page is inserted
into the navigation map").

:class:`Browser` provides the same two event streams — page loads and
actions — through :class:`BrowserObserver` hooks, and offers the three
primitive moves the navigation calculus needs: ``get`` a URL, ``follow`` a
link, and ``submit`` a form.  All three return immutable :class:`WebPage`
values, so the calculus interpreter can backtrack by simply holding on to
earlier pages.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.web.clock import SimClock
from repro.web.http import Request, Response, Url
from repro.web.page import FormSpec, Link, WebPage, parse_page
from repro.web.server import HttpError, TransientHttpError, WebServer


class NavigationError(Exception):
    """A navigation step could not be completed (bad page, failed fetch)."""


class TransientNetworkError(NavigationError):
    """A navigation step failed transiently: retrying may well succeed.

    Raised for injected :class:`~repro.web.server.TransientHttpError`
    outcomes; unlike a plain :class:`NavigationError` (broken site,
    vanished page), callers with a retry budget should re-issue the fetch
    rather than degrade to an empty answer."""


@dataclass(frozen=True)
class ActionEvent:
    """One browsing action, as observed by the map builder.

    ``kind`` is ``"follow"`` or ``"submit"``.  ``source`` is the page the
    action started from; ``target`` the page it produced.  For submits,
    ``form`` is the submitted form spec and ``values`` the attribute values
    the designer supplied (hidden state excluded).
    """

    kind: str
    source: WebPage
    target: WebPage
    link: Link | None = None
    form: FormSpec | None = None
    values: tuple[tuple[str, str], ...] = ()


class BrowserObserver:
    """Subscriber interface for browser events (the JS handlers' stand-in)."""

    def on_page(self, page: WebPage) -> None:  # pragma: no cover - interface
        """A page finished loading."""

    def on_action(self, event: ActionEvent) -> None:  # pragma: no cover - interface
        """The user performed a navigation action."""


class Browser:
    """A stateful browser session over a :class:`WebServer`.

    Network time is charged to ``clock`` per the server's latency model;
    ``pages_fetched`` counts successful page loads (the paper's "# of
    pages" measure).
    """

    def __init__(self, server: WebServer, clock: SimClock | None = None) -> None:
        self.server = server
        self.clock = clock or SimClock()
        self.page: WebPage | None = None
        self.history: list[WebPage] = []
        self.pages_fetched = 0
        self._observers: list[BrowserObserver] = []

    def subscribe(self, observer: BrowserObserver) -> None:
        self._observers.append(observer)

    def unsubscribe(self, observer: BrowserObserver) -> None:
        self._observers.remove(observer)

    # -- primitive moves ---------------------------------------------------

    def get(self, url: Url | str) -> WebPage:
        """Load ``url`` directly (typing into the location bar)."""
        if isinstance(url, str):
            from repro.web.http import parse_url

            url = parse_url(url)
        return self._load(Request("GET", url))

    def follow(self, link: Link) -> WebPage:
        """Follow ``link`` from the current page."""
        source = self._require_page()
        target = self._load(Request("GET", link.address))
        self._emit_action(ActionEvent("follow", source, target, link=link))
        return target

    def follow_named(self, name: str) -> WebPage:
        """Follow the link whose display text is ``name`` on the current page."""
        return self.follow(self._require_page().link_named(name))

    def submit(self, form: FormSpec, values: dict[str, str]) -> WebPage:
        """Fill out ``form`` with ``values`` and submit it."""
        source = self._require_page()
        params = form.fill(values)
        if form.method == "GET":
            request = Request("GET", form.action.with_params(params))
        else:
            request = Request("POST", form.action, form_params=params)
        target = self._load(request)
        self._emit_action(
            ActionEvent(
                "submit",
                source,
                target,
                form=form,
                values=tuple(sorted((k, str(v)) for k, v in values.items())),
            )
        )
        return target

    def submit_by_attribute(self, values: dict[str, str]) -> WebPage:
        """Submit the current page's form that carries the given attributes."""
        page = self._require_page()
        first_attr = next(iter(values))
        return self.submit(page.form_with_attribute(first_attr), values)

    def request(self, request: Request) -> WebPage:
        """Issue a raw request (used by the navigation executor, which
        computes requests from navigation expressions rather than from the
        browser's own current page)."""
        return self._load(request)

    # -- internals ----------------------------------------------------------

    def _require_page(self) -> WebPage:
        if self.page is None:
            raise NavigationError("no page loaded")
        return self.page

    MAX_REDIRECTS = 5

    def _fetch_following_redirects(self, request: Request) -> Response:
        """Issue ``request``, transparently following HTTP redirects (the
        POST-then-redirect-to-results pattern of CGI-era sites)."""
        from repro.web.http import parse_url

        for _ in range(self.MAX_REDIRECTS + 1):
            latency = self.server.latency_for(request.url.host)
            try:
                response = self.server.fetch(request)
            except TransientHttpError as exc:
                # The connection was made and dropped: the round trip is spent.
                self.clock.charge(latency.rtt)
                raise TransientNetworkError(str(exc)) from exc
            except HttpError as exc:
                raise NavigationError(str(exc)) from exc
            self.clock.charge(latency.cost(len(response)) + response.extra_latency)
            if response.status in (301, 302, 303, 307) and response.location:
                try:
                    target = parse_url(response.location, base=request.url)
                except ValueError as exc:
                    raise NavigationError(
                        "bad redirect %r from %s" % (response.location, request.url)
                    ) from exc
                request = Request("GET", target)
                continue
            return response
        raise NavigationError("too many redirects from %s" % request.url)

    def _load(self, request: Request) -> WebPage:
        response = self._fetch_following_redirects(request)
        if not response.ok:
            raise NavigationError(
                "HTTP %d fetching %s" % (response.status, request.url)
            )
        page = parse_page(response.final_url or request.url, response.body)
        self.page = page
        self.history.append(page)
        self.pages_fetched += 1
        for observer in self._observers:
            observer.on_page(page)
        return page

    def _emit_action(self, event: ActionEvent) -> None:
        for observer in self._observers:
            observer.on_action(event)
