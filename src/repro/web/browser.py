"""The programmatic browser driving the simulated Web.

The paper instruments a real browser with JavaScript handlers so that the
map builder can observe the designer's actions ("actions are dynamically
intercepted by JavaScript handlers ... when a new page is loaded into the
browser, it is parsed, and a new node corresponding to the page is inserted
into the navigation map").

:class:`Browser` provides the same two event streams — page loads and
actions — through :class:`BrowserObserver` hooks, and offers the three
primitive moves the navigation calculus needs: ``get`` a URL, ``follow`` a
link, and ``submit`` a form.  All three return immutable :class:`WebPage`
values, so the calculus interpreter can backtrack by simply holding on to
earlier pages.
"""

from __future__ import annotations

import asyncio
import threading

from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import WebBaseError
from repro.web.clock import SimClock
from repro.web.http import Request, Response, Url
from repro.web.page import FormSpec, Link, WebPage, parse_page
from repro.web.server import HttpError, TransientHttpError, WebServer


class NavigationError(WebBaseError):
    """A navigation step could not be completed (bad page, failed fetch)."""


class TransientNetworkError(NavigationError):
    """A navigation step failed transiently: retrying may well succeed.

    Raised for injected :class:`~repro.web.server.TransientHttpError`
    outcomes; unlike a plain :class:`NavigationError` (broken site,
    vanished page), callers with a retry budget should re-issue the fetch
    rather than degrade to an empty answer."""


@dataclass(frozen=True)
class ActionEvent:
    """One browsing action, as observed by the map builder.

    ``kind`` is ``"follow"`` or ``"submit"``.  ``source`` is the page the
    action started from; ``target`` the page it produced.  For submits,
    ``form`` is the submitted form spec and ``values`` the attribute values
    the designer supplied (hidden state excluded).
    """

    kind: str
    source: WebPage
    target: WebPage
    link: Link | None = None
    form: FormSpec | None = None
    values: tuple[tuple[str, str], ...] = ()


class BrowserObserver:
    """Subscriber interface for browser events (the JS handlers' stand-in)."""

    def on_page(self, page: WebPage) -> None:  # pragma: no cover - interface
        """A page finished loading."""

    def on_action(self, event: ActionEvent) -> None:  # pragma: no cover - interface
        """The user performed a navigation action."""


def request_key(request: Request) -> tuple:
    """The canonical identity of a request: ``(method, url, form params)``.

    Two requests with the same key fetch the same page on the simulated
    Web (pages are immutable between site *changes*, which bump the
    navigation-map revision).  This is the key of both the executor's
    per-fetch memo and the query-scoped :class:`PrefixPageCache`.
    """
    return (
        request.method,
        str(request.url),
        tuple(sorted(request.form_params.items())),
    )


class PrefixPageCache:
    """A query-scoped, revision-stamped page cache shared across fetches.

    The navigation expressions of one compiled site share a *prefix* —
    the entry page and the intermediate link/form pages leading to the
    final submission.  Within one query, that prefix is identical across
    every probe binding, so this cache lets the shared pages be fetched
    once per query instead of once per binding.

    Entries are keyed ``(host, request_key)`` and stamped with the host's
    navigation-map revision as reported by ``revision_of`` (wired to
    :meth:`~repro.vps.cache.ResultCache.revision`, which site maintenance
    bumps when it absorbs a change).  A lookup re-reads the *current*
    revision and drops mismatched entries, so no page captured under an
    old map is ever served across a revision bump.

    Concurrent misses on one key coalesce (single-flight): the first
    caller fetches, the rest wait and share the page.  Failures are never
    stored — a waiter whose leader failed becomes the next leader.

    Thread-safe; counts ``nav.prefix_hits`` / ``nav.prefix_misses`` /
    ``nav.prefix_coalesced`` into ``metrics`` when given.
    """

    def __init__(
        self,
        revision_of: Callable[[str], int] | None = None,
        metrics: Any = None,
        stamp_sink: Callable[[str, int], None] | None = None,
    ) -> None:
        self._revision_of = revision_of or (lambda host: 0)
        self.metrics = metrics
        # Cluster federation hook: called (host, revision) whenever a
        # leader stores a freshly walked page, so the worker can report
        # which hosts it holds warm prefixes for (fail-open, best effort).
        self._stamp_sink = stamp_sink
        self._pages: dict[tuple, tuple[int, WebPage]] = {}
        self._flights: dict[tuple, Any] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        # Entries fetched *speculatively* (ahead of demand).  The first
        # demand hit on one "consumes" it — reported to ``budget`` (a
        # :class:`~repro.navigation.prefetch.SpeculationBudget`, when the
        # execution engine wires one) so a page that turned out useful
        # stops counting against the host's wasted-pages allowance.
        self._speculative: set[tuple] = set()
        self.budget: Any = None

    def __len__(self) -> int:
        with self._lock:
            return len(self._pages)

    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc()

    def _consumed_locked(self, host: str, key: tuple) -> None:
        """A demand hit landed on a speculatively fetched page (caller
        holds the lock): settle it with the speculation budget."""
        if (host, key) in self._speculative:
            self._speculative.discard((host, key))
            self._count("nav.speculation_consumed")
            if self.budget is not None:
                self.budget.consumed(host)

    def _dropped_locked(self, host: str, key: tuple) -> None:
        """A stale entry was dropped (caller holds the lock): a
        speculative one never paid off, so report it wasted."""
        if (host, key) in self._speculative:
            self._speculative.discard((host, key))
            if self.budget is not None:
                self.budget.wasted(host)

    def lookup(self, host: str, key: tuple) -> WebPage | None:
        """The cached page under ``key``, or ``None`` — dropping (and not
        serving) entries stored under a superseded map revision."""
        revision = self._revision_of(host)
        with self._lock:
            entry = self._pages.get((host, key))
            if entry is None:
                return None
            stored_revision, page = entry
            if stored_revision != revision:
                del self._pages[(host, key)]
                self._dropped_locked(host, key)
                return None
            self._consumed_locked(host, key)
            return page

    def get(self, host: str, request: Request) -> WebPage | None:
        return self.lookup(host, request_key(request))

    def acquire(self, host: str, key: tuple):
        """Claim ``key``: ``("hit", page, None)`` when cached, ``("lead",
        flight, revision)`` when this caller must fetch, or ``("wait",
        flight, None)`` when another caller is already fetching it.  A
        leader must call :meth:`fulfill` or :meth:`abandon`."""
        from repro.vps.cache import InFlight

        revision = self._revision_of(host)
        with self._lock:
            entry = self._pages.get((host, key))
            if entry is not None:
                if entry[0] == revision:
                    self.hits += 1
                    self._count("nav.prefix_hits")
                    self._consumed_locked(host, key)
                    return ("hit", entry[1], None)
                del self._pages[(host, key)]
                self._dropped_locked(host, key)
            flight = self._flights.get((host, key))
            if flight is not None:
                self._count("nav.prefix_coalesced")
                return ("wait", flight, None)
            flight = self._flights[(host, key)] = InFlight()
            self.misses += 1
            self._count("nav.prefix_misses")
            return ("lead", flight, revision)

    def try_lead(self, host: str, key: tuple):
        """Non-blocking claim for speculative work: ``(flight, revision)``
        when the caller should fetch, ``None`` when the page is already
        cached or someone else is on it (nothing to do)."""
        from repro.vps.cache import InFlight

        revision = self._revision_of(host)
        with self._lock:
            entry = self._pages.get((host, key))
            if entry is not None and entry[0] == revision:
                return None
            if (host, key) in self._flights:
                return None
            flight = self._flights[(host, key)] = InFlight()
            self.misses += 1
            self._count("nav.prefix_misses")
            return (flight, revision)

    def fulfill(
        self,
        host: str,
        key: tuple,
        flight: Any,
        page: WebPage,
        revision: int,
        speculative: bool = False,
    ) -> None:
        """Store a leader's fetched page (unless the revision moved while
        it was in flight) and release the waiters.  ``speculative`` marks
        the entry as fetched ahead of demand: its first demand hit settles
        it with the speculation budget."""
        stored = False
        with self._lock:
            if revision == self._revision_of(host):
                self._pages[(host, key)] = (revision, page)
                stored = True
                if speculative:
                    self._speculative.add((host, key))
            elif speculative and self.budget is not None:
                self.budget.wasted(host)
            self._flights.pop((host, key), None)
        flight.result = page
        flight.event.set()
        if stored and self._stamp_sink is not None:
            try:
                self._stamp_sink(host, revision)
            except Exception:  # noqa: BLE001 - the sink must never break a fetch
                pass

    def abandon(self, host: str, key: tuple, flight: Any, error: BaseException | None = None) -> None:
        """A leader's fetch failed: nothing is stored, waiters retry."""
        with self._lock:
            self._flights.pop((host, key), None)
        flight.error = error
        flight.event.set()


class Browser:
    """A stateful browser session over a :class:`WebServer`.

    Network time is charged to ``clock`` per the server's latency model;
    ``pages_fetched`` counts successful page loads (the paper's "# of
    pages" measure).
    """

    def __init__(self, server: WebServer, clock: SimClock | None = None) -> None:
        self.server = server
        self.clock = clock or SimClock()
        self.page: WebPage | None = None
        self.history: list[WebPage] = []
        self.pages_fetched = 0
        self._observers: list[BrowserObserver] = []

    def subscribe(self, observer: BrowserObserver) -> None:
        self._observers.append(observer)

    def unsubscribe(self, observer: BrowserObserver) -> None:
        self._observers.remove(observer)

    # -- primitive moves ---------------------------------------------------

    def get(self, url: Url | str) -> WebPage:
        """Load ``url`` directly (typing into the location bar)."""
        if isinstance(url, str):
            from repro.web.http import parse_url

            url = parse_url(url)
        return self._load(Request("GET", url))

    def follow(self, link: Link) -> WebPage:
        """Follow ``link`` from the current page."""
        source = self._require_page()
        target = self._load(Request("GET", link.address))
        self._emit_action(ActionEvent("follow", source, target, link=link))
        return target

    def follow_named(self, name: str) -> WebPage:
        """Follow the link whose display text is ``name`` on the current page."""
        return self.follow(self._require_page().link_named(name))

    def submit(self, form: FormSpec, values: dict[str, str]) -> WebPage:
        """Fill out ``form`` with ``values`` and submit it."""
        source = self._require_page()
        params = form.fill(values)
        if form.method == "GET":
            request = Request("GET", form.action.with_params(params))
        else:
            request = Request("POST", form.action, form_params=params)
        target = self._load(request)
        self._emit_action(
            ActionEvent(
                "submit",
                source,
                target,
                form=form,
                values=tuple(sorted((k, str(v)) for k, v in values.items())),
            )
        )
        return target

    def submit_by_attribute(self, values: dict[str, str]) -> WebPage:
        """Submit the current page's form that carries the given attributes."""
        page = self._require_page()
        first_attr = next(iter(values))
        return self.submit(page.form_with_attribute(first_attr), values)

    def request(self, request: Request) -> WebPage:
        """Issue a raw request (used by the navigation executor, which
        computes requests from navigation expressions rather than from the
        browser's own current page)."""
        return self._load(request)

    def request_cached(
        self,
        request: Request,
        cache: PrefixPageCache,
        on_live: Callable[[], None] | None = None,
        poll: Callable[[], None] | None = None,
    ) -> tuple[WebPage, bool]:
        """Issue ``request`` through a shared :class:`PrefixPageCache`.

        Returns ``(page, live)`` where ``live`` says whether *this* call
        navigated the site (a cache hit or a coalesced wait costs no live
        traffic).  ``on_live`` runs just before an actual navigation — the
        executor's page-budget check hooks in there, so cached pages never
        count against a fetch's budget.  Failed fetches are never cached;
        a waiter whose leader failed retries as the new leader.  ``poll``
        runs periodically while waiting on another caller's in-flight
        fetch, so a cancelled access stops waiting instead of riding out a
        leader it no longer wants.
        """
        key = request_key(request)
        host = request.url.host
        while True:
            outcome, payload, revision = cache.acquire(host, key)
            if outcome == "hit":
                return payload, False
            if outcome == "wait":
                if poll is None:
                    payload.event.wait()
                else:
                    while not payload.event.wait(0.05):
                        poll()
                if payload.error is None and payload.result is not None:
                    return payload.result, False
                continue  # the leader failed; try to lead ourselves
            flight = payload
            try:
                if on_live is not None:
                    on_live()
                page = self.request(request)
            except BaseException as exc:
                cache.abandon(host, key, flight, error=exc)
                raise
            cache.fulfill(host, key, flight, page, revision)
            return page, True

    # -- internals ----------------------------------------------------------

    def _require_page(self) -> WebPage:
        if self.page is None:
            raise NavigationError("no page loaded")
        return self.page

    MAX_REDIRECTS = 5

    def _fetch_following_redirects(self, request: Request) -> Response:
        """Issue ``request``, transparently following HTTP redirects (the
        POST-then-redirect-to-results pattern of CGI-era sites)."""
        from repro.web.http import parse_url

        for _ in range(self.MAX_REDIRECTS + 1):
            latency = self.server.latency_for(request.url.host)
            try:
                response = self.server.fetch(request)
            except TransientHttpError as exc:
                # The connection was made and dropped: the round trip is spent.
                self.clock.charge(latency.rtt)
                raise TransientNetworkError(str(exc)) from exc
            except HttpError as exc:
                raise NavigationError(str(exc)) from exc
            self.clock.charge(latency.cost(len(response)) + response.extra_latency)
            if response.status in (301, 302, 303, 307) and response.location:
                try:
                    target = parse_url(response.location, base=request.url)
                except ValueError as exc:
                    raise NavigationError(
                        "bad redirect %r from %s" % (response.location, request.url)
                    ) from exc
                request = Request("GET", target)
                continue
            return response
        raise NavigationError("too many redirects from %s" % request.url)

    def _load(self, request: Request) -> WebPage:
        response = self._fetch_following_redirects(request)
        if not response.ok:
            raise NavigationError(
                "HTTP %d fetching %s" % (response.status, request.url)
            )
        page = parse_page(response.final_url or request.url, response.body)
        self.page = page
        self.history.append(page)
        self.pages_fetched += 1
        for observer in self._observers:
            observer.on_page(page)
        return page

    def _emit_action(self, event: ActionEvent) -> None:
        for observer in self._observers:
            observer.on_action(event)


class AsyncBrowser:
    """The browser's coroutine twin, for the async navigation fabric.

    Where :class:`Browser` charges network latency to a
    :class:`~repro.web.clock.SimClock` (serializing fetches on a worker's
    simulated connection), the async browser *awaits* it —
    ``asyncio.sleep(latency)`` on the fabric's virtual-time loop — so
    latencies of concurrent page fetches overlap instead of adding up.
    ``network_seconds`` accumulates what this browser awaited (the
    per-fetch accounting the trace records); the loop's elapsed virtual
    time is the makespan.

    One instance per in-flight binding: the browser is as stateful as its
    sync twin (``pages_fetched``), and per-binding instances keep
    interleaved fetches from seeing each other's counters.
    """

    MAX_REDIRECTS = Browser.MAX_REDIRECTS

    def __init__(self, server: WebServer) -> None:
        self.server = server
        self.pages_fetched = 0
        self.network_seconds = 0.0

    async def _charge(self, seconds: float) -> None:
        self.network_seconds += seconds
        if seconds > 0:
            await asyncio.sleep(seconds)

    async def _fetch_following_redirects(self, request: Request) -> Response:
        from repro.web.http import parse_url

        for _ in range(self.MAX_REDIRECTS + 1):
            latency = self.server.latency_for(request.url.host)
            try:
                response = self.server.fetch(request)
            except TransientHttpError as exc:
                # The connection was made and dropped: the round trip is spent.
                await self._charge(latency.rtt)
                raise TransientNetworkError(str(exc)) from exc
            except HttpError as exc:
                raise NavigationError(str(exc)) from exc
            await self._charge(latency.cost(len(response)) + response.extra_latency)
            if response.status in (301, 302, 303, 307) and response.location:
                try:
                    target = parse_url(response.location, base=request.url)
                except ValueError as exc:
                    raise NavigationError(
                        "bad redirect %r from %s" % (response.location, request.url)
                    ) from exc
                request = Request("GET", target)
                continue
            return response
        raise NavigationError("too many redirects from %s" % request.url)

    async def request(self, request: Request) -> WebPage:
        """Issue a raw request; awaits the simulated transfer time."""
        response = await self._fetch_following_redirects(request)
        if not response.ok:
            raise NavigationError(
                "HTTP %d fetching %s" % (response.status, request.url)
            )
        page = parse_page(response.final_url or request.url, response.body)
        self.pages_fetched += 1
        return page

    async def request_cached(
        self,
        request: Request,
        cache: PrefixPageCache,
        on_live: Callable[[], None] | None = None,
        poll: Callable[[], None] | None = None,
        gate: "asyncio.Semaphore | None" = None,
    ) -> tuple[WebPage, bool]:
        """Async twin of :meth:`Browser.request_cached`, sharing the same
        :class:`PrefixPageCache` and single-flight protocol.

        A coalesced wait polls the leader's flight event with *virtual*
        sleeps — free in real time, deterministic in order — running
        ``poll`` (the fabric's cancellation checkpoint) each round so a
        cancelled access stops waiting.  On the fabric every leader is a
        coroutine on the same loop, so the wait always resolves within the
        loop's own schedule.  ``gate`` (the fabric's per-host connection
        semaphore) is held only across a *live* navigation — never while
        waiting on another caller's flight, which could starve the very
        leader being waited on.
        """
        key = request_key(request)
        host = request.url.host
        while True:
            outcome, payload, revision = cache.acquire(host, key)
            if outcome == "hit":
                return payload, False
            if outcome == "wait":
                while not payload.event.is_set():
                    if poll is not None:
                        poll()
                    await asyncio.sleep(0.02)
                if payload.error is None and payload.result is not None:
                    return payload.result, False
                continue  # the leader failed; try to lead ourselves
            flight = payload
            try:
                if on_live is not None:
                    on_live()
                if gate is None:
                    page = await self.request(request)
                else:
                    async with gate:
                        page = await self.request(request)
            except BaseException as exc:
                cache.abandon(host, key, flight, error=exc)
                raise
            cache.fulfill(host, key, flight, page, revision)
            return page, True
