"""Simulated time for the networked parts of the webbase.

The paper's timing table (Section 7) separates *cpu time* (parsing, query
evaluation) from *elapsed time* (cpu plus network waits).  Our Web is
in-process, so network waits must be simulated: every request charges a
latency computed from a :class:`LatencyModel` to a :class:`SimClock`.

Real cpu time is still measured with :func:`time.process_time`; benches
report ``elapsed = cpu + simulated network time``, preserving the paper's
cpu-vs-elapsed shape without depending on a real network.
"""

from __future__ import annotations

import time
from dataclasses import dataclass


@dataclass
class LatencyModel:
    """Per-request network cost model, in seconds.

    ``rtt``
        fixed round-trip cost per request (connection + server turnaround).
    ``per_kilobyte``
        transfer cost per kilobyte of response body.
    """

    rtt: float = 0.35
    per_kilobyte: float = 0.012

    def cost(self, response_bytes: int) -> float:
        """Network seconds consumed by one request with this response size."""
        return self.rtt + self.per_kilobyte * (response_bytes / 1024.0)


class SimClock:
    """Accumulates simulated network seconds.

    Thread-safe enough for the parallel fetcher: each worker owns its own
    clock and the parallel elapsed time is the max across workers (requests
    on one connection are serial; connections are concurrent).
    """

    def __init__(self) -> None:
        self._network_seconds = 0.0

    @property
    def network_seconds(self) -> float:
        """Total simulated network seconds charged so far."""
        return self._network_seconds

    def charge(self, seconds: float) -> None:
        """Charge ``seconds`` of simulated network time."""
        if seconds < 0:
            raise ValueError("cannot charge negative time: %r" % seconds)
        self._network_seconds += seconds

    def reset(self) -> float:
        """Zero the clock, returning the value it held."""
        held = self._network_seconds
        self._network_seconds = 0.0
        return held


class CpuTimer:
    """Measures real process cpu time between :meth:`start` and :meth:`stop`."""

    def __init__(self) -> None:
        self._started_at: float | None = None
        self.seconds = 0.0

    def start(self) -> "CpuTimer":
        self._started_at = time.process_time()
        return self

    def stop(self) -> float:
        """Stop the timer, accumulating and returning the measured interval."""
        if self._started_at is None:
            raise RuntimeError("timer was not started")
        interval = time.process_time() - self._started_at
        self._started_at = None
        self.seconds += interval
        return interval

    def __enter__(self) -> "CpuTimer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
