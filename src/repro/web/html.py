"""HTML generation for the simulated Web sites.

Sites in :mod:`repro.sites` build their pages through this small element
tree instead of string concatenation, so page structure stays explicit and
the test suite can construct pages programmatically.

A :class:`RenderStyle` can deliberately degrade the output — unclosed list
items, uppercase tags, unquoted attribute values — because the paper reports
that "the main problem we face while mapping sites is the presence of faulty
HTML".  Sites with a sloppy style exercise the tolerant parser end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field


# Tags commonly left unclosed on the 1999 Web; the sloppy renderer omits
# their end tags and the parser must auto-close them.
OPTIONAL_END_TAGS = frozenset({"li", "p", "tr", "td", "th", "option", "dt", "dd"})

# Tags that never have content.
VOID_TAGS = frozenset({"br", "hr", "img", "input", "meta"})


@dataclass
class RenderStyle:
    """Controls how faithfully an element tree is serialized to HTML."""

    uppercase_tags: bool = False
    omit_optional_end_tags: bool = False
    unquoted_attributes: bool = False

    @classmethod
    def clean(cls) -> "RenderStyle":
        return cls()

    @classmethod
    def sloppy(cls) -> "RenderStyle":
        """The worst offender: every degradation at once."""
        return cls(
            uppercase_tags=True,
            omit_optional_end_tags=True,
            unquoted_attributes=True,
        )


def escape(text: str) -> str:
    """Escape text content for inclusion in HTML."""
    return (
        text.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        .replace('"', "&quot;")
    )


@dataclass
class Element:
    """One HTML element: a tag, attributes, and child elements or text."""

    tag: str
    attrs: dict[str, str] = field(default_factory=dict)
    children: list["Element | str"] = field(default_factory=list)

    def add(self, *nodes: "Element | str") -> "Element":
        """Append children and return self (enables fluent construction)."""
        self.children.extend(nodes)
        return self

    def render(self, style: RenderStyle | None = None) -> str:
        style = style or RenderStyle.clean()
        out: list[str] = []
        self._render_into(out, style)
        return "".join(out)

    def _render_into(self, out: list[str], style: RenderStyle) -> None:
        tag = self.tag.upper() if style.uppercase_tags else self.tag
        out.append("<%s" % tag)
        for name, value in self.attrs.items():
            bare = value.replace('"', "")
            plain = bare and all(c.isalnum() or c in "-_./:" for c in bare)
            if style.unquoted_attributes and plain:
                out.append(" %s=%s" % (name, bare))
            else:
                out.append(' %s="%s"' % (name, escape(value)))
        out.append(">")
        if self.tag in VOID_TAGS:
            return
        for child in self.children:
            if isinstance(child, Element):
                child._render_into(out, style)
            else:
                out.append(escape(child))
        if style.omit_optional_end_tags and self.tag in OPTIONAL_END_TAGS:
            out.append("\n")
        else:
            out.append("</%s>" % tag)


def el(tag: str, *children: Element | str, **attrs: str) -> Element:
    """Shorthand element constructor: ``el('a', 'text', href='/x')``."""
    return Element(tag, dict(attrs), list(children))


def link(href: str, text: str, **attrs: str) -> Element:
    return el("a", text, href=href, **attrs)


def text_input(name: str, value: str = "", size: int = 20) -> Element:
    return el("input", type="text", name=name, value=value, size=str(size))


def hidden_input(name: str, value: str) -> Element:
    return el("input", type="hidden", name=name, value=value)


def submit_button(label: str = "Submit") -> Element:
    return el("input", type="submit", value=label)


def select(name: str, options: list[str], selected: str | None = None) -> Element:
    """A single-valued ``<select>`` whose options define the attribute domain."""
    widget = el("select", name=name)
    for option in options:
        attrs = {"value": option}
        if option == selected:
            attrs["selected"] = "selected"
        widget.add(Element("option", attrs, [option]))
    return widget


def radio_group(name: str, options: list[str], checked: str | None = None) -> list[Element]:
    """Radio buttons for ``name``; the paper treats radio attributes as mandatory."""
    widgets: list[Element] = []
    for option in options:
        attrs = {"type": "radio", "name": name, "value": option}
        if option == checked:
            attrs["checked"] = "checked"
        widgets.append(Element("input", attrs))
        widgets.append(Element("span", {}, [option]))
    return widgets


def checkbox(name: str, value: str = "on", checked: bool = False) -> Element:
    attrs = {"type": "checkbox", "name": name, "value": value}
    if checked:
        attrs["checked"] = "checked"
    return Element("input", attrs)


def form(action: str, *children: Element | str, method: str = "post") -> Element:
    return el("form", *children, action=action, method=method)


def labeled(label: str, widget: Element) -> Element:
    """A label/widget pair; the map builder reads the label as the attr name hint."""
    return el("p", el("b", label + ": "), widget)


def table(headers: list[str], rows: list[list[str]], **attrs: str) -> Element:
    """A data table; result pages use these and the extractor consumes them."""
    node = el("table", border="1", **attrs)
    if headers:
        node.add(el("tr", *[el("th", h) for h in headers]))
    for row in rows:
        node.add(el("tr", *[el("td", cell) for cell in row]))
    return node


def bullet_links(items: list[tuple[str, str]]) -> Element:
    """A ``<ul>`` of links — how sites expose implicit link-defined attributes."""
    return el("ul", *[el("li", link(href, text)) for text, href in items])


def page(title: str, *body: Element | str) -> Element:
    """A complete HTML document."""
    return el(
        "html",
        el("head", el("title", title)),
        el("body", el("h1", title), *body),
    )
