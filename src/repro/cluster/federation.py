"""The cross-shard cache federation: a router-owned revision bus.

Workers publish their result-cache fills — extracted VPS relations,
stamped with the host's navigation-map revision — and every host's
latest revision to one :class:`FederationCache` living in the router
process.  Before paying for a live fetch, a worker's flight leader asks
the federation first: a prefix walked on shard A thereby amortizes for
clients landing on shard B, with PR 2/PR 5's revision-stamp invalidation
preserved *by construction* — an entry is served only when its stamp
equals both the requester's and the federation's current revision for
the host, so nothing captured under a superseded navigation map ever
crosses shards.

Claims extend single-flight across the cluster: before paying for a
fill the federation also missed, a shard *claims* the key; a sibling
whose claim is denied polls for the holder's publish instead of
duplicating the walk.  Claims expire (``claim_ttl``) so a crashed
holder never wedges its waiters — the first shard to re-contend adopts
the orphaned key and fetches.

Transport is the same line-delimited JSON/TCP idiom as the service
protocol (one request frame per line, one response line back), served by
:class:`FederationServer` and spoken by the thread-safe
:class:`FederationClient` that plugs into
:attr:`repro.vps.cache.ResultCache.federation`.  Every client call is
fail-open at the caller: a dead federation degrades shards to their
local caches, never to an error.
"""

from __future__ import annotations

import json
import os
import socket
import socketserver
import threading
import time
from collections import OrderedDict
from typing import Any

from repro.relational.relation import Relation
from repro.store.tiered import KeyPairs, key_from_json, key_to_json

MAX_LINE_BYTES = 8 * 1024 * 1024


class FederationCache:
    """The in-memory federated store: fills + revision stamps, bounded.

    Thread-safe.  ``revisions`` tracks the highest navigation-map
    revision any shard has reported per host; entries stamped lower are
    dead and evicted lazily.  ``page_stamps`` records which hosts have
    warm prefix pages somewhere in the cluster (observability only).
    """

    def __init__(
        self,
        max_entries: int = 4096,
        metrics: Any = None,
        claim_ttl: float = 15.0,
    ) -> None:
        self.max_entries = max_entries
        self.metrics = metrics
        self.claim_ttl = claim_ttl
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple[str, KeyPairs], dict[str, Any]] = (
            OrderedDict()
        )
        self._revisions: dict[str, int] = {}
        self._page_stamps: dict[str, int] = {}
        # Cluster-wide single-flight: (relation, key) -> (holder, stamp).
        # The holder is filling that key; sibling shards wait for its
        # publish instead of duplicating the walk.  Claims expire after
        # ``claim_ttl`` so a crashed holder never wedges its waiters.
        self._claims: dict[tuple[str, KeyPairs], tuple[str, float]] = {}

    def _count(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc(amount)

    def advance_revision(self, host: str, revision: int) -> None:
        """A shard reported ``host`` at ``revision``: adopt the max and
        drop every federated entry stamped older."""
        with self._lock:
            if revision <= self._revisions.get(host, 0):
                return
            self._revisions[host] = revision
            stale = [
                key
                for key, record in self._entries.items()
                if record["host"] == host and record["revision"] != revision
            ]
            for key in stale:
                del self._entries[key]
            if stale:
                self._count("cluster.fed_evictions", len(stale))

    def page_stamp(self, host: str, revision: int) -> None:
        with self._lock:
            self._page_stamps[host] = max(
                revision, self._page_stamps.get(host, 0)
            )

    def claim(self, relation: str, key: KeyPairs, holder: str) -> bool:
        """Grant ``holder`` the exclusive right to fill ``(relation, key)``.

        Denied while another live holder owns the claim; granted when the
        slot is free, expired, or already ours (re-claiming refreshes the
        stamp, which doubles as a keep-alive for long walks).
        """
        with self._lock:
            now = time.monotonic()
            if len(self._claims) > 4 * self.max_entries:
                # A crashed fleet could strand claims; sweep the dead ones
                # before the dict grows without bound.
                expired = [
                    k
                    for k, (_, stamp) in self._claims.items()
                    if now - stamp >= self.claim_ttl
                ]
                for k in expired:
                    del self._claims[k]
            current = self._claims.get((relation, key))
            if (
                current is not None
                and current[0] != holder
                and now - current[1] < self.claim_ttl
            ):
                self._count("cluster.fed_claims_held")
                return False
            self._claims[(relation, key)] = (holder, now)
            self._count("cluster.fed_claims")
            return True

    def release(self, relation: str, key: KeyPairs, holder: str) -> None:
        """Drop ``holder``'s claim (a fill that failed or was not stored);
        a non-holder's release is a no-op."""
        with self._lock:
            current = self._claims.get((relation, key))
            if current is not None and current[0] == holder:
                del self._claims[(relation, key)]

    def publish(
        self,
        relation: str,
        host: str,
        key: KeyPairs,
        revision: int,
        schema: list[str],
        rows: list[list[Any]],
    ) -> bool:
        """Store one fill, unless its stamp is already superseded."""
        with self._lock:
            # The fill landed: whoever claimed it is done, and waiters
            # should find the entry on their next lookup.
            self._claims.pop((relation, key), None)
            known = self._revisions.get(host, 0)
            if revision < known:
                self._count("cluster.fed_rejected")
                return False
            if revision > known:
                self._revisions[host] = known = revision
                stale = [
                    k
                    for k, record in self._entries.items()
                    if record["host"] == host and record["revision"] != revision
                ]
                for k in stale:
                    del self._entries[k]
            self._entries[(relation, key)] = {
                "host": host,
                "revision": revision,
                "schema": list(schema),
                "rows": [list(row) for row in rows],
            }
            self._entries.move_to_end((relation, key))
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self._count("cluster.fed_evictions")
            self._count("cluster.fed_publishes")
            if self.metrics is not None:
                self.metrics.gauge("cluster.fed_entries").set(len(self._entries))
            return True

    def lookup(
        self, relation: str, host: str, key: KeyPairs, revision: int
    ) -> dict[str, Any] | None:
        """The fill for ``(relation, key)`` iff it is current both for the
        requester (its ``revision``) and for the federation's view."""
        with self._lock:
            known = self._revisions.get(host, 0)
            if revision > known:
                # The requester is ahead of us: adopt its stamp; whatever
                # we held for the host is superseded.
                self._revisions[host] = known = revision
                stale = [
                    k
                    for k, record in self._entries.items()
                    if record["host"] == host and record["revision"] != revision
                ]
                for k in stale:
                    del self._entries[k]
            record = self._entries.get((relation, key))
            if (
                record is None
                or record["revision"] != revision
                or record["revision"] != known
            ):
                self._count("cluster.fed_lookup_misses")
                return None
            self._entries.move_to_end((relation, key))
            self._count("cluster.fed_lookup_hits")
            return {"schema": record["schema"], "rows": record["rows"]}

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "claims": len(self._claims),
                "revisions": dict(sorted(self._revisions.items())),
                "page_stamps": dict(sorted(self._page_stamps.items())),
            }


class _FederationHandler(socketserver.StreamRequestHandler):
    server: "FederationServer"

    def handle(self) -> None:
        cache = self.server.cache
        while True:
            try:
                line = self.rfile.readline(MAX_LINE_BYTES + 2)
            except (OSError, ValueError):
                return
            if not line:
                return
            if not line.strip():
                continue
            try:
                frame = json.loads(line.decode("utf-8"))
                reply = self._dispatch(cache, frame)
            except Exception as exc:  # noqa: BLE001 - answer, don't die
                reply = {"ok": False, "error": str(exc)}
            try:
                self.wfile.write(
                    (json.dumps(reply, separators=(",", ":")) + "\n").encode(
                        "utf-8"
                    )
                )
                self.wfile.flush()
            except (OSError, ValueError):
                return

    def _dispatch(self, cache: FederationCache, frame: dict[str, Any]) -> dict:
        op = frame.get("op")
        if op == "lookup":
            found = cache.lookup(
                str(frame["relation"]),
                str(frame["host"]),
                key_from_json(frame["key"]),
                int(frame["revision"]),
            )
            if found is None:
                return {"ok": True, "hit": False}
            return {"ok": True, "hit": True, **found}
        if op == "publish":
            stored = cache.publish(
                str(frame["relation"]),
                str(frame["host"]),
                key_from_json(frame["key"]),
                int(frame["revision"]),
                list(frame["schema"]),
                list(frame["rows"]),
            )
            return {"ok": True, "stored": stored}
        if op == "claim":
            granted = cache.claim(
                str(frame["relation"]),
                key_from_json(frame["key"]),
                str(frame["holder"]),
            )
            return {"ok": True, "granted": granted}
        if op == "release":
            cache.release(
                str(frame["relation"]),
                key_from_json(frame["key"]),
                str(frame["holder"]),
            )
            return {"ok": True}
        if op == "revision":
            cache.advance_revision(str(frame["host"]), int(frame["revision"]))
            return {"ok": True}
        if op == "page_stamp":
            cache.page_stamp(str(frame["host"]), int(frame["revision"]))
            return {"ok": True}
        if op == "stats":
            return {"ok": True, "stats": cache.stats()}
        return {"ok": False, "error": "unknown op %r" % op}


class FederationServer:
    """The TCP front of one :class:`FederationCache` (router-owned)."""

    def __init__(
        self,
        cache: FederationCache | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        metrics: Any = None,
    ) -> None:
        self.cache = cache or FederationCache(metrics=metrics)
        self._server = socketserver.ThreadingTCPServer(
            (host, port), _FederationHandler, bind_and_activate=True
        )
        self._server.allow_reuse_address = True
        self._server.daemon_threads = True
        self._server.cache = self.cache  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    def start(self) -> tuple[str, int]:
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="federation-server",
            daemon=True,
        )
        self._thread.start()
        return self.address

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)


class FederationClient:
    """A worker's connection to the federation bus.

    Thread-safe (one socket, one lock — federation round trips are tiny
    and local).  Raises on transport errors; the result cache's callers
    treat any raise as a miss (fail-open), and the next call reconnects.
    """

    def __init__(
        self, host: str, port: int, timeout: float = 5.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        # Claim holder identity: unique per worker process (and per
        # client object, so tests with several in-process clients never
        # collide).
        self._holder = "pid%d-%x" % (os.getpid(), id(self))
        self._lock = threading.Lock()
        self._sock: socket.socket | None = None
        self._buf = b""

    def _connect(self) -> socket.socket:
        if self._sock is None:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
            self._buf = b""
        return self._sock

    def _roundtrip(self, frame: dict[str, Any]) -> dict[str, Any]:
        with self._lock:
            try:
                sock = self._connect()
                sock.sendall(
                    (json.dumps(frame, separators=(",", ":")) + "\n").encode(
                        "utf-8"
                    )
                )
                while b"\n" not in self._buf:
                    chunk = sock.recv(65536)
                    if not chunk:
                        raise ConnectionError("federation closed the connection")
                    self._buf += chunk
                line, _, self._buf = self._buf.partition(b"\n")
            except Exception:
                # Drop the socket so the next call starts clean.
                if self._sock is not None:
                    try:
                        self._sock.close()
                    except OSError:
                        pass
                    self._sock = None
                raise
        reply = json.loads(line.decode("utf-8"))
        if not reply.get("ok"):
            raise RuntimeError(
                "federation rejected %r: %s" % (frame.get("op"), reply.get("error"))
            )
        return reply

    # -- the ResultCache.federation protocol ----------------------------------

    def lookup(
        self, relation: str, host: str, key: KeyPairs, revision: int
    ) -> Relation | None:
        reply = self._roundtrip(
            {
                "op": "lookup",
                "relation": relation,
                "host": host,
                "key": key_to_json(key),
                "revision": revision,
            }
        )
        if not reply.get("hit"):
            return None
        return Relation(
            list(reply["schema"]), [tuple(row) for row in reply["rows"]]
        )

    def publish(
        self,
        relation: str,
        host: str,
        key: KeyPairs,
        revision: int,
        value: Relation,
    ) -> None:
        self._roundtrip(
            {
                "op": "publish",
                "relation": relation,
                "host": host,
                "key": key_to_json(key),
                "revision": revision,
                "schema": list(value.schema),
                "rows": [list(row) for row in value.rows],
            }
        )

    def claim(self, relation: str, key: KeyPairs) -> bool:
        reply = self._roundtrip(
            {
                "op": "claim",
                "relation": relation,
                "key": key_to_json(key),
                "holder": self._holder,
            }
        )
        return bool(reply.get("granted"))

    def release(self, relation: str, key: KeyPairs) -> None:
        self._roundtrip(
            {
                "op": "release",
                "relation": relation,
                "key": key_to_json(key),
                "holder": self._holder,
            }
        )

    def publish_revision(self, host: str, revision: int) -> None:
        self._roundtrip({"op": "revision", "host": host, "revision": revision})

    def page_stamp(self, host: str, revision: int) -> None:
        self._roundtrip({"op": "page_stamp", "host": host, "revision": revision})

    def stats(self) -> dict[str, Any]:
        return dict(self._roundtrip({"op": "stats"})["stats"])

    def close(self) -> None:
        with self._lock:
            if self._sock is not None:
                try:
                    self._sock.close()
                except OSError:
                    pass
                self._sock = None
