"""The sharded multi-process cluster tier (router, workers, federation).

See DESIGN.md §14.  The router speaks the same wire protocol as a
single-process service; host-affinity routing, cross-shard cache
federation, and crash takeover live behind it.
"""

from repro.cluster.federation import (
    FederationCache,
    FederationClient,
    FederationServer,
)
from repro.cluster.hashring import HashRing, score
from repro.cluster.health import HealthMonitor, ping
from repro.cluster.router import (
    ClusterConfig,
    ClusterRouter,
    LocalCluster,
    base_names,
)
from repro.cluster.worker import (
    WorkerHandle,
    build_worker_service,
    spawn_worker,
    worker_main,
)

__all__ = [
    "ClusterConfig",
    "ClusterRouter",
    "FederationCache",
    "FederationClient",
    "FederationServer",
    "HashRing",
    "HealthMonitor",
    "LocalCluster",
    "WorkerHandle",
    "base_names",
    "build_worker_service",
    "ping",
    "score",
    "spawn_worker",
    "worker_main",
]
