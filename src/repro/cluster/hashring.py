"""Rendezvous (highest-random-weight) hashing for host-affinity sharding.

Every (shard, key) pair gets a deterministic pseudo-random score from a
cryptographic digest; a key is owned by the live shard with the highest
score.  Two properties make HRW the right fit for the cluster tier:

* **minimal reshuffle** — removing a shard only moves the keys *it*
  owned (each surviving shard's scores are untouched, so every other
  key keeps its owner); adding a shard only steals the keys it now wins.
  The property test in ``tests/test_hashring.py`` pins both directions.
* **derived successor order** — :meth:`HashRing.ranked` gives the full
  preference list per key, so "the successor in the HRW order adopts a
  dead shard's hosts" needs no extra coordination state: everyone who
  knows the member list computes the same takeover plan.

Scores are SHA-1 based, so they are stable across processes and Python
hash randomization — a router and its workers always agree.
"""

from __future__ import annotations

import hashlib
from typing import Iterable


def score(node: str, key: str) -> int:
    """The deterministic HRW weight of ``node`` for ``key``."""
    digest = hashlib.sha1(
        ("%s|%s" % (node, key)).encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """The live membership set plus HRW ownership queries."""

    def __init__(self, nodes: Iterable[str] = ()) -> None:
        self._nodes: set[str] = set(nodes)

    # -- membership ----------------------------------------------------------

    @property
    def nodes(self) -> frozenset[str]:
        return frozenset(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def add(self, node: str) -> None:
        self._nodes.add(node)

    def remove(self, node: str) -> None:
        self._nodes.discard(node)

    # -- ownership -----------------------------------------------------------

    def ranked(self, key: str) -> list[str]:
        """Every live node, highest score first (ties broken by name so
        the order is total and identical on every peer)."""
        return sorted(self._nodes, key=lambda node: (-score(node, key), node))

    def owner(self, key: str) -> str:
        """The live node owning ``key``; raises on an empty ring."""
        if not self._nodes:
            raise LookupError("hash ring has no live nodes")
        return self.ranked(key)[0]

    def successor(self, key: str, dead: str) -> str | None:
        """Who owns ``key`` once ``dead`` is gone — the takeover target."""
        survivors = [node for node in self.ranked(key) if node != dead]
        return survivors[0] if survivors else None

    def assignment(self, keys: Iterable[str]) -> dict[str, str]:
        """key → owning node for a whole key set."""
        return {key: self.owner(key) for key in keys}
