"""Cluster worker processes: a full webbase service per shard.

Each worker is an ordinary OS process running its own
:class:`~repro.core.webbase.WebBase` (same deterministic simulated world
— every worker builds it from the same seed, so any worker can answer
any query byte-identically) behind a
:class:`~repro.service.server.WebBaseService` with its own tiered store
directory.  Coordination with the router is strictly socket/file-based:

* the worker binds an ephemeral port and writes a JSON *address file*
  (atomic rename) the spawner polls for — the handshake needs no pipe
  protocol and survives the router restarting;
* cache coordination happens over the federation bus
  (:mod:`repro.cluster.federation`), never shared memory;
* shard takeover reads the dead worker's *store directory* — the file
  system is the handoff medium, exactly the durability PR 7 built.

:func:`worker_main` is the ``python -m repro cluster worker`` entry
point; :func:`spawn_worker` is the supervisor-side helper that launches
one and waits for its address file.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Any, IO

from repro.core.execution import WebBaseConfig
from repro.core.webbase import WebBase
from repro.service.server import ServiceConfig, WebBaseService
from repro.vps.cache import CachePolicy


def _write_addr_file(path: str, payload: dict[str, Any]) -> None:
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="ascii") as handle:
        json.dump(payload, handle, sort_keys=True)
    os.replace(tmp, path)


def build_worker_service(
    shard_id: str,
    store_dir: str,
    host: str = "127.0.0.1",
    port: int = 0,
    federation: tuple[str, int] | None = None,
    seed: int = 1999,
    ads_per_host: int = 120,
    queue_limit: int = 16,
    threads: int = 4,
    allow_mutation: bool = True,
    mqo: bool = False,
    mqo_window_ms: float = 0.0,
) -> WebBaseService:
    """Assemble one shard's webbase + service (shared by the process
    entry point and by in-process tests)."""
    # A storing cache is load-bearing for a shard: silver warming and
    # federation publishes both ride on result-cache fills.
    config = WebBaseConfig(
        seed=seed,
        ads_per_host=ads_per_host,
        store_dir=store_dir,
        cache=CachePolicy.lru(),
        mqo=mqo,
    )
    webbase = WebBase.create(config)
    if federation is not None:
        from repro.cluster.federation import FederationClient

        webbase.attach_federation(
            FederationClient(federation[0], federation[1])
        )
    service = WebBaseService(
        webbase,
        ServiceConfig(
            host=host,
            port=port,
            queue_limit=queue_limit,
            workers=threads,
            # The router multiplexes many end clients over few relay
            # connections, so the per-connection cap must not throttle it.
            per_client_limit=max(16, queue_limit),
            shard_id=shard_id,
            allow_world_mutation=allow_mutation,
            mqo_window_ms=mqo_window_ms,
        ),
    )
    service.role = "worker"
    return service


def worker_main(args: Any) -> int:
    """The ``python -m repro cluster worker`` process body: serve until
    drained (the ``drain`` op), then exit cleanly."""
    federation = None
    if args.federation:
        fed_host, _, fed_port = args.federation.rpartition(":")
        federation = (fed_host or "127.0.0.1", int(fed_port))
    service = build_worker_service(
        shard_id=args.shard_id,
        store_dir=args.store_dir,
        host=args.host,
        port=args.port,
        federation=federation,
        seed=args.seed,
        ads_per_host=args.ads_per_host,
        queue_limit=args.queue_limit,
        threads=args.threads,
        allow_mutation=args.allow_mutation,
        mqo=args.mqo,
        mqo_window_ms=args.mqo_window_ms,
    )
    address = service.start()
    if args.addr_file:
        _write_addr_file(
            args.addr_file,
            {
                "shard_id": args.shard_id,
                "host": address[0],
                "port": address[1],
                "pid": os.getpid(),
                "store_dir": args.store_dir,
            },
        )
    # Block until a drain lands (service._stopping is set at the end of
    # shutdown()); a crash-test kill just terminates the process.
    while not service._stopping.wait(0.2):
        pass
    return 0


@dataclass
class WorkerHandle:
    """One spawned worker process, as the supervisor sees it."""

    shard_id: str
    address: tuple[str, int]
    store_dir: str
    process: subprocess.Popen
    log: IO[bytes] | None = field(default=None, repr=False)

    @property
    def alive(self) -> bool:
        return self.process.poll() is None

    def kill(self) -> None:
        """Hard-kill the process (the failover tests' crash lever)."""
        if self.alive:
            self.process.kill()
        self.process.wait(timeout=10.0)
        self._close_log()

    def wait(self, timeout: float = 30.0) -> int:
        code = self.process.wait(timeout=timeout)
        self._close_log()
        return code

    def _close_log(self) -> None:
        if self.log is not None:
            try:
                self.log.close()
            except OSError:
                pass
            self.log = None


def spawn_worker(
    shard_id: str,
    store_dir: str,
    federation: tuple[str, int] | None = None,
    seed: int = 1999,
    ads_per_host: int = 120,
    queue_limit: int = 16,
    threads: int = 4,
    allow_mutation: bool = True,
    mqo: bool = False,
    mqo_window_ms: float = 0.0,
    startup_timeout: float = 60.0,
) -> WorkerHandle:
    """Launch one worker process and wait for its address file."""
    os.makedirs(store_dir, exist_ok=True)
    addr_file = os.path.join(store_dir, "worker.addr")
    if os.path.exists(addr_file):
        os.unlink(addr_file)
    src_root = os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = src_root + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    cmd = [
        sys.executable,
        "-m",
        "repro",
        "cluster",
        "worker",
        "--shard-id",
        shard_id,
        "--store-dir",
        store_dir,
        "--addr-file",
        addr_file,
        "--seed",
        str(seed),
        "--ads-per-host",
        str(ads_per_host),
        "--queue-limit",
        str(queue_limit),
        "--threads",
        str(threads),
    ]
    if federation is not None:
        cmd += ["--federation", "%s:%d" % federation]
    if allow_mutation:
        cmd += ["--allow-mutation"]
    if mqo:
        cmd += ["--mqo"]
    if mqo_window_ms > 0:
        cmd += ["--mqo-window-ms", str(mqo_window_ms)]
    log = open(os.path.join(store_dir, "worker.log"), "ab")
    process = subprocess.Popen(
        cmd, env=env, stdout=log, stderr=log, stdin=subprocess.DEVNULL
    )
    deadline = time.monotonic() + startup_timeout
    while True:
        if os.path.exists(addr_file):
            try:
                with open(addr_file, "r", encoding="ascii") as handle:
                    payload = json.load(handle)
                break
            except (ValueError, OSError):
                pass  # mid-rename or torn read; retry
        if process.poll() is not None:
            log.close()
            tail = ""
            try:
                with open(os.path.join(store_dir, "worker.log"), "rb") as lf:
                    tail = lf.read()[-2000:].decode("utf-8", errors="replace")
            except OSError:
                pass
            raise RuntimeError(
                "worker %s died during startup (exit %s):\n%s"
                % (shard_id, process.returncode, tail)
            )
        if time.monotonic() >= deadline:
            process.kill()
            log.close()
            raise RuntimeError(
                "worker %s did not write its address file within %.0fs"
                % (shard_id, startup_timeout)
            )
        time.sleep(0.02)
    return WorkerHandle(
        shard_id=shard_id,
        address=(str(payload["host"]), int(payload["port"])),
        store_dir=store_dir,
        process=process,
        log=log,
    )
