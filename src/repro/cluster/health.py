"""Worker health checking: crash detection for the cluster router.

A :class:`HealthMonitor` pings every registered worker over a throwaway
connection.  ``misses_before_dead`` consecutive failures (connection
refused, reset, or timeout) declare the worker dead and fire the
``on_dead`` callback exactly once — the router's takeover path.  The
monitor can run on its own timer thread (``interval_seconds``) for real
deployments, or be driven explicitly with :meth:`check_now` so tests
advance it deterministically without wall-clock waits.  Forwarding
errors are a second detection channel: the router reports them via
:meth:`report_failure`, so a crash observed mid-query never waits for
the next ping cycle.
"""

from __future__ import annotations

import json
import socket
import threading
from typing import Any, Callable


def ping(address: tuple[str, int], timeout: float = 2.0) -> bool:
    """One protocol-level ping (not just a TCP connect): the worker must
    actually answer a frame, so a wedged acceptor counts as dead."""
    try:
        with socket.create_connection(address, timeout=timeout) as sock:
            sock.settimeout(timeout)
            sock.sendall(b'{"id": 0, "op": "ping"}\n')
            buf = b""
            while b"\n" not in buf:
                chunk = sock.recv(4096)
                if not chunk:
                    return False
                buf += chunk
        frame = json.loads(buf.partition(b"\n")[0].decode("utf-8"))
        return frame.get("type") == "pong"
    except (OSError, ValueError):
        return False


class HealthMonitor:
    """Tracks liveness of the cluster's workers."""

    def __init__(
        self,
        on_dead: Callable[[str], None],
        misses_before_dead: int = 2,
        interval_seconds: float | None = None,
        timeout: float = 2.0,
        pinger: Callable[[tuple[int, int]], bool] | None = None,
    ) -> None:
        self._on_dead = on_dead
        self._misses_before_dead = max(1, misses_before_dead)
        self._interval = interval_seconds
        self._timeout = timeout
        self._ping: Any = pinger or (lambda addr: ping(addr, timeout=timeout))
        self._lock = threading.Lock()
        self._targets: dict[str, tuple[str, int]] = {}
        self._misses: dict[str, int] = {}
        self._dead: set[str] = set()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- membership ----------------------------------------------------------

    def watch(self, shard_id: str, address: tuple[str, int]) -> None:
        with self._lock:
            self._targets[shard_id] = address
            self._misses[shard_id] = 0
            self._dead.discard(shard_id)

    def unwatch(self, shard_id: str) -> None:
        with self._lock:
            self._targets.pop(shard_id, None)
            self._misses.pop(shard_id, None)

    def alive(self) -> list[str]:
        with self._lock:
            return sorted(set(self._targets) - self._dead)

    def is_dead(self, shard_id: str) -> bool:
        with self._lock:
            return shard_id in self._dead

    # -- detection -----------------------------------------------------------

    def _declare_dead(self, shard_id: str) -> bool:
        """Mark dead exactly once (caller must NOT hold the lock)."""
        with self._lock:
            if shard_id in self._dead or shard_id not in self._targets:
                return False
            self._dead.add(shard_id)
        self._on_dead(shard_id)
        return True

    def report_failure(self, shard_id: str) -> bool:
        """The router saw a transport error talking to this worker: treat
        it as conclusive (a refused/reset connection, not a slow query)."""
        return self._declare_dead(shard_id)

    def check_now(self) -> list[str]:
        """One synchronous sweep over every live worker; returns the
        shards declared dead by this sweep."""
        with self._lock:
            targets = {
                shard: addr
                for shard, addr in self._targets.items()
                if shard not in self._dead
            }
        died = []
        for shard_id, address in sorted(targets.items()):
            if self._ping(address):
                with self._lock:
                    self._misses[shard_id] = 0
                continue
            with self._lock:
                self._misses[shard_id] = self._misses.get(shard_id, 0) + 1
                conclusive = self._misses[shard_id] >= self._misses_before_dead
            if conclusive and self._declare_dead(shard_id):
                died.append(shard_id)
        return died

    # -- the timer thread ------------------------------------------------------

    def start(self) -> None:
        if self._interval is None or self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._loop, name="cluster-health", daemon=True
        )
        self._thread.start()

    def _loop(self) -> None:
        while not self._stop.wait(self._interval):
            self.check_now()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
