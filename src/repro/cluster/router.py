"""The cluster router: host-affinity sharding over worker processes.

One :class:`ClusterRouter` fronts N worker processes (each a full
:class:`~repro.service.server.WebBaseService` over its own store
directory) behind the *same* line-delimited JSON/TCP protocol clients
already speak — a client cannot tell a router from a single service,
except for the ``shard_id`` stamps on its frames.

**Routing** is by host affinity: the router plans each query just far
enough to learn which hosts its maximal objects will touch, then
rendezvous-hashes (:mod:`repro.cluster.hashring`) those hosts over the
live shards.  A query whose dominant host's owner covers at least half
of the query's host weight is forwarded whole to that shard — keeping
that shard's prefix page cache and result cache hot for the sites it
owns — and a genuinely cross-shard query falls back to *scatter*: the
router forwards it to every owning shard and merges the row streams
(every worker holds the same deterministic world, so deduplicated rows
are byte-identical to a single-process answer).  Clients that ask with
``redirect_ok`` get a ``REDIRECT`` error naming the owning shard
instead of a proxied stream.

**Failover**: worker death is detected by health pings
(:mod:`repro.cluster.health`) or by a transport error on a live relay,
whichever fires first.  The dead shard leaves the ring, the HRW
successor of each of its hosts adopts that worker's store directory
(``adopt`` op → revision max-merge + silver warm + standing-query
snapshots), in-flight queries are retried on the new owners with
router-side row dedup (each row reaches the client exactly once), and
standing-query relays resubscribe on the successor and synthesize the
exact catch-up delta against the client's delivered state — zero lost,
zero duplicated deltas.

**Admission** composes two levels: the router sheds beyond
``max_inflight`` with an ``OVERLOADED`` carrying a ``retry_after_ms``
hint, and a worker-side shed is forwarded with the same hint attached.

All coordination is socket- or file-based (TCP relays, the federation
bus, store directories); nothing shares memory across processes.
"""

from __future__ import annotations

import socketserver
import threading
import time
from dataclasses import dataclass, field
from typing import Any

from repro.cluster.hashring import HashRing
from repro.cluster.health import HealthMonitor
from repro.cluster.worker import WorkerHandle, spawn_worker
from repro.core.execution import WebBaseConfig
from repro.core.metrics import MetricsRegistry
from repro.core.webbase import WebBase
from repro.relational import algebra
from repro.service import protocol
from repro.service.client import ServiceClient, ServiceError
from repro.service.protocol import ProtocolError, Request
from repro.ur.planner import PlanError
from repro.ur.query import QueryParseError
from repro.vps.cache import CachePolicy

ROUTER_SHARD_ID = "router"

#: Wall-clock half-life of the per-shard busy score: spill decisions
#: weigh recent work, not a long-lived router's full history.
BUSY_HALF_LIFE_SECONDS = 120.0


@dataclass(frozen=True)
class ClusterConfig:
    """Topology and policy of one cluster deployment."""

    store_root: str  # per-shard store dirs live under here
    host: str = "127.0.0.1"
    port: int = 0
    shards: int = 3
    seed: int = 1999
    ads_per_host: int = 120
    worker_queue_limit: int = 16
    worker_threads: int = 4
    federation: bool = True
    max_inflight: int = 64  # router-level admission bound
    retry_after_ms: float = 250.0  # the OVERLOADED backoff hint
    scatter_threshold: float = 0.5  # dominant share below this scatters
    #: Affinity routes prefer the HRW owner for cache locality, but every
    #: worker holds the identical deterministic world, so when the owner
    #: is this many *modeled busy seconds* ahead of the least-loaded live
    #: worker the router spills the query there instead (the federation
    #: bus keeps the spilled shard's page needs cheap).  Load is the sum
    #: of completed relays' ``modelled_seconds`` plus an EWMA estimate
    #: for relays still in flight.  ``None`` pins affinity routes to the
    #: owner unconditionally.
    spill_margin: float | None = 1.0
    health_interval_seconds: float | None = None  # None = explicit checks only
    misses_before_dead: int = 2
    allow_world_mutation: bool = True  # harness churn ops, scattered
    forward_timeout_seconds: float = 120.0
    #: Multi-query optimization: when on, every worker runs with
    #: ``WebBaseConfig.mqo`` (shared subplans + containment reuse) and
    #: the router co-routes identical in-flight plan fingerprints onto
    #: the same shard so their evaluations can actually collapse.
    mqo: bool = False
    mqo_window_ms: float = 0.0  # worker-side batching window

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("shards must be >= 1; got %r" % self.shards)
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if self.spill_margin is not None and self.spill_margin <= 0:
            raise ValueError("spill_margin must be > 0 seconds or None")
        if self.mqo_window_ms < 0:
            raise ValueError("mqo_window_ms must be >= 0")


@dataclass
class WorkerInfo:
    """One registered shard, as the router tracks it."""

    shard_id: str
    address: tuple[str, int]
    store_dir: str
    handle: WorkerHandle | None = None
    alive: bool = True


class _ShardLost(Exception):
    """A transport error talking to a shard mid-relay."""

    def __init__(self, shard_id: str, cause: BaseException) -> None:
        super().__init__("shard %s lost: %s" % (shard_id, cause))
        self.shard_id = shard_id


def base_names(expr: Any) -> set[str]:
    """Every catalog base relation a logical definition reads."""
    names: set[str] = set()
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, algebra.Base):
            names.add(node.name)
            continue
        for attr in ("child", "left", "right"):
            sub = getattr(node, attr, None)
            if sub is not None:
                stack.append(sub)
    return names


class _RouterHandler(socketserver.StreamRequestHandler):
    """One client connection to the router (same framing as the service)."""

    server: "_RouterTcpServer"

    def setup(self) -> None:
        super().setup()
        self._write_lock = threading.Lock()

    def send(self, frame: dict[str, Any]) -> None:
        data = protocol.encode(frame)
        with self._write_lock:
            try:
                self.wfile.write(data)
                self.wfile.flush()
            except (OSError, ValueError):
                pass

    def handle(self) -> None:
        router = self.server.router
        while True:
            try:
                line = self.rfile.readline(protocol.MAX_LINE_BYTES + 2)
            except (OSError, ValueError):
                return
            if not line:
                return
            if not line.strip():
                continue
            try:
                request = protocol.parse_request(protocol.decode_line(line))
            except ProtocolError as exc:
                payload_id = 0
                try:
                    maybe = protocol.decode_line(line).get("id")
                    if isinstance(maybe, int):
                        payload_id = maybe
                except ProtocolError:
                    pass
                self.send(
                    protocol.error_frame(
                        payload_id, protocol.E_BAD_REQUEST, str(exc)
                    )
                )
                continue
            router.dispatch(self, request)

    def finish(self) -> None:
        try:
            self.server.router.detach(self)
        finally:
            super().finish()


class _RouterTcpServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address: tuple[str, int], router: "ClusterRouter") -> None:
        super().__init__(address, _RouterHandler)
        self.router = router


@dataclass
class _SubscriptionRelay:
    """One standing query proxied client ↔ worker, takeover-survivable."""

    text: str
    handler: Any
    request_id: int
    page_size: int
    shard_id: str
    client: ServiceClient
    subscription: Any
    out_seq: int
    stop: threading.Event = field(default_factory=threading.Event)
    thread: threading.Thread | None = None


class ClusterRouter:
    """The sharded front-end process (in-process object; the ``cluster
    serve`` CLI wraps it, tests drive it directly)."""

    role = ROUTER_SHARD_ID

    def __init__(self, config: ClusterConfig) -> None:
        self.config = config
        self.metrics = MetricsRegistry(strict=True)
        self.ring = HashRing()
        self.workers: dict[str, WorkerInfo] = {}
        self._topology_lock = threading.RLock()
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        # Per-shard load, feeding the affinity-spill decision:
        # ``_shard_busy`` sums completed relays' modeled seconds plus an
        # EWMA cost estimate per relay still in flight (replaced by the
        # actual when the relay finishes), ``_shard_load`` counts the
        # in-flight relays for status display.
        self._shard_load: dict[str, int] = {}
        self._shard_busy: dict[str, float] = {}
        self._busy_stamp = time.monotonic()
        self._cost_ewma = 1.0
        self._load_lock = threading.Lock()
        self._draining = threading.Event()
        self._stopped = threading.Event()
        self._relays: list[_SubscriptionRelay] = []
        self._relays_lock = threading.Lock()
        self._server: _RouterTcpServer | None = None
        self._acceptor: threading.Thread | None = None
        # The routing planner: a webbase used ONLY to plan (no fetches),
        # so a no-op cache keeps it stateless and cheap.
        self._planner = WebBase.create(
            WebBaseConfig(
                seed=config.seed,
                ads_per_host=config.ads_per_host,
                cache=CachePolicy.noop(),
            )
        )
        self._plan_cache: dict[str, dict[str, int]] = {}
        self._plan_lock = threading.Lock()
        # Fingerprint-sticky co-routing (``config.mqo``): while a query
        # with fingerprint F is in flight on shard S, identical arrivals
        # are routed to S too — they land inside that worker's
        # SubplanRegistry and share its evaluation instead of running
        # the same plan on a sibling.  fp → [shard_id, refcount].
        self._fp_routes: dict[str, list] = {}
        self._fp_cache: dict[str, str] = {}
        self._fp_lock = threading.Lock()
        self.all_hosts = sorted(self._planner.builders)
        self.federation_server: Any = None
        if config.federation:
            from repro.cluster.federation import FederationServer

            self.federation_server = FederationServer(metrics=self.metrics)
        self.health = HealthMonitor(
            on_dead=self._on_worker_dead,
            misses_before_dead=config.misses_before_dead,
            interval_seconds=config.health_interval_seconds,
        )

    # -- lifecycle -----------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        if self._server is None:
            raise RuntimeError("router not started")
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    @property
    def federation_address(self) -> tuple[str, int] | None:
        if self.federation_server is None:
            return None
        return self.federation_server.address

    def start(self) -> tuple[str, int]:
        if self._server is not None:
            raise RuntimeError("router already started")
        if self.federation_server is not None:
            self.federation_server.start()
        self._server = _RouterTcpServer((self.config.host, self.config.port), self)
        self._acceptor = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="router-acceptor",
            daemon=True,
        )
        self._acceptor.start()
        self.health.start()
        return self.address

    def register_worker(
        self,
        shard_id: str,
        address: tuple[str, int],
        store_dir: str,
        handle: WorkerHandle | None = None,
    ) -> None:
        with self._topology_lock:
            self.workers[shard_id] = WorkerInfo(
                shard_id=shard_id,
                address=address,
                store_dir=store_dir,
                handle=handle,
            )
            self.ring.add(shard_id)
        self.health.watch(shard_id, address)
        self.metrics.gauge("cluster.workers_live").set(len(self.live_shards()))

    def live_shards(self) -> list[str]:
        with self._topology_lock:
            return sorted(s for s, w in self.workers.items() if w.alive)

    def shutdown(self, drain_workers: bool = True) -> dict[str, Any]:
        """Graceful cluster drain: stop admitting, stop the relays, drain
        every live worker (waiting for spawned processes to exit), then
        stop the health monitor, federation bus, and the router socket.
        Idempotent: a second call (e.g. ``LocalCluster.stop`` after a
        remote ``drain`` already ran) returns the metrics snapshot."""
        if self._stopped.is_set():
            return self.metrics.snapshot()
        self._draining.set()
        with self._relays_lock:
            relays = list(self._relays)
            self._relays.clear()
        for relay in relays:
            self._stop_relay(relay)
        self.health.stop()
        if drain_workers:
            for shard_id in self.live_shards():
                info = self.workers[shard_id]
                try:
                    with ServiceClient(
                        *info.address, timeout=10.0, connect_timeout=2.0
                    ) as client:
                        client.drain()
                except Exception:  # noqa: BLE001 - already dying is fine
                    pass
            for shard_id in self.live_shards():
                info = self.workers[shard_id]
                if info.handle is not None:
                    try:
                        info.handle.wait(timeout=30.0)
                    except Exception:  # noqa: BLE001
                        info.handle.kill()
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
        if self._acceptor is not None:
            self._acceptor.join(timeout=5.0)
        if self.federation_server is not None:
            self.federation_server.stop()
        self.metrics.counter("cluster.drains").inc()
        self._stopped.set()
        return self.metrics.snapshot()

    def wait_stopped(self, timeout: float | None = None) -> bool:
        """Block until :meth:`shutdown` completes (a remote ``drain``
        lands here too); the foreground ``cluster serve`` loop waits on
        this instead of sleeping forever."""
        return self._stopped.wait(timeout)

    # -- routing -------------------------------------------------------------

    def plan_hosts(self, text: str) -> dict[str, int]:
        """host → weight over the query's feasible maximal objects."""
        with self._plan_lock:
            cached = self._plan_cache.get(text)
        if cached is not None:
            return dict(cached)
        plan = self._planner.ur.plan(text)
        weights: dict[str, int] = {}
        for obj in plan.feasible_objects:
            for rel_name in obj.relations:
                definition = self._planner.logical.relation(rel_name).definition
                for base in sorted(base_names(definition)):
                    host = self._planner.vps.host_of(base)
                    weights[host] = weights.get(host, 0) + 1
        with self._plan_lock:
            self._plan_cache[text] = dict(weights)
        return weights

    def route_for(self, weights: dict[str, int]) -> tuple[str, list[str], str]:
        """``(kind, target shards, dominant host)`` for one query's hosts.

        ``kind`` is ``"affinity"`` (one shard owns enough of the query's
        host weight) or ``"scatter"`` (forward to every owning shard and
        merge)."""
        with self._topology_lock:
            if not len(self.ring):
                raise _ShardLost("*", ConnectionError("no live shards"))
            if not weights:
                return "affinity", [self.ring.owner("")], ""
            total = float(sum(weights.values()))
            dominant = max(weights, key=lambda h: (weights[h], h))
            owner = self.ring.owner(dominant)
            share = sum(
                w for h, w in weights.items() if self.ring.owner(h) == owner
            )
            if share / total >= self.config.scatter_threshold:
                return "affinity", [owner], dominant
            targets = sorted({self.ring.owner(h) for h in weights})
            return "scatter", targets, dominant

    def _maybe_spill(self, owner: str) -> tuple[str, float]:
        """Affinity load balancing: keep the HRW owner unless it is
        ``spill_margin`` modeled busy seconds ahead of the least-loaded
        live worker.  Correct because every worker evaluates every query
        over the identical world — affinity is a cache optimization, not
        a correctness requirement, and the federation bus amortizes the
        spilled shard's page fills.

        Returns ``(target, reserved_estimate)``: the decision and the
        EWMA cost reservation happen under ONE lock hold, so a burst of
        concurrent placements sees each other — without the reservation,
        sixteen simultaneous queries would all pick the same "least
        loaded" worker and herd onto it."""
        margin = self.config.spill_margin
        with self._topology_lock:
            live = [s for s, info in self.workers.items() if info.alive]
        with self._load_lock:
            self._decay_busy_locked()
            estimate = self._cost_ewma
            target = owner
            if margin is not None and len(live) > 1 and owner in live:
                loads = {s: self._shard_busy.get(s, 0.0) for s in live}
                least = min(loads, key=lambda s: (loads[s], s))
                # Pure greedy balancing on modeled busy seconds.  No
                # "owner has queued work" gate: modeled cost and wall
                # concurrency are different clocks (a 2-second modeled
                # walk can finish in 200ms of wall), so instantaneous
                # queue depth says nothing about accumulated load — and
                # a spilled shard re-fills from the federation, so the
                # locality cost of spilling is one bus round trip.
                if least != owner and loads[owner] - loads[least] >= margin:
                    target = least
            self._shard_busy[target] = (
                self._shard_busy.get(target, 0.0) + estimate
            )
        if target != owner:
            self.metrics.counter("cluster.spills").inc()
        return target, estimate

    def _unreserve(self, shard_id: str, estimate: float) -> None:
        """Back out a placement reservation whose relay never ran."""
        with self._load_lock:
            self._shard_busy[shard_id] = max(
                0.0, self._shard_busy.get(shard_id, 0.0) - estimate
            )

    def _decay_busy_locked(self) -> None:
        """Lazily age the busy scores (callers hold ``_load_lock``)."""
        now = time.monotonic()
        elapsed = now - self._busy_stamp
        if elapsed <= 1.0:
            return
        factor = 0.5 ** (elapsed / BUSY_HALF_LIFE_SECONDS)
        for shard in self._shard_busy:
            self._shard_busy[shard] *= factor
        self._busy_stamp = now

    # -- fingerprint-sticky co-routing -----------------------------------------

    def query_fingerprint(self, text: str) -> str:
        """The whole-query plan fingerprint used for fingerprint-sticky
        co-routing (cached by text; ``""`` when MQO is off or the query
        cannot be planned — no stickiness, normal routing applies)."""
        if not self.config.mqo:
            return ""
        with self._fp_lock:
            cached = self._fp_cache.get(text)
        if cached is not None:
            return cached
        try:
            fingerprint = self._planner.ur.plan(text).query_fingerprint()
        except Exception:  # noqa: BLE001 - unplannable: no stickiness
            fingerprint = ""
        with self._fp_lock:
            if len(self._fp_cache) > 512:
                self._fp_cache.clear()
            self._fp_cache[text] = fingerprint
        return fingerprint

    def _fp_target(self, fingerprint: str) -> str | None:
        """The live shard already running this fingerprint, if any."""
        if not fingerprint:
            return None
        with self._fp_lock:
            entry = self._fp_routes.get(fingerprint)
            if entry is None:
                return None
            shard_id = entry[0]
        with self._topology_lock:
            info = self.workers.get(shard_id)
            if info is None or not info.alive:
                return None
        return shard_id

    def _fp_acquire(self, fingerprint: str, shard_id: str) -> None:
        if not fingerprint:
            return
        with self._fp_lock:
            entry = self._fp_routes.setdefault(fingerprint, [shard_id, 0])
            entry[1] += 1

    def _fp_release(self, fingerprint: str) -> None:
        if not fingerprint:
            return
        with self._fp_lock:
            entry = self._fp_routes.get(fingerprint)
            if entry is None:
                return
            entry[1] -= 1
            if entry[1] <= 0:
                self._fp_routes.pop(fingerprint, None)

    def _fp_drop_shard(self, shard_id: str) -> None:
        """Forget sticky routes into a dead shard (its in-flight relays
        are being retried elsewhere; stickiness must not follow them)."""
        with self._fp_lock:
            stale = [
                fp
                for fp, entry in self._fp_routes.items()
                if entry[0] == shard_id
            ]
            for fp in stale:
                self._fp_routes.pop(fp, None)

    # -- dispatch ------------------------------------------------------------

    def dispatch(self, handler: Any, request: Request) -> None:
        op = request.op
        if op == "ping":
            handler.send(protocol.pong_frame(request.id))
        elif op == "hello":
            handler.send(
                protocol.welcome_frame(request.id, ROUTER_SHARD_ID, "router")
            )
        elif op == "status":
            handler.send(protocol.status_frame(request.id, self.describe_status()))
        elif op == "metrics":
            handler.send(
                protocol.metrics_frame(request.id, self.merged_metrics())
            )
        elif op == "drain":
            handler.send(protocol.status_frame(request.id, self.describe_status()))
            threading.Thread(
                target=self.shutdown, name="router-drain", daemon=True
            ).start()
        elif op == "query":
            self._route_query(handler, request)
        elif op == "subscribe":
            self._route_subscribe(handler, request)
        elif op == "unsubscribe":
            self._route_unsubscribe(handler, request)
        elif op in ("sweep", "mutate"):
            self._scatter_admin(handler, request)
        else:
            handler.send(
                protocol.error_frame(
                    request.id,
                    protocol.E_BAD_REQUEST,
                    "op %r is not routable" % op,
                )
            )

    # -- admission -----------------------------------------------------------

    def _admit(self) -> bool:
        with self._inflight_lock:
            if self._inflight >= self.config.max_inflight:
                return False
            self._inflight += 1
        self.metrics.gauge("cluster.inflight").set(self._inflight)
        return True

    def _release(self) -> None:
        with self._inflight_lock:
            self._inflight = max(0, self._inflight - 1)
        self.metrics.gauge("cluster.inflight").set(self._inflight)

    # -- the query path --------------------------------------------------------

    def _route_query(self, handler: Any, request: Request) -> None:
        self.metrics.counter("cluster.requests").inc()
        if self._draining.is_set():
            handler.send(
                protocol.error_frame(
                    request.id,
                    protocol.E_SHUTTING_DOWN,
                    "cluster is draining",
                )
            )
            return
        if not self._admit():
            self.metrics.counter("cluster.shed").inc()
            handler.send(
                protocol.error_frame(
                    request.id,
                    protocol.E_OVERLOADED,
                    "router admission limit (%d) reached"
                    % self.config.max_inflight,
                    retry_after_ms=self.config.retry_after_ms,
                )
            )
            return
        try:
            self._route_query_admitted(handler, request)
        finally:
            self._release()

    def _route_query_admitted(self, handler: Any, request: Request) -> None:
        try:
            weights = self.plan_hosts(request.text)
        except (PlanError, QueryParseError, KeyError) as exc:
            handler.send(
                protocol.error_frame(request.id, protocol.E_BAD_REQUEST, str(exc))
            )
            return
        # The co-routing fingerprint: trust a client/router stamp, else
        # compute (and cache) it here.  "" disables stickiness.
        fingerprint = (
            request.mqo_fp or self.query_fingerprint(request.text)
            if self.config.mqo
            else ""
        )
        seen: set[tuple] = set()
        seq = 0
        shard_stats: dict[str, dict[str, Any]] = {}
        attempts = 0
        while True:
            try:
                kind, targets, dominant = self.route_for(weights)
            except _ShardLost:
                handler.send(
                    protocol.error_frame(
                        request.id, protocol.E_INTERNAL, "no live shards"
                    )
                )
                return
            if kind == "affinity" and request.redirect_ok:
                info = self.workers[targets[0]]
                self.metrics.counter("cluster.redirects").inc()
                handler.send(
                    protocol.error_frame(
                        request.id,
                        protocol.E_REDIRECT,
                        "shard %s owns host %s" % (targets[0], dominant),
                        address=info.address,
                    )
                )
                return
            self.metrics.counter(
                "cluster.routed_affinity"
                if kind == "affinity"
                else "cluster.routed_scatter"
            ).inc()
            spilled = False
            reserved: float | None = None
            if kind == "affinity":
                sticky = self._fp_target(fingerprint)
                if sticky is not None:
                    # An identical fingerprint is in flight on ``sticky``:
                    # co-route there so the worker's SubplanRegistry can
                    # collapse the evaluations (load balance defers to
                    # sharing — the shared run costs ~nothing extra).
                    self.metrics.counter("cluster.fp_sticky").inc()
                    target = sticky
                else:
                    target, reserved = self._maybe_spill(targets[0])
                spilled = target != targets[0]
                targets = [target]
            try:
                for shard_id in targets:
                    take, reserved = reserved, None  # consumed exactly once
                    if shard_id in shard_stats:
                        # Already streamed by an earlier attempt.
                        if take is not None:
                            self._unreserve(shard_id, take)
                        continue
                    if kind == "affinity":
                        self._fp_acquire(fingerprint, shard_id)
                    try:
                        stats, seq = self._relay_query(
                            shard_id,
                            handler,
                            request,
                            seen,
                            seq,
                            reserved=take,
                            mqo_fp=fingerprint,
                        )
                    finally:
                        if kind == "affinity":
                            self._fp_release(fingerprint)
                    shard_stats[shard_id] = stats
                break
            except _ShardLost as exc:
                attempts += 1
                self._handle_worker_death(exc.shard_id)
                self.metrics.counter("cluster.retries").inc()
                if attempts > max(4, len(self.workers) + 1):
                    handler.send(
                        protocol.error_frame(
                            request.id,
                            protocol.E_INTERNAL,
                            "query could not be placed after %d takeovers"
                            % attempts,
                        )
                    )
                    return
                continue
            except ServiceError as exc:
                # A worker-level verdict (shed, deadline, bad request):
                # forward it structured; attach the router's backoff hint
                # to sheds so both admission levels compose for clients.
                retriable = exc.code in protocol.RETRIABLE_CODES
                handler.send(
                    protocol.error_frame(
                        request.id,
                        exc.code,
                        str(exc),
                        retry_after_ms=(
                            self.config.retry_after_ms if retriable else None
                        ),
                    )
                )
                return
        merged: dict[str, Any] = {
            "rows": len(seen),
            "pages": seq,
            "route": kind,
            "spilled": spilled,
            "shards": sorted(shard_stats),
            # Per-shard modeled busy seconds, so load benches can derive
            # cluster makespan (busiest shard) without trusting wall time.
            "shard_seconds": {
                shard: float(stats.get("modelled_seconds", 0.0))
                for shard, stats in shard_stats.items()
            },
        }
        for numeric in ("fetches", "cache_hits", "failures"):
            merged[numeric] = sum(
                int(stats.get(numeric, 0)) for stats in shard_stats.values()
            )
        merged["modelled_seconds"] = round(
            sum(merged["shard_seconds"].values()), 4
        )
        self.metrics.counter("cluster.completed").inc()
        handler.send(
            protocol.result_frame(
                request.id,
                merged,
                shard_id=(
                    targets[0] if kind == "affinity" else ROUTER_SHARD_ID
                ),
            )
        )

    def _relay_query(
        self,
        shard_id: str,
        handler: Any,
        request: Request,
        seen: set[tuple],
        seq: int,
        reserved: float | None = None,
        mqo_fp: str = "",
    ) -> tuple[dict[str, Any], int]:
        """Stream one worker's answer through to the client, forwarding
        only rows not already delivered (exactly-once across scatter
        targets and takeover retries).  ``reserved`` is a busy-score
        reservation already made at placement time (affinity routes);
        scatter relays reserve here instead."""
        info = self.workers[shard_id]
        stats: dict[str, Any] | None = None
        with self._load_lock:
            self._shard_load[shard_id] = self._shard_load.get(shard_id, 0) + 1
            if reserved is None:
                estimate = self._cost_ewma
                self._shard_busy[shard_id] = (
                    self._shard_busy.get(shard_id, 0.0) + estimate
                )
            else:
                estimate = reserved
        try:
            with ServiceClient(
                *info.address,
                timeout=self.config.forward_timeout_seconds,
                connect_timeout=2.0,
            ) as client:
                stream = client.stream(
                    request.text,
                    deadline_ms=request.deadline_ms,
                    page_size=request.page_size,
                    mqo_fp=mqo_fp,
                )
                while True:
                    try:
                        page = next(stream)
                    except StopIteration as stop:
                        stats = stop.value or {}
                        return stats, seq
                    fresh = [row for row in page.rows if row not in seen]
                    seen.update(fresh)
                    if fresh:
                        handler.send(
                            protocol.page_frame(
                                request.id,
                                seq,
                                page.schema,
                                fresh,
                                source=page.source,
                            )
                        )
                        seq += 1
        except ServiceError:
            raise
        except (OSError, ConnectionError, ProtocolError) as exc:
            raise _ShardLost(shard_id, exc) from exc
        finally:
            with self._load_lock:
                self._shard_load[shard_id] = max(
                    0, self._shard_load.get(shard_id, 0) - 1
                )
                # Swap the in-flight estimate for the actual modeled cost
                # (a failed relay just sheds its estimate).
                actual = (
                    float(stats.get("modelled_seconds", 0.0))
                    if stats is not None
                    else 0.0
                )
                self._shard_busy[shard_id] = max(
                    0.0,
                    self._shard_busy.get(shard_id, 0.0) - estimate + actual,
                )
                if stats is not None:
                    self._cost_ewma = 0.8 * self._cost_ewma + 0.2 * actual

    # -- standing-query relays -------------------------------------------------

    def _route_subscribe(self, handler: Any, request: Request) -> None:
        if self._draining.is_set():
            handler.send(
                protocol.error_frame(
                    request.id, protocol.E_SHUTTING_DOWN, "cluster is draining"
                )
            )
            return
        try:
            weights = self.plan_hosts(request.text)
            _, targets, _ = self.route_for(weights)
        except (PlanError, QueryParseError, KeyError) as exc:
            handler.send(
                protocol.error_frame(request.id, protocol.E_BAD_REQUEST, str(exc))
            )
            return
        except _ShardLost:
            handler.send(
                protocol.error_frame(
                    request.id, protocol.E_INTERNAL, "no live shards"
                )
            )
            return
        # A subscription lives on exactly ONE shard (any worker can
        # evaluate the whole query); scatter routes pin the first owner.
        shard_id = targets[0]
        info = self.workers[shard_id]
        page_size = request.page_size or 50
        try:
            client = ServiceClient(
                *info.address,
                timeout=self.config.forward_timeout_seconds,
                connect_timeout=2.0,
            )
            subscription = client.subscribe(
                request.text, page_size=page_size, resume=request.resume
            )
        except ServiceError as exc:
            handler.send(
                protocol.error_frame(request.id, exc.code, str(exc))
            )
            return
        except (OSError, ConnectionError, ProtocolError) as exc:
            self._handle_worker_death(shard_id)
            handler.send(
                protocol.error_frame(
                    request.id,
                    protocol.E_OVERLOADED,
                    "shard lost during subscribe (%s); retry" % exc,
                    retry_after_ms=self.config.retry_after_ms,
                )
            )
            return
        if not subscription.resumed:
            delivered = sorted(subscription.rows)
            for start in range(0, len(delivered), page_size):
                handler.send(
                    protocol.page_frame(
                        request.id,
                        start // page_size,
                        subscription.schema,
                        delivered[start : start + page_size],
                        source="snapshot",
                    )
                )
        relay = _SubscriptionRelay(
            text=request.text,
            handler=handler,
            request_id=request.id,
            page_size=page_size,
            shard_id=shard_id,
            client=client,
            subscription=subscription,
            out_seq=subscription.seq,
        )
        relay.thread = threading.Thread(
            target=self._relay_loop,
            args=(relay,),
            name="relay:%s" % request.text[:32],
            daemon=True,
        )
        # Register before acking, so a subscriber that acts on the ack
        # (e.g. kills the serving worker) always finds the relay.
        with self._relays_lock:
            self._relays.append(relay)
        self.metrics.counter("cluster.subscriptions").inc()
        handler.send(
            protocol.subscribed_frame(
                request.id,
                rows=len(subscription.rows),
                resumed=subscription.resumed,
                seq=subscription.seq,
            )
        )
        relay.thread.start()

    def _relay_loop(self, relay: _SubscriptionRelay) -> None:
        while not relay.stop.is_set():
            try:
                delta = relay.client.next_delta(relay.subscription, timeout=0.2)
            except (OSError, ConnectionError, ProtocolError) as exc:
                if relay.stop.is_set():
                    return
                self._handle_worker_death(relay.shard_id)
                if not self._resume_relay(relay, exc):
                    return
                continue
            if delta is None:
                continue
            relay.out_seq += 1
            relay.handler.send(
                protocol.delta_frame(
                    relay.request_id,
                    relay.out_seq,
                    delta.schema,
                    delta.added,
                    delta.removed,
                    host=delta.host,
                    revision=delta.revision,
                    reason=delta.reason,
                )
            )
            self.metrics.counter("cluster.deltas_relayed").inc()

    def _resume_relay(
        self, relay: _SubscriptionRelay, cause: BaseException
    ) -> bool:
        """Re-home a standing query after its shard died.

        The successor adopted the dead shard's persisted snapshot; a
        plain resubscribe returns that snapshot as the delivered state.
        Any divergence between it and what the *client* actually holds
        (the crash window between persist and send) is synthesized into
        one catch-up delta, so the client's row set is continuous — the
        zero-lost-deltas contract."""
        client_rows = set(relay.subscription.rows)
        for _ in range(max(2, len(self.workers))):
            try:
                _, targets, _ = self.route_for(self.plan_hosts(relay.text))
            except _ShardLost:
                return False
            shard_id = targets[0]
            info = self.workers[shard_id]
            try:
                client = ServiceClient(
                    *info.address,
                    timeout=self.config.forward_timeout_seconds,
                    connect_timeout=2.0,
                )
                subscription = client.subscribe(
                    relay.text, page_size=relay.page_size
                )
            except (OSError, ConnectionError, ProtocolError, ServiceError):
                self._handle_worker_death(shard_id)
                continue
            try:
                relay.client.close()
            except Exception:  # noqa: BLE001 - it's already dead
                pass
            added = sorted(subscription.rows - client_rows)
            removed = sorted(client_rows - subscription.rows)
            if added or removed:
                relay.out_seq += 1
                relay.handler.send(
                    protocol.delta_frame(
                        relay.request_id,
                        relay.out_seq,
                        subscription.schema,
                        added,
                        removed,
                        host="",
                        revision=0,
                        reason="takeover",
                    )
                )
                self.metrics.counter("cluster.deltas_relayed").inc()
            relay.client = client
            relay.subscription = subscription
            relay.shard_id = shard_id
            self.metrics.counter("cluster.relay_resumes").inc()
            return True
        return False

    def _route_unsubscribe(self, handler: Any, request: Request) -> None:
        relay = None
        with self._relays_lock:
            for candidate in self._relays:
                if candidate.handler is handler and candidate.text == request.text:
                    relay = candidate
                    break
            if relay is not None:
                self._relays.remove(relay)
        if relay is not None:
            self._stop_relay(relay, unsubscribe=True)
        handler.send(protocol.unsubscribed_frame(request.id))

    def _stop_relay(
        self, relay: _SubscriptionRelay, unsubscribe: bool = False
    ) -> None:
        relay.stop.set()
        if relay.thread is not None and relay.thread is not threading.current_thread():
            relay.thread.join(timeout=5.0)
        try:
            if unsubscribe:
                relay.client.unsubscribe(relay.subscription)
            relay.client.close()
        except Exception:  # noqa: BLE001 - the worker may be gone
            pass

    def detach(self, handler: Any) -> None:
        """A client connection closed: tear down its relays (the worker-
        side registrations persist — that is what resume is for)."""
        with self._relays_lock:
            mine = [r for r in self._relays if r.handler is handler]
            for relay in mine:
                self._relays.remove(relay)
        for relay in mine:
            self._stop_relay(relay)

    # -- cluster admin ---------------------------------------------------------

    def _scatter_admin(self, handler: Any, request: Request) -> None:
        """Scatter a world-shaping op (sweep, mutate) to EVERY live
        worker: the per-process simulated worlds must stay identical, or
        a takeover would surface spurious row deltas."""
        results: dict[str, dict[str, Any]] = {}
        for shard_id in self.live_shards():
            info = self.workers[shard_id]
            try:
                with ServiceClient(
                    *info.address,
                    timeout=self.config.forward_timeout_seconds,
                    connect_timeout=2.0,
                ) as client:
                    if request.op == "sweep":
                        results[shard_id] = client.sweep(request.text or None)
                    else:
                        results[shard_id] = client.mutate(request.text)
            except ServiceError as exc:
                handler.send(
                    protocol.error_frame(request.id, exc.code, str(exc))
                )
                return
            except (OSError, ConnectionError, ProtocolError):
                self._handle_worker_death(shard_id)
        merged: dict[str, Any] = {"op": request.op, "shards": sorted(results)}
        for shard_id, result in sorted(results.items()):
            for key, value in result.items():
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    merged[key] = merged.get(key, 0) + value
                else:
                    merged.setdefault(key, value)
        handler.send(
            protocol.result_frame(request.id, merged, shard_id=ROUTER_SHARD_ID)
        )

    # -- failover --------------------------------------------------------------

    def _on_worker_dead(self, shard_id: str) -> None:
        self._handle_worker_death(shard_id, from_health=True)

    def _handle_worker_death(
        self, shard_id: str, from_health: bool = False
    ) -> None:
        """Remove a dead shard and run the HRW takeover plan: every host
        it owned is re-owned by its rendezvous successor, and each
        distinct successor adopts the dead worker's store directory."""
        with self._topology_lock:
            info = self.workers.get(shard_id)
            if info is None or not info.alive:
                return
            info.alive = False
            dead_hosts = [
                host
                for host in self.all_hosts
                if shard_id in self.ring and self.ring.owner(host) == shard_id
            ]
            self.ring.remove(shard_id)
            successors = (
                {self.ring.owner(host) for host in dead_hosts}
                if len(self.ring)
                else set()
            )
        self.health.unwatch(shard_id)
        self._fp_drop_shard(shard_id)
        if not from_health:
            self.health.report_failure(shard_id)
        self.metrics.counter("cluster.worker_deaths").inc()
        self.metrics.gauge("cluster.workers_live").set(len(self.live_shards()))
        for successor in sorted(successors):
            target = self.workers[successor]
            try:
                with ServiceClient(
                    *target.address,
                    timeout=self.config.forward_timeout_seconds,
                    connect_timeout=2.0,
                ) as client:
                    client.adopt(info.store_dir)
                self.metrics.counter("cluster.takeovers").inc()
            except Exception:  # noqa: BLE001 - a failed warm is a cold successor
                self.metrics.counter("cluster.takeover_warm_failures").inc()

    # -- observability ---------------------------------------------------------

    def describe_status(self) -> dict[str, Any]:
        with self._topology_lock:
            workers = {
                shard_id: {
                    "address": list(info.address),
                    "alive": info.alive,
                    "store_dir": info.store_dir,
                }
                for shard_id, info in sorted(self.workers.items())
            }
            hosts = {
                host: (self.ring.owner(host) if len(self.ring) else None)
                for host in self.all_hosts
            }
        with self._relays_lock:
            subscriptions = len(self._relays)
        with self._load_lock:
            load = {
                shard: {
                    "inflight": count,
                    "busy_seconds": round(
                        self._shard_busy.get(shard, 0.0), 3
                    ),
                }
                for shard, count in sorted(self._shard_load.items())
            }
        status: dict[str, Any] = {
            "role": "router",
            "shard_id": ROUTER_SHARD_ID,
            "protocol_version": protocol.PROTOCOL_VERSION,
            "draining": self._draining.is_set(),
            "inflight": self._inflight,
            "workers": workers,
            "hosts": hosts,
            "load": load,
            "subscriptions": subscriptions,
        }
        if self.federation_server is not None:
            status["federation"] = self.federation_server.cache.stats()
        return status

    def merged_metrics(self) -> dict[str, Any]:
        """One operator view over N registries: the router's own
        ``cluster.*`` metrics plus every live worker's snapshot, counters
        and gauges summed, histograms merged conservatively (counts sum,
        percentiles take the worst shard), with the raw per-shard
        snapshots preserved under ``"shards"``."""
        own = self.metrics.snapshot()
        counters: dict[str, float] = dict(own.get("counters", {}))
        gauges: dict[str, float] = dict(own.get("gauges", {}))
        histograms: dict[str, dict[str, float]] = {
            name: dict(values)
            for name, values in own.get("histograms", {}).items()
        }
        shards: dict[str, Any] = {}
        for shard_id in self.live_shards():
            info = self.workers[shard_id]
            try:
                with ServiceClient(
                    *info.address, timeout=10.0, connect_timeout=2.0
                ) as client:
                    snapshot = client.metrics()
            except Exception:  # noqa: BLE001 - a dying shard just drops out
                continue
            shards[shard_id] = snapshot
            for name, value in snapshot.get("counters", {}).items():
                counters[name] = counters.get(name, 0) + value
            for name, value in snapshot.get("gauges", {}).items():
                gauges[name] = gauges.get(name, 0) + value
            for name, values in snapshot.get("histograms", {}).items():
                merged = histograms.setdefault(name, {})
                for stat, value in values.items():
                    if stat == "count":
                        merged[stat] = merged.get(stat, 0) + value
                    else:
                        merged[stat] = max(merged.get(stat, 0), value)
        return {
            "counters": dict(sorted(counters.items())),
            "gauges": dict(sorted(gauges.items())),
            "histograms": dict(sorted(histograms.items())),
            "shards": shards,
        }


class LocalCluster:
    """Supervisor for one whole local deployment: the in-process router
    plus ``config.shards`` spawned worker processes — the object behind
    ``python -m repro cluster serve``, the failover tests, and the
    benchmark."""

    def __init__(self, config: ClusterConfig) -> None:
        self.config = config
        self.router = ClusterRouter(config)
        self.handles: dict[str, WorkerHandle] = {}

    def start(self) -> tuple[str, int]:
        import os

        address = self.router.start()
        for index in range(self.config.shards):
            shard_id = "shard-%d" % index
            store_dir = os.path.join(self.config.store_root, shard_id)
            handle = spawn_worker(
                shard_id,
                store_dir,
                federation=self.router.federation_address,
                seed=self.config.seed,
                ads_per_host=self.config.ads_per_host,
                queue_limit=self.config.worker_queue_limit,
                threads=self.config.worker_threads,
                allow_mutation=self.config.allow_world_mutation,
                mqo=self.config.mqo,
                mqo_window_ms=self.config.mqo_window_ms,
            )
            self.handles[shard_id] = handle
            self.router.register_worker(
                shard_id, handle.address, store_dir, handle=handle
            )
        return address

    @property
    def address(self) -> tuple[str, int]:
        return self.router.address

    def kill_worker(self, shard_id: str) -> None:
        """Hard-kill one worker process (the failover lever); detection
        and takeover happen through the router's normal channels."""
        self.handles[shard_id].kill()

    def stop(self) -> dict[str, Any]:
        result = self.router.shutdown(drain_workers=True)
        for handle in self.handles.values():
            if handle.alive:
                handle.kill()
        return result
