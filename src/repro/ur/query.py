"""The end user's query language against the universal relation.

"To pose a query, the user simply points to a set of output attributes
and imposes conditions on some other attributes.  This is it: no joins,
sheer simplicity."

:class:`URQuery` is exactly that: output attributes plus a condition.
:func:`parse_query` accepts a small SELECT/WHERE notation (what a simple
form-based UI would generate)::

    SELECT make, model, price
    WHERE make = 'jaguar' AND year >= 1993 AND price < bb_price
      AND zip IN ('10001', '10025')

Conditions are conjunctive; ``IN`` expands to a disjunction of equalities.
Either side of a comparison may be an attribute, so value comparisons
across concepts (``price < bb_price``) work.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.relational.conditions import (
    And,
    Attr,
    Comparison,
    Condition,
    Const,
    Or,
    conj,
)


class QueryParseError(Exception):
    """The query text is not well-formed."""


@dataclass(frozen=True)
class URQuery:
    """A universal-relation query: outputs + condition."""

    outputs: tuple[str, ...]
    condition: Condition | None = None

    def attributes(self) -> set[str]:
        """Every attribute the query mentions (outputs and conditions)."""
        mentioned = set(self.outputs)
        if self.condition is not None:
            mentioned |= self.condition.attributes()
        return mentioned


@dataclass
class _Tokens:
    items: list[str]
    pos: int = 0

    def peek(self) -> str | None:
        return self.items[self.pos] if self.pos < len(self.items) else None

    def next(self) -> str:
        if self.pos >= len(self.items):
            raise QueryParseError("unexpected end of query")
        token = self.items[self.pos]
        self.pos += 1
        return token

    def expect(self, token: str) -> None:
        got = self.next()
        if got.upper() != token.upper():
            raise QueryParseError("expected %r, got %r" % (token, got))


def _tokenize(text: str) -> list[str]:
    tokens: list[str] = []
    i = 0
    n = len(text)
    symbols = ("<=", ">=", "!=", "<", ">", "=", ",", "(", ")")
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "'":
            j = text.find("'", i + 1)
            if j == -1:
                raise QueryParseError("unterminated string literal")
            tokens.append(text[i : j + 1])
            i = j + 1
            continue
        matched = False
        for sym in symbols:
            if text.startswith(sym, i):
                tokens.append(sym)
                i += len(sym)
                matched = True
                break
        if matched:
            continue
        j = i
        while j < n and (text[j].isalnum() or text[j] in "_."):
            j += 1
        if j == i:
            raise QueryParseError("unexpected character %r" % ch)
        tokens.append(text[i:j])
        i = j
    return tokens


def _operand(token: str):
    if token.startswith("'"):
        return Const(token[1:-1])
    try:
        return Const(int(token))
    except ValueError:
        pass
    try:
        return Const(float(token))
    except ValueError:
        pass
    return Attr(token.lower())


def _parse_predicate(tokens: _Tokens) -> Condition:
    left_token = tokens.next()
    op = tokens.next()
    if op.upper() == "IN":
        tokens.expect("(")
        attr = left_token.lower()
        choices = []
        while True:
            value = _operand(tokens.next())
            if isinstance(value, Attr):
                raise QueryParseError("IN list must contain constants")
            choices.append(Comparison(Attr(attr), "=", value))
            nxt = tokens.next()
            if nxt == ")":
                break
            if nxt != ",":
                raise QueryParseError("expected ',' or ')' in IN list")
        return Or(tuple(choices)) if len(choices) > 1 else choices[0]
    if op not in ("=", "!=", "<", "<=", ">", ">="):
        raise QueryParseError("unknown operator %r" % op)
    right_token = tokens.next()
    return Comparison(_operand(left_token), op, _operand(right_token))


def parse_query(text: str) -> URQuery:
    """Parse ``SELECT a, b WHERE cond AND cond ...`` into a :class:`URQuery`."""
    tokens = _Tokens(_tokenize(text))
    tokens.expect("SELECT")
    outputs: list[str] = []
    while True:
        token = tokens.next()
        outputs.append(token.lower())
        nxt = tokens.peek()
        if nxt == ",":
            tokens.next()
            continue
        break
    if not outputs:
        raise QueryParseError("empty SELECT list")
    condition: Condition | None = None
    if tokens.peek() is not None:
        tokens.expect("WHERE")
        parts = [_parse_predicate(tokens)]
        while tokens.peek() is not None:
            tokens.expect("AND")
            parts.append(_parse_predicate(tokens))
        condition = conj(*parts)
    return URQuery(tuple(outputs), condition)
