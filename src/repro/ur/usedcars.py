"""The UsedCarUR: the structured universal relation of the car webbase,
plus the abstract Example 6.2 configuration.

The compatibility rules below encode Example 6.1's common-sense facts for
our schema: every Table-2 relation makes sense on its own, but a single
answer tuple cannot mix a dealer listing with a classified ad (a used car
is advertised at one kind of source).
"""

from __future__ import annotations

from typing import Any

from repro.logical.schema import LogicalSchema
from repro.relational.cost import CatalogStats
from repro.ur.compat import CompatibilityRule, allows, excludes, mutually_exclusive
from repro.ur.concepts import Concept, used_car_hierarchy
from repro.ur.planner import StructuredUR

UR_RELATIONS = ["classifieds", "dealers", "blue_price", "reliability", "interest"]


def used_car_rules() -> list[CompatibilityRule]:
    rules = allows(*UR_RELATIONS)
    rules += mutually_exclusive("classifieds", "dealers")
    return rules


def build_used_car_ur(
    logical: LogicalSchema,
    optimizer: str = "cost",
    stats: CatalogStats | None = None,
    metrics: Any = None,
) -> StructuredUR:
    """The UsedCarUR over an assembled logical schema.

    ``optimizer="cost"`` orders each maximal object's join with the
    cost-based planner (seeded by ``stats``, self-correcting through
    ``metrics``); ``"off"`` keeps the legacy first-feasible order.
    """
    if stats is None and optimizer == "cost":
        from repro.logical.mapping import car_catalog_stats

        stats = car_catalog_stats(logical)
    return StructuredUR(
        logical=logical,
        hierarchy=used_car_hierarchy(),
        rules=used_car_rules(),
        relations=UR_RELATIONS,
        optimizer=optimizer,
        stats=stats,
        metrics=metrics,
    )


# -- Example 6.2: the abstract insurance/financing universe ---------------------------

EXAMPLE_62_RELATIONS = [
    "dealers",
    "classifieds",
    "lease",
    "loan",
    "full_coverage",
    "liability",
    "retail_value",
    "trade_in_value",
]


def example_62_rules() -> list[CompatibilityRule]:
    """The compatibility constraints of Example 6.2.

    * a car source is dealers or classifieds, not both;
    * financing is a lease or a loan, not both;
    * insurance is full coverage or liability, not both;
    * "We cannot lease a car from its owner" — lease excludes classifieds;
    * "Leased cars have to be fully insured" — lease excludes liability;
    * "Trade-in values are not applicable" to used-car shopping.
    """
    rules = allows(
        "dealers",
        "classifieds",
        "lease",
        "loan",
        "full_coverage",
        "liability",
        "retail_value",
    )
    rules += mutually_exclusive("dealers", "classifieds")
    rules += mutually_exclusive("lease", "loan")
    rules += mutually_exclusive("full_coverage", "liability")
    rules.append(excludes({"lease"}, "classifieds"))
    rules.append(excludes({"lease"}, "liability"))
    rules.append(excludes(set(), "trade_in_value"))
    return rules


EXAMPLE_62_EXPECTED = [
    frozenset({"dealers", "lease", "full_coverage", "retail_value"}),
    frozenset({"dealers", "loan", "full_coverage", "retail_value"}),
    frozenset({"dealers", "loan", "liability", "retail_value"}),
    frozenset({"classifieds", "loan", "liability", "retail_value"}),
    frozenset({"classifieds", "loan", "full_coverage", "retail_value"}),
]


def example_62_hierarchy() -> Concept:
    root = Concept("UsedCarUR62")
    root.add(
        Concept("Source").add("dealers", "classifieds"),
        Concept("Financing").add("lease", "loan"),
        Concept("Insurance").add("full_coverage", "liability"),
        Concept("Value").add("retail_value", "trade_in_value"),
    )
    return root
