"""Incremental, concept-driven query construction — the end-user interface.

Section 6: "The idea behind concept hierarchies is that the user starts
by selecting top-level concepts and then proceeds to subconcepts.  This
makes it possible to build queries incrementally, by restricting the
search to various subconcepts and to specific ranges for attributes at
the leaf level."

:class:`QueryBuilder` is that interaction, as an API a form-based UI
would call: show the concepts, pick one to see its attributes, tick
output attributes, add range/equality restrictions — then ``build()`` a
:class:`~repro.ur.query.URQuery` or ``run()`` it.  Misspellings fall back
to the logical layer's fuzzy matcher, and every step validates against
the hierarchy, so users never see a join or a relation name.
"""

from __future__ import annotations

from typing import Any

from repro.relational.conditions import (
    Attr,
    Comparison,
    Condition,
    Const,
    Or,
    conj,
)
from repro.relational.relation import Relation
from repro.ur.planner import StructuredUR
from repro.ur.query import URQuery


class BuilderError(Exception):
    """An invalid incremental construction step."""


_OPS = ("=", "!=", "<", "<=", ">", ">=")


class QueryBuilder:
    """Builds a UR query step by step against a :class:`StructuredUR`."""

    def __init__(self, ur: StructuredUR) -> None:
        self.ur = ur
        self._outputs: list[str] = []
        self._conditions: list[Condition] = []

    # -- browsing the hierarchy -------------------------------------------------

    def concepts(self) -> list[str]:
        """The top-level concepts the user first sees."""
        return [child.name for child in self.ur.hierarchy.children]

    def attributes_of(self, concept: str) -> list[str]:
        """The leaf attributes under ``concept``."""
        return self.ur.resolve(concept)

    # -- assembling the query -------------------------------------------------------

    def select(self, *names: str) -> "QueryBuilder":
        """Add output attributes; concept names expand to their leaves."""
        for name in names:
            for attr in self.ur.resolve(name):
                if attr not in self._outputs:
                    self._outputs.append(attr)
        return self

    def where(self, attr: str, op: str, value: Any) -> "QueryBuilder":
        """Restrict an attribute: ``where('year', '>=', 1993)``.

        ``value`` may be another attribute name prefixed with ``@`` for
        attribute-to-attribute comparisons (``where('price','<','@bb_price')``).
        """
        if op not in _OPS:
            raise BuilderError("unknown operator %r (use one of %s)" % (op, ", ".join(_OPS)))
        resolved = self._resolve_leaf(attr)
        if isinstance(value, str) and value.startswith("@"):
            right = Attr(self._resolve_leaf(value[1:]))
        else:
            right = Const(value)
        self._conditions.append(Comparison(Attr(resolved), op, right))
        return self

    def where_in(self, attr: str, values: list[Any]) -> "QueryBuilder":
        """Restrict an attribute to a set of values."""
        if not values:
            raise BuilderError("empty IN list for %r" % attr)
        resolved = self._resolve_leaf(attr)
        choices = tuple(Comparison(Attr(resolved), "=", Const(v)) for v in values)
        self._conditions.append(Or(choices) if len(choices) > 1 else choices[0])
        return self

    def _resolve_leaf(self, name: str) -> str:
        resolved = self.ur.resolve(name)
        if len(resolved) != 1:
            raise BuilderError(
                "%r names a concept (%s); conditions need a single attribute"
                % (name, ", ".join(resolved))
            )
        return resolved[0]

    # -- finishing ---------------------------------------------------------------------

    def build(self) -> URQuery:
        if not self._outputs:
            raise BuilderError("no output attributes selected")
        condition = conj(*self._conditions) if self._conditions else None
        return URQuery(tuple(self._outputs), condition)

    def run(self) -> Relation:
        return self.ur.answer(self.build())

    def describe(self) -> str:
        """A user-facing rendering of the query under construction."""
        lines = ["outputs: %s" % (", ".join(self._outputs) or "(none yet)")]
        for condition in self._conditions:
            lines.append("where:   %r" % (condition,))
        return "\n".join(lines)
