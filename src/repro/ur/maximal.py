"""Maximal objects and minimal covering sets (Section 6 semantics).

Two related computations:

* :func:`maximal_objects` — all inclusion-*maximal* compatible subsets of
  the logical relations: the structured-UR analogue of Maier/Ullman's
  maximal objects.  Example 6.2 generates five of these.
* :func:`covering_objects` — given a query's attribute set, all
  inclusion-*minimal* compatible subsets whose attributes cover it: "the
  semantics of this query is said to be the join R1 ⋈ ... ⋈ Rn, where
  {R1..Rn} is a minimal (with respect to inclusion) subset of logical
  relations that satisfy the compatibility rules and contains all
  attributes in A."  When several such sets exist, the answer is the union
  of their results.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Mapping

from repro.ur.compat import CompatibilityRule, is_compatible


def maximal_objects(
    relations: Iterable[str], rules: Iterable[CompatibilityRule]
) -> list[frozenset[str]]:
    """All inclusion-maximal compatible subsets of ``relations``."""
    universe = sorted(set(relations))
    rules = list(rules)
    compatible: list[frozenset[str]] = []
    # Exhaustive over subsets; the UR universe is small by construction
    # (application-domain relations, not tuples).
    if len(universe) > 20:
        raise ValueError("UR universe too large for exhaustive enumeration")
    for size in range(len(universe), 0, -1):
        for combo in combinations(universe, size):
            candidate = frozenset(combo)
            if any(candidate <= m for m in compatible):
                continue
            if is_compatible(candidate, rules):
                compatible.append(candidate)
    return sorted(compatible, key=lambda s: (-len(s), sorted(s)))


def covering_objects(
    relations: Iterable[str],
    rules: Iterable[CompatibilityRule],
    attrs: Iterable[str],
    schema_of: Mapping[str, frozenset[str]],
) -> list[frozenset[str]]:
    """All minimal compatible subsets covering ``attrs``.

    ``schema_of`` maps each relation to its attribute set.  Raises
    :class:`KeyError` if some attribute belongs to no relation.
    """
    wanted = set(attrs)
    universe = sorted(set(relations))
    rules = list(rules)
    homeless = wanted - set().union(*(schema_of[r] for r in universe)) if universe else wanted
    if homeless:
        raise KeyError("attributes in no relation: %s" % sorted(homeless))

    found: list[frozenset[str]] = []
    for size in range(1, len(universe) + 1):
        for combo in combinations(universe, size):
            candidate = frozenset(combo)
            if any(existing <= candidate for existing in found):
                continue  # not minimal
            covered = set()
            for relation in candidate:
                covered |= schema_of[relation]
            if not wanted <= covered:
                continue
            if is_compatible(candidate, rules):
                found.append(candidate)
    return sorted(found, key=lambda s: (len(s), sorted(s)))
