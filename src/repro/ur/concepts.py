"""Concept hierarchies for the structured universal relation (Figure 5).

"We propose to organize the attributes in the UR into a hierarchy of
concepts.  Each concept is a relation schema whose attributes are concepts
of a lower layer ... the top layer in this hierarchy is the universal
relation itself."

Concepts let the end user build queries incrementally (top-level concept →
subconcept → leaf attribute) and dissolve the unique-role assumption: an
attribute's meaning is given by its position in the hierarchy, not by its
bare name.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class ConceptError(Exception):
    """Malformed hierarchy or failed resolution."""


@dataclass
class Concept:
    """A node of the hierarchy; leaves are UR attributes."""

    name: str
    children: list["Concept"] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def add(self, *children: "Concept | str") -> "Concept":
        for child in children:
            if isinstance(child, str):
                child = Concept(child)
            self.children.append(child)
        return self

    # -- queries ---------------------------------------------------------------

    def leaves(self) -> list[str]:
        """All leaf attribute names under this concept, document order."""
        if self.is_leaf:
            return [self.name]
        found: list[str] = []
        for child in self.children:
            found.extend(child.leaves())
        return found

    def find(self, name: str) -> "Concept | None":
        """The first descendant (or self) called ``name``."""
        if self.name == name:
            return self
        for child in self.children:
            hit = child.find(name)
            if hit is not None:
                return hit
        return None

    def path_to(self, name: str) -> list[str] | None:
        """Concept path from this node to the attribute/concept ``name``."""
        if self.name == name:
            return [self.name]
        for child in self.children:
            sub = child.path_to(name)
            if sub is not None:
                return [self.name] + sub
        return None

    def expand(self, name: str) -> list[str]:
        """Resolve a user-named concept to its leaf attributes.

        Naming a leaf returns that attribute; naming an inner concept
        returns every attribute beneath it (selecting the "Car" concept
        selects make, model and year).
        """
        node = self.find(name)
        if node is None:
            raise ConceptError("no concept %r in hierarchy %r" % (name, self.name))
        return node.leaves()

    def validate(self) -> None:
        """Leaf names must be unique — each attribute has one home."""
        leaves = self.leaves()
        duplicates = {name for name in leaves if leaves.count(name) > 1}
        if duplicates:
            raise ConceptError("attributes with two homes: %s" % sorted(duplicates))

    def pretty(self, indent: int = 0) -> str:
        lines = ["%s%s" % ("  " * indent, self.name)]
        for child in self.children:
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)


def used_car_hierarchy() -> Concept:
    """The concept hierarchy of our UsedCarUR (the Figure 5 instance,
    extended with the attributes our logical schema actually carries)."""
    root = Concept("UsedCarUR")
    root.add(
        Concept("Car").add("make", "model", "year"),
        Concept("Advert").add("price", "contact", "features", "zip"),
        Concept("Value").add("bb_price", "condition"),
        Concept("Safety").add("safety"),
        Concept("Financing").add("duration", "rate"),
    )
    root.validate()
    return root
