"""The external schema layer: the structured universal relation."""

from repro.ur.builder import BuilderError, QueryBuilder
from repro.ur.compat import (
    CompatibilityRule,
    allows,
    excludes,
    is_compatible,
    mutually_exclusive,
    requires,
)
from repro.ur.concepts import Concept, ConceptError, used_car_hierarchy
from repro.ur.maximal import covering_objects, maximal_objects
from repro.ur.planner import ObjectPlan, PlanError, StructuredUR, URPlan
from repro.ur.query import QueryParseError, URQuery, parse_query
from repro.ur.usedcars import (
    EXAMPLE_62_EXPECTED,
    EXAMPLE_62_RELATIONS,
    UR_RELATIONS,
    build_used_car_ur,
    example_62_hierarchy,
    example_62_rules,
    used_car_rules,
)

__all__ = [
    "BuilderError",
    "CompatibilityRule",
    "Concept",
    "ConceptError",
    "EXAMPLE_62_EXPECTED",
    "EXAMPLE_62_RELATIONS",
    "ObjectPlan",
    "PlanError",
    "QueryBuilder",
    "QueryParseError",
    "StructuredUR",
    "URPlan",
    "URQuery",
    "UR_RELATIONS",
    "allows",
    "build_used_car_ur",
    "covering_objects",
    "example_62_hierarchy",
    "example_62_rules",
    "excludes",
    "is_compatible",
    "maximal_objects",
    "mutually_exclusive",
    "parse_query",
    "requires",
    "used_car_hierarchy",
    "used_car_rules",
]
