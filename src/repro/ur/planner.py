"""Planning and evaluating structured-UR queries.

A query's attributes select the minimal compatible covering sets of
logical relations (the query's maximal objects); each becomes a join —
ordered so every relation's mandatory attributes are bound when its turn
comes — wrapped in the query's selection and projection; and the final
answer is the union over the objects.  "Once translated, these queries can
be optimized and evaluated by standard query evaluation techniques."
"""

from __future__ import annotations

import queue as queue_mod
import threading
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.logical.schema import LogicalSchema
from repro.relational.algebra import (
    Base,
    Expr,
    Join,
    Project,
    Select,
    evaluate,
)
from repro.relational.bindings import BindingError, JoinPart, order_joins
from repro.relational.conditions import equality_bindings
from repro.relational.cost import CatalogStats, CostModel
from repro.relational.optimize import optimize
from repro.relational.planner import JoinOrderPlanner, JoinPlan, plan_fingerprint
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.ur.compat import CompatibilityRule
from repro.ur.concepts import Concept
from repro.ur.maximal import covering_objects, maximal_objects
from repro.ur.query import URQuery, parse_query


class PlanError(Exception):
    """The query has no evaluable plan."""


@dataclass
class ObjectPlan:
    """One maximal object's contribution to the answer."""

    relations: tuple[str, ...]  # in join order
    expression: Expr
    feasible: bool
    note: str = ""
    rewrites: tuple[str, ...] = ()
    estimate: JoinPlan | None = None  # cost-planner predictions, when used
    #: Canonical identity of ``expression`` (see
    #: :func:`repro.relational.planner.plan_fingerprint`); the sharing key
    #: of the multi-query optimizer.  Empty for infeasible objects.
    fingerprint: str = ""


@dataclass
class URPlan:
    """The full plan for one UR query."""

    query: URQuery
    objects: list[ObjectPlan] = field(default_factory=list)
    optimizer: str = "off"

    @property
    def feasible_objects(self) -> list[ObjectPlan]:
        return [o for o in self.objects if o.feasible]

    def query_fingerprint(self) -> str:
        """Whole-query identity: a hash over the sorted multiset of the
        feasible objects' fingerprints.  Two queries with equal values
        compute byte-identical answers (each object's fingerprint pins its
        projection order, and the union over objects is commutative)."""
        import hashlib

        parts = sorted(o.fingerprint for o in self.feasible_objects)
        return hashlib.sha256("|".join(parts).encode("utf-8")).hexdigest()

    def describe(self) -> str:
        lines = [
            "UR plan: %d object(s), optimizer=%s" % (len(self.objects), self.optimizer)
        ]
        for obj in self.objects:
            status = "ok" if obj.feasible else "skipped (%s)" % obj.note
            if obj.estimate is not None:
                status += ", est %.1f fetches via %s" % (
                    obj.estimate.est_fetches,
                    obj.estimate.strategy,
                )
            lines.append("  %s  [%s]" % (" ⋈ ".join(obj.relations), status))
        return "\n".join(lines)

    def record_spans(self, context: Any) -> None:
        """Record the planner's join-order decisions as trace spans (one
        ``order`` span per object, under the caller's current span)."""
        for obj in self.objects:
            with context.span("order", " → ".join(obj.relations)) as span:
                if not obj.feasible:
                    span.status = "skipped"
                    span.error = obj.note
                    continue
                if obj.estimate is not None:
                    span.attrs["strategy"] = obj.estimate.strategy
                    span.attrs["est_fetches"] = round(obj.estimate.est_fetches, 1)


class StructuredUR:
    """The external schema: one universal relation over the logical layer."""

    def __init__(
        self,
        logical: LogicalSchema,
        hierarchy: Concept,
        rules: list[CompatibilityRule],
        relations: list[str] | None = None,
        optimize_plans: bool = True,
        optimizer: str = "cost",
        stats: CatalogStats | None = None,
        metrics: Any = None,
    ) -> None:
        if optimizer not in ("cost", "off"):
            raise ValueError("optimizer must be 'cost' or 'off'; got %r" % optimizer)
        self.logical = logical
        self.hierarchy = hierarchy
        self.rules = list(rules)
        self.relations = sorted(relations or logical.relation_names)
        self.optimize_plans = optimize_plans
        self.optimizer = optimizer
        self.join_planner: JoinOrderPlanner | None = None
        if optimizer == "cost":
            if stats is None:
                stats = CatalogStats.from_catalog(logical, self.relations)
            self.join_planner = JoinOrderPlanner(CostModel(stats, metrics=metrics))
        self._schemas: dict[str, frozenset[str]] = {
            name: logical.base_schema(name).as_set() for name in self.relations
        }

    # -- schema introspection --------------------------------------------------

    @property
    def attributes(self) -> list[str]:
        """The universal relation's attribute list."""
        attrs: set[str] = set()
        for schema in self._schemas.values():
            attrs |= set(schema)
        return sorted(attrs)

    def maximal_objects(self) -> list[frozenset[str]]:
        return maximal_objects(self.relations, self.rules)

    def resolve(self, name: str) -> list[str]:
        """Resolve a user-typed name: a concept expands to its leaves, an
        attribute (possibly misspelled) to itself."""
        node = self.hierarchy.find(name)
        if node is not None:
            return [a for a in node.leaves() if a in self.attributes]
        return [self.logical.resolve_attribute(name)]

    # -- planning ------------------------------------------------------------------

    def plan(self, query: URQuery | str) -> URPlan:
        if isinstance(query, str):
            query = parse_query(query)
        attrs = set()
        for name in query.attributes():
            resolved = self.logical.resolve_attribute(name)
            attrs.add(resolved)
        unknown = attrs - set(self.attributes)
        if unknown:
            raise PlanError("attributes outside the UR: %s" % sorted(unknown))

        bound = set(equality_bindings(query.condition))
        covers = covering_objects(self.relations, self.rules, attrs, self._schemas)
        if not covers:
            raise PlanError(
                "no compatible set of relations covers %s" % sorted(attrs)
            )
        plan = URPlan(query=query, optimizer=self.optimizer)
        for cover in covers:
            parts = [
                JoinPart(
                    name,
                    self._schemas[name],
                    self.logical.base_binding_sets(name),
                )
                for name in sorted(cover)
            ]
            estimate: JoinPlan | None = None
            if self.join_planner is not None:
                estimate = self.join_planner.plan(parts, bound)
                order = list(estimate.order) if estimate is not None else None
            else:
                order = order_joins(parts, bound)
            if order is None:
                plan.objects.append(
                    ObjectPlan(
                        relations=tuple(sorted(cover)),
                        expression=Base("unorderable"),
                        feasible=False,
                        note="mandatory attributes not derivable from the query",
                    )
                )
                continue
            ordered_names = [parts[i].name for i in order]
            expr: Expr = Base(ordered_names[0])
            for name in ordered_names[1:]:
                expr = Join(expr, Base(name))
            if query.condition is not None:
                expr = Select(expr, query.condition)
            expr = Project(expr, query.outputs)
            rewrites: tuple[str, ...] = ()
            if self.optimize_plans:
                optimized = optimize(expr, self.logical)
                expr = optimized.expression
                rewrites = tuple(repr(r) for r in optimized.rewrites)
            plan.objects.append(
                ObjectPlan(
                    relations=tuple(ordered_names),
                    expression=expr,
                    feasible=True,
                    rewrites=rewrites,
                    estimate=estimate,
                    fingerprint=plan_fingerprint(expr),
                )
            )
        return plan

    # -- evaluation -----------------------------------------------------------------

    def answer(
        self,
        query: URQuery | str,
        plan: URPlan | None = None,
        context: Any = None,
    ) -> Relation:
        """Evaluate a query: the union of its feasible objects' answers.

        With an execution context the maximal objects evaluate in parallel
        on its worker pool (results still union in plan order, so the
        answer matches the sequential one exactly), and an object whose
        fetches exhaust their retry budget is skipped — recorded in
        ``context.failures`` — instead of aborting the whole query.
        """
        if plan is None:
            plan = self.plan(query)
        outputs = plan.query.outputs
        result = Relation(Schema(outputs), [])
        if context is None:
            pieces = []
            for obj in plan.feasible_objects:
                try:
                    pieces.append(evaluate(obj.expression, self.logical))
                except BindingError:
                    pieces.append(None)
        else:
            pieces = context.map(
                lambda obj: self._evaluate_object(obj, context),
                plan.feasible_objects,
            )
        evaluated = 0
        for piece in pieces:
            if piece is None:
                continue
            result = result.union(piece)
            evaluated += 1
        if evaluated == 0:
            detail = plan.describe()
            if context is not None and context.failures:
                detail += "\n" + context.failure_report()
            raise PlanError("no maximal object was evaluable; plan:\n%s" % detail)
        return result

    def answer_stream(
        self,
        query: URQuery | str,
        plan: URPlan | None = None,
        context: Any = None,
    ) -> Iterator[tuple[ObjectPlan, Relation | None]]:
        """Evaluate a query *incrementally*: yield ``(object, piece)`` as
        each feasible maximal object completes, instead of buffering the
        union.  This is the serving path — a ``More``-loop query's early
        objects reach the client while slower sites are still fetching.

        With an execution context the objects evaluate concurrently on its
        worker pool and arrive in *completion* order; without one they
        evaluate (and arrive) in plan order.  A piece of ``None`` means the
        object contributed nothing (infeasible bindings or exhausted
        retries).  Like :meth:`answer`, raises :class:`PlanError` when no
        object was evaluable; an engine :class:`DeadlineExceeded` (or any
        unexpected error) propagates after the remaining objects unwind.
        """
        if plan is None:
            plan = self.plan(query)
        feasible = plan.feasible_objects
        evaluated = 0
        if context is None:
            for obj in feasible:
                try:
                    piece: Relation | None = evaluate(obj.expression, self.logical)
                except BindingError:
                    piece = None
                if piece is not None:
                    evaluated += 1
                yield obj, piece
        else:
            done: queue_mod.Queue = queue_mod.Queue()
            parent = context.current_span()

            def run(obj: ObjectPlan) -> None:
                context.adopt(parent)
                try:
                    done.put((obj, self._evaluate_object(obj, context), None))
                except BaseException as exc:  # noqa: BLE001 - re-raised below
                    done.put((obj, None, exc))

            threads = [
                threading.Thread(target=run, args=(obj,), daemon=True)
                for obj in feasible
            ]
            for thread in threads:
                thread.start()
            first_error: BaseException | None = None
            for _ in feasible:
                obj, piece, error = done.get()
                if error is not None:
                    if first_error is None:
                        first_error = error
                    continue
                if piece is not None:
                    evaluated += 1
                yield obj, piece
            for thread in threads:
                thread.join()
            if first_error is not None:
                raise first_error
        if evaluated == 0 and feasible:
            detail = plan.describe()
            if context is not None and context.failures:
                detail += "\n" + context.failure_report()
            raise PlanError("no maximal object was evaluable; plan:\n%s" % detail)
        if not feasible:
            raise PlanError("no maximal object was evaluable; plan:\n%s" % plan.describe())

    def _evaluate_object(self, obj: ObjectPlan, context: Any) -> Relation | None:
        """Evaluate one maximal object under the engine; ``None`` means the
        object contributed nothing (infeasible bindings or exhausted
        retries — the partial-failure path)."""
        from repro.core.execution import FanoutError, FetchFailedError

        registry = getattr(context, "mqo_registry", None)
        with context.span("object", " ⋈ ".join(obj.relations)) as span:
            try:
                if registry is not None and obj.fingerprint:
                    span.attrs["fingerprint"] = obj.fingerprint[:12]
                    return registry.run(
                        obj.fingerprint,
                        context,
                        lambda: evaluate(obj.expression, self.logical, context=context),
                        span=span,
                    )
                return evaluate(obj.expression, self.logical, context=context)
            except BindingError as exc:
                span.status = "skipped"
                span.error = str(exc)
                return None
            except FetchFailedError as exc:
                # The failure is already on context.failures; degrade to a
                # partial answer instead of aborting the query.
                span.status = "error"
                span.error = str(exc)
                return None
            except FanoutError as exc:
                expected = (BindingError, FetchFailedError)
                if any(not isinstance(e, expected) for e in exc.errors):
                    raise  # a real defect, not a fetch/binding outcome
                span.status = "error"
                span.error = str(exc)
                return None
