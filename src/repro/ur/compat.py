"""Compatibility rules: the structured UR's replacement for lossless joins.

"The basic idea is to replace losslessness and constraints with
compatibility rules.  A compatibility rule has either the form
R1,...,Rk -> R or the form R1,...,Rk -> ¬R."

A set S of relations is *compatible* (paper, footnote 6) when

* for every R in S there is a positive rule ``Left -> R`` with Left ⊆ S
  (axioms — rules with empty left sides — admit relations that always
  make sense on their own); and
* there is no negative rule ``Left -> ¬R`` with Left ∪ {R} ⊆ S
  (negative rules mark the UR literature's "navigation traps").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable


@dataclass(frozen=True)
class CompatibilityRule:
    """``lhs -> rhs`` (positive) or ``lhs -> ¬rhs`` (negative)."""

    lhs: frozenset[str]
    rhs: str
    negative: bool = False

    def __repr__(self) -> str:
        left = ", ".join(sorted(self.lhs)) if self.lhs else "true"
        arrow = "-> not" if self.negative else "->"
        return "%s %s %s" % (left, arrow, self.rhs)


def allows(*relations: str) -> list[CompatibilityRule]:
    """Axioms: each relation makes sense on its own."""
    return [CompatibilityRule(frozenset(), r) for r in relations]


def requires(lhs: Iterable[str], rhs: str) -> CompatibilityRule:
    """``lhs -> rhs``: joining rhs makes sense once lhs has been joined."""
    return CompatibilityRule(frozenset(lhs), rhs)


def excludes(lhs: Iterable[str], rhs: str) -> CompatibilityRule:
    """``lhs -> ¬rhs``: joining rhs onto lhs is an incorrect relationship."""
    return CompatibilityRule(frozenset(lhs), rhs, negative=True)


def mutually_exclusive(a: str, b: str) -> list[CompatibilityRule]:
    """Neither of the pair may join the other (e.g. a car cannot be both a
    dealer listing and a classified ad in one answer)."""
    return [excludes({a}, b), excludes({b}, a)]


def is_compatible(subset: Iterable[str], rules: Iterable[CompatibilityRule]) -> bool:
    """The footnote-6 compatibility check."""
    members = frozenset(subset)
    if not members:
        return True
    rules = list(rules)
    for relation in members:
        admitted = any(
            not rule.negative and rule.rhs == relation and rule.lhs <= members
            for rule in rules
        )
        if not admitted:
            return False
    for rule in rules:
        if rule.negative and rule.rhs in members and rule.lhs <= members:
            return False
    return True
