"""The multi-query optimizer facade: fingerprint → share → subsume.

One :class:`MultiQueryOptimizer` attaches to a webbase when
``WebBaseConfig.mqo`` is on.  It owns the two cross-query mechanisms and
applies them in a fixed decision ladder:

1. **Subsume** (:meth:`subsume`): before executing at all, look for a
   revision-current gold-tier answer that *contains* the query — same
   join core, all needed attributes retained, predicate implied
   (:mod:`repro.mqo.containment`).  A hit is answered by filtering the
   materialized rows: zero fetches, zero plan executions.
2. **Share** (:attr:`registry`): failing that, execute — but every
   maximal object's evaluation runs through the
   :class:`~repro.mqo.registry.SubplanRegistry`, so identical in-flight
   fingerprints across concurrent queries collapse onto one evaluation.

Staleness can never leak through either path: sharing is strictly
in-flight, and subsumption revalidates the stored answer's full revision
vector against the LIVE cache revisions at answer time — one maintenance
bump on any contributing host and the gold answer is skipped.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any

from repro.mqo.containment import implies
from repro.mqo.registry import SubplanRegistry
from repro.relational.relation import Relation
from repro.ur.query import QueryParseError, URQuery, parse_query

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.webbase import WebBase


class MultiQueryOptimizer:
    """Cross-query sharing and reuse for one webbase."""

    def __init__(self, webbase: "WebBase") -> None:
        self.webbase = webbase
        self.registry = SubplanRegistry(metrics=webbase.metrics)
        # Gold queries replan identically every time (planning is pure
        # CPU over the catalog), so cache their join cores by text.
        self._cores: dict[str, frozenset[frozenset[str]]] = {}
        self._cores_lock = threading.Lock()
        #: The gold query text behind the most recent :meth:`subsume` hit
        #: on this thread's behalf (display only — EXPLAIN reads it).
        self.last_subsumed_by: str = ""

    # -- containment-based reuse ---------------------------------------------

    def subsume(self, text: str) -> Relation | None:
        """Answer ``text`` from a containing gold answer, or ``None``.

        A non-``None`` return is the complete, current answer — produced
        with zero fetches.  Every ``None`` is silent: the caller falls
        through to normal (shared) execution.
        """
        store = getattr(self.webbase, "store", None)
        if store is None:
            return None
        try:
            query = parse_query(text)
        except QueryParseError:
            return None  # normal execution surfaces the real error
        candidates = store.current_answers()
        if not candidates:
            return None
        needed = {name.lower() for name in query.attributes()}
        for record in candidates:
            if not self._revisions_current(record):
                continue
            if record["query"] == text:
                return self._finish(record, query, exact=True)
            if not needed <= set(record["schema"]):
                continue
            try:
                gold_query = parse_query(record["query"])
            except QueryParseError:
                continue
            if self._join_core(text) != self._join_core(record["query"]):
                continue
            if not implies(query.condition, gold_query.condition):
                continue
            return self._finish(record, query, exact=False)
        return None

    def _finish(
        self, record: dict[str, Any], query: URQuery, exact: bool
    ) -> Relation | None:
        try:
            answer = Relation(
                record["schema"], [tuple(row) for row in record["rows"]]
            )
            if not exact:
                if query.condition is not None:
                    condition = query.condition
                    answer = answer.select(
                        lambda row: condition.evaluate(row)
                    )
                answer = answer.project(query.outputs)
        except Exception:  # noqa: BLE001 - malformed record: fall through
            return None
        self.webbase.metrics.counter("mqo.subsumed").inc()
        self.last_subsumed_by = record["query"]
        return answer

    def _revisions_current(self, record: dict[str, Any]) -> bool:
        """The stored answer's full revision vector matches the LIVE
        cache revisions (stricter than the store's own currency check:
        the cache is bumped first on maintenance)."""
        cache = self.webbase.cache
        revisions = record.get("revisions", {})
        return all(
            cache.revision(host) == revision
            for host, revision in revisions.items()
        )

    def _join_core(self, text: str) -> frozenset[frozenset[str]] | None:
        """The query's feasible maximal objects, as a set of relation
        sets — the "same join core" precondition of containment."""
        with self._cores_lock:
            core = self._cores.get(text)
        if core is not None:
            return core
        try:
            plan = self.webbase.ur.plan(text)
        except Exception:  # noqa: BLE001 - unplannable: not containable
            return None
        core = frozenset(
            frozenset(obj.relations) for obj in plan.feasible_objects
        )
        with self._cores_lock:
            if len(self._cores) > 512:
                self._cores.clear()
            self._cores[text] = core
        return core

    # -- gold persistence (the service streaming path) -----------------------

    def record_answer(
        self, text: str, answer: Relation, hosts: set[str]
    ) -> bool:
        """Persist a completed streamed answer to the gold tier with its
        live revision vector, so later overlapping queries can subsume."""
        store = getattr(self.webbase, "store", None)
        if store is None:
            return False
        cache = self.webbase.cache
        revisions = {
            host: cache.revision(host) for host in sorted(hosts) if host
        }
        return store.persist_answer(text, answer, revisions)
