"""Containment-based answer reuse: filter a gold answer, fetch nothing.

A revision-current gold-tier answer (``store/tiered.py``) is the full
materialized result of an earlier query.  When a new query is *subsumed*
by it — same join core, outputs and predicate attributes all retained by
the gold projection, and a selection predicate that logically implies the
gold one — the new answer is exactly a select + project over the stored
rows: zero plan walks against the Web, zero fetches.

The implication check (:func:`implies`) is deliberately conservative.  A
condition is decomposed into conjuncts; each conjunct is either a
*per-attribute constraint* — an equality, a range bound, an exclusion, or
an ``Or`` of equalities over one attribute (the ``IN`` expansion), folded
into a :class:`Domain` — or an *opaque atom* (attribute-vs-attribute
comparisons, negations, mixed disjunctions), compared only by canonical
form.  ``implies(new, gold)`` holds only when every gold atom is matched
syntactically and every gold per-attribute constraint is entailed by the
new query's (tighter or equal) constraint on that attribute.  Anything
the analyzer cannot classify makes the check answer "no" — falling back
to normal execution is always sound.

Soundness of the rewrite, given ``implies(new, gold)``::

    new  = π_out(σ_new(J))                         # J: union of join cores
    gold = π_G(σ_gold(J)),  out ∪ attrs(new) ⊆ G
    σ_new(gold) = π_G(σ_new ∧ gold(J)) = π_G(σ_new(J))      # new ⇒ gold
    π_out(σ_new(gold)) = π_out(σ_new(J)) = new              # attrs ⊆ G

(projection and selection commute because the predicate only reads
retained attributes; set semantics make the projections idempotent).
Revision currency is checked by the caller against the *live* cache
revision vector, so a maintenance bump anywhere in the answer's host set
disqualifies it by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.relational import conditions as C
from repro.relational.planner import canonical_condition


@dataclass
class Domain:
    """The accumulated constraint on one attribute within a conjunction."""

    #: Finite allowed set (``x = v`` / ``x IN (...)``); ``None`` = unbounded.
    allowed: frozenset | None = None
    lower: Any = None  # (value, inclusive) or None
    lower_inclusive: bool = True
    upper: Any = None
    upper_inclusive: bool = True
    excluded: set = field(default_factory=set)  # x != v values
    #: A conjunct over this attribute the analyzer could not classify.
    unknown: bool = False

    def narrow_eq(self, values: Iterable[Any]) -> None:
        values = frozenset(values)
        self.allowed = values if self.allowed is None else self.allowed & values

    def narrow_range(self, op: str, value: Any) -> None:
        try:
            if op in ("<", "<="):
                if self.upper is None or _lt(value, self.upper):
                    self.upper, self.upper_inclusive = value, op == "<="
                elif value == self.upper:
                    self.upper_inclusive = self.upper_inclusive and op == "<="
            else:  # ">", ">="
                if self.lower is None or _lt(self.lower, value):
                    self.lower, self.lower_inclusive = value, op == ">="
                elif value == self.lower:
                    self.lower_inclusive = self.lower_inclusive and op == ">="
        except TypeError:
            self.unknown = True

    def admits(self, value: Any) -> bool:
        """Can ``value`` satisfy this constraint?  (Conservative: errors
        comparing heterogeneous types count as "yes, maybe".)"""
        if value in self.excluded:
            return False
        if self.allowed is not None and value not in self.allowed:
            return False
        try:
            if self.upper is not None and not (
                _lt(value, self.upper) or (self.upper_inclusive and value == self.upper)
            ):
                return False
            if self.lower is not None and not (
                _lt(self.lower, value) or (self.lower_inclusive and value == self.lower)
            ):
                return False
        except TypeError:
            return True
        return True


def _lt(a: Any, b: Any) -> bool:
    return bool(a < b)


@dataclass
class Decomposition:
    """One condition, split into per-attribute domains + opaque atoms."""

    domains: dict[str, Domain]
    atoms: set[tuple]
    analyzable: bool = True


def decompose(condition: C.Condition | None) -> Decomposition:
    """Split a condition into per-attribute :class:`Domain` constraints
    and canonical-form opaque atoms (see module docstring)."""
    domains: dict[str, Domain] = {}
    atoms: set[tuple] = set()
    if condition is None:
        return Decomposition(domains, atoms)
    for part in _conjuncts(condition):
        attr_op = _attr_const(part)
        if attr_op is not None:
            name, op, value = attr_op
            domain = domains.setdefault(name, Domain())
            if op == "=":
                domain.narrow_eq([value])
            elif op == "!=":
                domain.excluded.add(value)
            else:
                domain.narrow_range(op, value)
            continue
        values = _or_of_equalities(part)
        if values is not None:
            name, literals = values
            domains.setdefault(name, Domain()).narrow_eq(literals)
            continue
        atoms.add(canonical_condition(part))
    return Decomposition(domains, atoms)


def _conjuncts(condition: C.Condition) -> list[C.Condition]:
    flat: list[C.Condition] = []
    stack = [condition]
    while stack:
        node = stack.pop()
        if isinstance(node, C.And):
            stack.extend(node.parts)
        else:
            flat.append(node)
    return flat


def _attr_const(part: C.Condition) -> tuple[str, str, Any] | None:
    """``attr op const`` (either side), normalized to attr-on-the-left."""
    if not isinstance(part, C.Comparison):
        return None
    left, op, right = part.left, part.op, part.right
    if isinstance(left, C.Const) and isinstance(right, C.Attr):
        flip = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!="}
        left, op, right = right, flip[op], left
    if isinstance(left, C.Attr) and isinstance(right, C.Const):
        return left.name, op, right.literal
    return None


def _or_of_equalities(part: C.Condition) -> tuple[str, list[Any]] | None:
    """``x = a OR x = b OR ...`` over ONE attribute (the ``IN`` shape)."""
    if not isinstance(part, C.Or):
        return None
    name: str | None = None
    literals: list[Any] = []
    for sub in part.parts:
        triple = _attr_const(sub)
        if triple is None or triple[1] != "=":
            return None
        attr, _, value = triple
        if name is None:
            name = attr
        elif attr != name:
            return None
        literals.append(value)
    if name is None:
        return None
    return name, literals


def implies(new: C.Condition | None, gold: C.Condition | None) -> bool:
    """Conservatively decide ``new ⇒ gold`` (every row satisfying the new
    query's predicate satisfies the gold one).  ``False`` means "could not
    prove it", never "proved the negation"."""
    if gold is None:
        return True
    new_d = decompose(new)
    gold_d = decompose(gold)
    # Every opaque gold conjunct must appear verbatim (canonically) in new.
    if not gold_d.atoms <= new_d.atoms:
        return False
    for attr, gold_dom in gold_d.domains.items():
        if gold_dom.unknown:
            return False
        new_dom = new_d.domains.get(attr)
        if new_dom is None or new_dom.unknown:
            return False
        if not _domain_implies(new_dom, gold_dom):
            return False
    return True


def _domain_implies(new: Domain, gold: Domain) -> bool:
    """Does satisfying ``new`` force satisfying ``gold`` on one attribute?"""
    if new.allowed is not None:
        # Finite candidate set: check each surviving value directly.
        survivors = [v for v in new.allowed if new.admits(v)]
        return all(gold.admits(v) for v in survivors)
    if gold.allowed is not None:
        return False  # new is infinite, gold is finite: cannot be implied
    try:
        if gold.upper is not None:
            if new.upper is None:
                return False
            if _lt(gold.upper, new.upper):
                return False
            if (
                gold.upper == new.upper
                and new.upper_inclusive
                and not gold.upper_inclusive
            ):
                return False
        if gold.lower is not None:
            if new.lower is None:
                return False
            if _lt(new.lower, gold.lower):
                return False
            if (
                gold.lower == new.lower
                and new.lower_inclusive
                and not gold.lower_inclusive
            ):
                return False
    except TypeError:
        return False
    # Gold exclusions: every excluded value must be unreachable under new.
    for value in gold.excluded:
        if value in new.excluded:
            continue
        if new.admits(value):
            return False
    return True
