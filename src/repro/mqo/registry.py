"""Shared subplan execution: single-flight over plan fingerprints.

The :class:`SubplanRegistry` is the runtime half of the multi-query
optimizer.  Concurrent queries whose maximal objects canonicalize to the
same fingerprint (:func:`repro.relational.planner.plan_fingerprint`)
coalesce onto ONE evaluation: the first arrival becomes the *leader* and
runs the subplan under its own execution context; every later arrival
becomes a *subscriber* that waits on the leader's flight and shares the
resulting :class:`~repro.relational.relation.Relation` (immutable, so
sharing the object is safe).  This piggybacks on the same leader/waiter
protocol as the engine's per-``(relation, bindings)`` fetch single-flight
in :mod:`repro.core.execution` — one level up, at plan granularity.

Cancellation safety mirrors the ``AccessHandle`` watcher pattern:

* a **subscriber** cancelling (deadline, client gone) detaches — its
  refcount drops and its own wait raises, but the shared node keeps
  running for the remaining subscribers;
* the **leader** failing or cancelling fails the node: the flight is
  popped, survivors observe the error and loop — the first survivor
  promotes itself to leader and re-runs the subplan, so shared work is
  never lost to queries that still want it;
* results are fanned out only on success — a failure is never shared, so
  one query's transient fault cannot poison its neighbors.

The registry holds no results beyond the flight itself: sharing is
strictly *in-flight*, so staleness never outlives the queries being
answered (cross-time reuse is the containment layer's job, which carries
revision-vector validation).

:class:`BatchGate` is the admission-side companion: a short batching
window that releases near-simultaneous arrivals together, turning
"16 clients asked within a few milliseconds" into "16 queries in flight
at once" so their identical fingerprints actually overlap.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable

from repro.relational.relation import Relation


class _SharedNode:
    """One in-flight shared subplan evaluation."""

    __slots__ = ("event", "result", "error", "subscribers", "lock")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.result: Relation | None = None
        self.error: BaseException | None = None
        self.subscribers = 1  # the leader counts
        self.lock = threading.Lock()


class SubplanRegistry:
    """In-flight fingerprint → shared evaluation, with metrics."""

    def __init__(self, metrics: Any = None) -> None:
        self._lock = threading.Lock()
        self._nodes: dict[str, _SharedNode] = {}
        self.metrics = metrics

    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc()

    def inflight(self) -> int:
        """How many distinct subplans are currently executing."""
        with self._lock:
            return len(self._nodes)

    def run(
        self,
        fingerprint: str,
        context: Any,
        thunk: Callable[[], Relation | None],
        span: Any = None,
    ) -> Relation | None:
        """Evaluate ``thunk`` once per in-flight ``fingerprint``.

        The caller that finds no flight open becomes the leader and runs
        ``thunk`` on its own thread/context; concurrent callers with the
        same fingerprint wait (cancellably, via ``context.check_cancelled``)
        and share the leader's result.  See the module docstring for the
        failure and cancellation ladder.
        """
        while True:
            with self._lock:
                node = self._nodes.get(fingerprint)
                if node is None:
                    node = self._nodes[fingerprint] = _SharedNode()
                    leader = True
                else:
                    leader = False
                    with node.lock:
                        node.subscribers += 1
            if leader:
                self._count("mqo.shared_leads")
                if span is not None:
                    span.attrs["mqo"] = "lead"
                try:
                    result = thunk()
                except BaseException as exc:
                    with self._lock:
                        self._nodes.pop(fingerprint, None)
                    node.error = exc
                    node.event.set()
                    raise
                with self._lock:
                    self._nodes.pop(fingerprint, None)
                node.result = result
                node.event.set()
                return result
            # Subscriber: wait out the leader, staying cancellable.
            try:
                poll = getattr(context, "check_cancelled", None)
                if poll is None:
                    node.event.wait()
                else:
                    while not node.event.wait(0.05):
                        poll("mqo:%s" % fingerprint[:12])
            except BaseException:
                # This subscriber is gone; the node (and its other
                # subscribers) live on — detach, don't kill.
                with node.lock:
                    node.subscribers -= 1
                self._count("mqo.detached")
                raise
            if node.error is None:
                self._count("mqo.shared_hits")
                if span is not None:
                    span.attrs["mqo"] = "hit"
                return node.result
            # The leader failed or was cancelled out from under us: its
            # flight is already popped, so loop — whoever re-enters first
            # promotes to leader and re-runs.
            self._count("mqo.promotions")


class BatchGate:
    """A short admission batching window for the service dispatch path.

    The first arrival opens a window of ``window_seconds``; every arrival
    before it closes waits for the SAME deadline, so the batch releases
    together and overlapping fingerprints coalesce in the registry.  The
    wait is bounded by the window (observable via the caller's
    ``mqo.window_wait_seconds`` histogram) and cancellable: ``admit``
    polls ``context.check_cancelled`` while it sleeps.
    """

    def __init__(self, window_seconds: float, metrics: Any = None) -> None:
        if window_seconds <= 0:
            raise ValueError(
                "window_seconds must be > 0; got %r" % window_seconds
            )
        self.window_seconds = window_seconds
        self.metrics = metrics
        self._lock = threading.Lock()
        self._deadline: float | None = None

    def admit(self, context: Any = None) -> float:
        """Hold the caller until the current window closes; returns the
        seconds actually waited."""
        start = time.monotonic()
        with self._lock:
            if self._deadline is None or start >= self._deadline:
                self._deadline = start + self.window_seconds
            deadline = self._deadline
        poll = getattr(context, "check_cancelled", None) if context else None
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            time.sleep(min(remaining, 0.02))
            if poll is not None:
                poll("mqo:batch-window")
        with self._lock:
            if self._deadline == deadline:
                self._deadline = None
        waited = time.monotonic() - start
        if self.metrics is not None:
            self.metrics.histogram("mqo.window_wait_seconds").observe(waited)
        return waited
