"""Multi-query optimization: cross-query sharing and answer reuse.

The layers below this one answer ONE query well; ``repro.mqo`` makes
*concurrent* queries cheaper than the sum of their parts, three ways:

* **plan fingerprinting** — canonical identity for logical plan subtrees
  (computed in :mod:`repro.relational.planner`, carried on
  :class:`~repro.ur.planner.ObjectPlan`);
* **shared subplan execution** — in-flight fingerprints coalesce onto a
  single evaluation (:class:`~repro.mqo.registry.SubplanRegistry`), with
  a service-side :class:`~repro.mqo.registry.BatchGate` that releases
  near-simultaneous arrivals together so they actually overlap;
* **containment-based answer reuse** — a query subsumed by a
  revision-current gold-tier answer is served by filtering materialized
  rows with zero fetches (:mod:`repro.mqo.containment`, applied by
  :class:`~repro.mqo.optimizer.MultiQueryOptimizer`).

Enabled per webbase via ``WebBaseConfig(mqo=True)`` / the ``--mqo`` CLI
flag; the service and cluster tiers layer their admission batching and
fingerprint-sticky routing on top.
"""

from repro.mqo.containment import Decomposition, Domain, decompose, implies
from repro.mqo.optimizer import MultiQueryOptimizer
from repro.mqo.registry import BatchGate, SubplanRegistry

__all__ = [
    "BatchGate",
    "Decomposition",
    "Domain",
    "MultiQueryOptimizer",
    "SubplanRegistry",
    "decompose",
    "implies",
]
