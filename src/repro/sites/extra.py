"""The remaining timing-table sites: WWWheels, CarReviews, NY Daily News,
AutoConnect and Yahoo Cars.

These exist so the Section 7 timing benchmark runs against all ten sites
the paper measured, and so the substrate covers more of the messy-Web
surface: WWWheels lists prices in Canadian dollars and emits sloppy HTML
(unclosed tags, uppercase, unquoted attributes); NY Daily News is sloppy
too; Yahoo Cars renders results as labeled definition lists instead of
tables, exercising the non-tabular extraction wrapper.
"""

from __future__ import annotations

from repro.sites.base import CarSite, CarSiteConfig, SiteVocabulary
from repro.sites.dataset import Ad, Dataset
from repro.web import html as H
from repro.web.html import RenderStyle
from repro.web.http import Url

WWWHEELS_HOST = "www.wwwheels.com"
CARREVIEWS_HOST = "www.carreviews.com"
NYDAILY_HOST = "www.nydailynews.com"
AUTOCONNECT_HOST = "www.autoconnect.com"
YAHOOCARS_HOST = "cars.yahoo.com"


def build_wwwheels(dataset: Dataset) -> CarSite:
    vocabulary = SiteVocabulary(
        columns=[
            ("make", "Make"),
            ("model", "Model"),
            ("year", "Year"),
            ("price", "Price"),
            ("zipcode", "Zip"),
            ("contact", "Contact"),
        ],
        price_formatter="cad",
    )
    config = CarSiteConfig(
        host=WWWHEELS_HOST,
        title="WWWheels Canada",
        vocabulary=vocabulary,
        style=RenderStyle.sloppy(),
        page_size=10,
        refine_threshold=None,
        form_method="get",
        entry_link_name="Find a Car",
        search_path="/find",
        results_path="/cgi-bin/wheels",
        model_in_first_form=True,
    )
    return CarSite(config, dataset)


def build_carreviews(dataset: Dataset) -> CarSite:
    config = CarSiteConfig(
        host=CARREVIEWS_HOST,
        title="CarReviews Classifieds",
        page_size=10,
        refine_threshold=None,
        form_method="get",
        entry_link_name="Classifieds",
        search_path="/classifieds",
        results_path="/cgi-bin/classy",
        model_in_first_form=True,
    )
    return CarSite(config, dataset)


def build_nydailynews(dataset: Dataset) -> CarSite:
    config = CarSiteConfig(
        host=NYDAILY_HOST,
        title="NY Daily News Classifieds",
        style=RenderStyle.sloppy(),
        page_size=10,
        refine_threshold=15,
        form_method="post",
        entry_link_name="Auto Classifieds",
        search_path="/classified/auto",
        results_path="/cgi-bin/dailyads",
    )
    return CarSite(config, dataset)


def build_autoconnect(dataset: Dataset) -> CarSite:
    vocabulary = SiteVocabulary(
        columns=[
            ("make", "Make"),
            ("model", "Model"),
            ("year", "Year"),
            ("price", "Price"),
            ("features", "Equipment"),
            ("zipcode", "Location"),
            ("contact", "Contact"),
        ],
        zip_field="location",
    )
    config = CarSiteConfig(
        host=AUTOCONNECT_HOST,
        title="AutoConnect Dealers",
        vocabulary=vocabulary,
        page_size=10,
        refine_threshold=12,
        form_method="post",
        entry_link_name="Dealer Search",
        search_path="/dealers",
        results_path="/cgi-bin/connect",
        ask_zipcode=True,
        redirect_after_post=True,
    )
    return CarSite(config, dataset)


class YahooCarsSite(CarSite):
    """Yahoo Cars renders each ad as a labeled definition-list block.

    The tabular wrapper cannot extract these pages; the labeled-field
    wrapper in :mod:`repro.navigation.extract` can.
    """

    def data_page(self, params: dict[str, str], ads: list[Ad]) -> H.Element:
        cfg = self.config
        start = int(params.get("start", "0") or 0)
        chunk = ads[start : start + cfg.page_size]
        blocks: list[H.Element] = [
            H.el(
                "p",
                "Listings %d-%d of %d" % (start + 1, start + len(chunk), len(ads)),
            )
        ]
        for ad in chunk:
            blocks.append(
                H.el(
                    "dl",
                    H.el("dt", "Make"),
                    H.el("dd", ad.car.make),
                    H.el("dt", "Model"),
                    H.el("dd", ad.car.model),
                    H.el("dt", "Year"),
                    H.el("dd", str(ad.car.year)),
                    H.el("dt", "Price"),
                    H.el("dd", "${:,}".format(ad.price)),
                    H.el("dt", "Contact"),
                    H.el("dd", ad.contact),
                    **{"class": "listing"},
                )
            )
        if start + cfg.page_size < len(ads):
            next_params = dict(params)
            next_params["start"] = str(start + cfg.page_size)
            more_url = Url(self.host, cfg.results_path).with_params(next_params)
            blocks.append(H.el("p", H.link(str(more_url), "More")))
        return H.page("%s Listings" % cfg.title, *blocks)


def build_yahoocars(dataset: Dataset) -> YahooCarsSite:
    config = CarSiteConfig(
        host=YAHOOCARS_HOST,
        title="Yahoo Cars",
        page_size=10,
        refine_threshold=None,
        form_method="get",
        entry_link_name="Used Car Listings",
        search_path="/listings",
        results_path="/cgi-bin/ycars",
        model_in_first_form=True,
    )
    return YahooCarsSite(config, dataset)
