"""The synthetic used-car world behind the simulated Web sites.

The paper evaluates its webbase on ten live car-related sites (classified
ads, dealers, blue-book prices, reliability ratings, financing).  Offline we
substitute a deterministic synthetic dataset: one seeded generator produces
cars, classified ads, dealer inventories, blue-book prices, safety ratings
and interest rates, and each simulated site serves its own slice of that
world through its own page topology and vocabulary.

Determinism matters: the benchmark tables must be reproducible run to run,
and the handle-agreement property (two handles of the same relation return
the same tuples) is only testable against a stable extension.

The generator guarantees, by construction, that the paper's two running
queries are non-empty: Ford Escorts exist at every classified/dealer site,
and there are 1993-or-later Jaguars in the New York area with good safety
ratings priced below their blue-book value.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


# (make, model, base 1999 price in USD) — base prices anchor ad and
# blue-book prices so the price < blue-book comparison is meaningful.
CAR_CATALOG: list[tuple[str, str, int]] = [
    ("ford", "escort", 8900),
    ("ford", "taurus", 13500),
    ("ford", "explorer", 19800),
    ("jaguar", "xj6", 34500),
    ("jaguar", "xk8", 52000),
    ("honda", "civic", 11200),
    ("honda", "accord", 15300),
    ("toyota", "camry", 16100),
    ("toyota", "corolla", 11900),
    ("bmw", "325i", 27400),
    ("chevrolet", "cavalier", 9800),
    ("dodge", "caravan", 14700),
    ("volkswagen", "jetta", 13900),
    ("mercury", "sable", 12800),
    ("saab", "900", 21500),
]

MAKES: list[str] = sorted({make for make, _, _ in CAR_CATALOG})

YEARS: list[int] = list(range(1990, 2000))

NY_ZIPCODES: list[str] = ["10001", "10025", "10451", "11201", "11550", "10304"]
OTHER_ZIPCODES: list[str] = ["07030", "06902", "19103", "02134", "60601", "94110"]

CONDITIONS: list[str] = ["excellent", "good", "fair"]
SAFETY_RATINGS: list[str] = ["poor", "fair", "good", "excellent"]
FEATURE_POOL: list[str] = [
    "air conditioning",
    "leather seats",
    "sunroof",
    "abs brakes",
    "cd player",
    "power windows",
    "alloy wheels",
    "cruise control",
]
FIRST_NAMES = ["Pat", "Chris", "Alex", "Sam", "Morgan", "Jamie", "Casey", "Robin"]
LAST_NAMES = ["Lee", "Rivera", "Chen", "Okafor", "Schmidt", "Nguyen", "Brown", "Costa"]

# Hosts that carry classified ads and dealer inventories; every one of the
# ten timing-table sites that sells cars appears here.
CLASSIFIED_HOSTS = [
    "www.newsday.com",
    "www.nytimes.com",
    "www.nydailynews.com",
    "www.carreviews.com",
]
DEALER_HOSTS = [
    "www.carpoint.com",
    "www.autoweb.com",
    "www.wwwheels.com",
    "www.autoconnect.com",
    "cars.yahoo.com",
    "www.usedcarmart.com",
]

# wwwheels is a Canadian site; its prices are listed in CAD and the logical
# layer converts them back (vocabulary/representation discrepancy, Sec. 5).
CAD_PER_USD = 1.48


@dataclass(frozen=True)
class Car:
    """A (make, model, year) triple — the paper's ``Car`` attribute bundle."""

    make: str
    model: str
    year: int


@dataclass(frozen=True)
class Ad:
    """One used-car advertisement carried by a classified or dealer site."""

    ad_id: int
    host: str
    car: Car
    price: int  # USD
    contact: str
    zipcode: str
    features: tuple[str, ...]
    picture: str
    condition: str


@dataclass(frozen=True)
class BlueBookEntry:
    car: Car
    condition: str
    bb_price: int


@dataclass(frozen=True)
class SafetyRating:
    car: Car
    safety: str


@dataclass(frozen=True)
class FinanceRate:
    zipcode: str
    duration: int  # months
    rate: float  # annual percentage rate


def _depreciated(base: int, year: int, rng: random.Random) -> int:
    """Price for a ``year`` car given its 1999 base, with +-12% spread."""
    age = 1999 - year
    value = base * (0.88**age)
    spread = rng.uniform(0.88, 1.12)
    return max(500, int(round(value * spread, -1)))


class Dataset:
    """The generated world.  Construct via :func:`generate`."""

    def __init__(
        self,
        ads: list[Ad],
        bluebook: list[BlueBookEntry],
        safety: list[SafetyRating],
        rates: list[FinanceRate],
    ) -> None:
        self.ads = ads
        self.bluebook = bluebook
        self.safety = safety
        self.rates = rates
        self._ads_by_host: dict[str, list[Ad]] = {}
        for ad in ads:
            self._ads_by_host.setdefault(ad.host, []).append(ad)
        self._bluebook_index = {(e.car, e.condition): e for e in bluebook}
        self._safety_index = {r.car: r for r in safety}

    # -- lookups used by site CGI handlers ----------------------------------

    def ads_for(
        self,
        host: str,
        make: str | None = None,
        model: str | None = None,
        zipcode: str | None = None,
    ) -> list[Ad]:
        """Ads carried by ``host`` matching the given filters."""
        selected = []
        for ad in self._ads_by_host.get(host, ()):
            if make and ad.car.make != make.lower():
                continue
            if model and ad.car.model != model.lower():
                continue
            if zipcode and ad.zipcode != zipcode:
                continue
            selected.append(ad)
        return selected

    def add_ad(self, ad: Ad) -> Ad:
        """Post one new advertisement (site churn between queries) —
        keeps the per-host index consistent with the flat list."""
        self.ads.append(ad)
        self._ads_by_host.setdefault(ad.host, []).append(ad)
        return ad

    def next_ad_id(self) -> int:
        return max((ad.ad_id for ad in self.ads), default=0) + 1

    def ad_by_id(self, ad_id: int) -> Ad | None:
        for ad in self.ads:
            if ad.ad_id == ad_id:
                return ad
        return None

    def models_of(self, make: str) -> list[str]:
        return sorted({m for mk, m, _ in CAR_CATALOG if mk == make})

    def bluebook_price(self, car: Car, condition: str) -> BlueBookEntry | None:
        return self._bluebook_index.get((car, condition))

    def safety_of(self, car: Car) -> SafetyRating | None:
        return self._safety_index.get(car)

    def rates_for(self, zipcode: str, duration: int | None = None) -> list[FinanceRate]:
        return [
            r
            for r in self.rates
            if r.zipcode == zipcode and (duration is None or r.duration == duration)
        ]


def generate(seed: int = 1999, ads_per_host: int = 120) -> Dataset:
    """Generate the world deterministically from ``seed``.

    ``ads_per_host`` controls site depth; the default produces several
    pagination steps per result listing at every site.
    """
    rng = random.Random(seed)
    base_price = {(make, model): price for make, model, price in CAR_CATALOG}

    # Blue-book prices: per (car, condition), centred on the depreciated base.
    bluebook = []
    for make, model, base in CAR_CATALOG:
        for year in YEARS:
            mid = _depreciated(base, year, random.Random("%s:bb:%s:%s:%d" % (seed, make, model, year)))
            for condition, factor in (("excellent", 1.10), ("good", 1.00), ("fair", 0.85)):
                bluebook.append(
                    BlueBookEntry(Car(make, model, year), condition, int(round(mid * factor, -1)))
                )

    # Safety ratings: deterministic per car; jaguars from 1993 on are 'good'
    # or better so the running Jaguar query has answers.
    safety = []
    for make, model, _ in CAR_CATALOG:
        for year in YEARS:
            car = Car(make, model, year)
            roll = random.Random("%s:safety:%s:%s:%d" % (seed, make, model, year))
            if make == "jaguar" and year >= 1993:
                rating = roll.choice(["good", "excellent"])
            else:
                rating = roll.choice(SAFETY_RATINGS)
            safety.append(SafetyRating(car, rating))

    # Interest rates: per (zipcode, duration).
    rates = []
    for zipcode in NY_ZIPCODES + OTHER_ZIPCODES:
        for duration in (24, 36, 48, 60):
            roll = random.Random("%s:rate:%s:%d" % (seed, zipcode, duration))
            rate = round(6.0 + duration / 60.0 + roll.uniform(-0.5, 1.5), 2)
            rates.append(FinanceRate(zipcode, duration, rate))

    bluebook_index = {(e.car, e.condition): e.bb_price for e in bluebook}

    ads: list[Ad] = []
    ad_id = 1000
    for host in CLASSIFIED_HOSTS + DEALER_HOSTS:
        host_rng = random.Random("%s:ads:%s" % (seed, host))
        for i in range(ads_per_host):
            if i < 6:
                # Guaranteed coverage: Ford Escorts at every site, and NY-area
                # 1993+ Jaguars priced below blue book at classified sites.
                if i < 3:
                    make, model = "ford", "escort"
                    year = host_rng.choice([1994, 1995, 1996, 1997])
                else:
                    make, model = "jaguar", host_rng.choice(["xj6", "xk8"])
                    year = host_rng.choice([1993, 1994, 1995, 1996])
                zipcode = host_rng.choice(NY_ZIPCODES)
            else:
                make, model, _ = host_rng.choice(CAR_CATALOG)
                year = host_rng.choice(YEARS)
                zipcode = host_rng.choice(NY_ZIPCODES + OTHER_ZIPCODES)
            car = Car(make, model, year)
            condition = host_rng.choice(CONDITIONS)
            asking = _depreciated(base_price[(make, model)], year, host_rng)
            if make == "jaguar" and i < 6:
                # Undercut blue book so "price < BBPrice" selects these ads.
                asking = int(bluebook_index[(car, condition)] * 0.9)
            contact = "%s %s (555-%04d)" % (
                host_rng.choice(FIRST_NAMES),
                host_rng.choice(LAST_NAMES),
                host_rng.randrange(10000),
            )
            n_features = host_rng.randrange(1, 4)
            features = tuple(sorted(host_rng.sample(FEATURE_POOL, n_features)))
            ads.append(
                Ad(
                    ad_id=ad_id,
                    host=host,
                    car=car,
                    price=asking,
                    contact=contact,
                    zipcode=zipcode,
                    features=features,
                    picture="/pics/%d.jpg" % ad_id,
                    condition=condition,
                )
            )
            ad_id += 1

    return Dataset(ads=ads, bluebook=bluebook, safety=safety, rates=rates)
