"""The simulated Newsday classifieds site — Figure 2 of the paper.

Topology (matching the paper's navigation map):

* entry page with ``link(auto)`` to the used-car section, plus the three
  distractor links of Figure 2 (new car dealer, collectible cars, sport
  utility);
* the used-car page carries ``form f1(make)``;
* submitting f1 either returns a data page directly (few matches) or a
  dynamically generated ``form f2(model, featrs)``;
* data pages paginate through a ``More`` link and each row carries a
  ``Car Features`` link to a detail page (the ``newsdayCarFeatures`` VPS
  relation: Url -> Features, Picture).
"""

from __future__ import annotations

from repro.sites.base import CarSite, CarSiteConfig, SiteVocabulary
from repro.sites.dataset import Dataset

HOST = "www.newsday.com"


def build(dataset: Dataset) -> CarSite:
    config = CarSiteConfig(
        host=HOST,
        title="Newsday Classifieds",
        vocabulary=SiteVocabulary(),
        page_size=10,
        refine_threshold=15,
        form_method="post",
        entry_link_name="Auto",
        search_path="/classified/cars",
        results_path="/cgi-bin/nclassy",
        features_path="/classified/features",
        extra_entry_links=[
            ("New Car Dealer", "/classified/dealers"),
            ("Collectible Cars", "/classified/collectibles"),
            ("Sport Utility", "/classified/suv"),
        ],
    )
    return CarSite(config, dataset)
