"""The simulated car-domain Web sites used throughout the reproduction.

``build_world`` assembles the full evaluation environment: twelve sites
(the paper's ten timing-table sites plus CarPoint and CarFinance from
Table 1) served from one :class:`~repro.web.server.WebServer`, all backed
by one deterministic synthetic dataset.
"""

from repro.sites.dataset import (
    Ad,
    BlueBookEntry,
    Car,
    Dataset,
    FinanceRate,
    SafetyRating,
    generate,
)
from repro.sites.world import TIMING_TABLE_HOSTS, World, build_world

__all__ = [
    "Ad",
    "BlueBookEntry",
    "Car",
    "Dataset",
    "FinanceRate",
    "SafetyRating",
    "TIMING_TABLE_HOSTS",
    "World",
    "build_world",
    "generate",
]
