"""The simulated New York Times classifieds site.

A shallower topology than Newsday: one search form with the make mandatory
and the model optional (Table 3's ``nyTimes`` binding sets), no refinement
form, features inline in the result table — and a different vocabulary
("Manufacturer" instead of "Make", "Asking Price" instead of "Price") that
the logical layer has to standardize.
"""

from __future__ import annotations

from repro.sites.base import CarSite, CarSiteConfig, SiteVocabulary
from repro.sites.dataset import Dataset

HOST = "www.nytimes.com"


def build(dataset: Dataset) -> CarSite:
    vocabulary = SiteVocabulary(
        columns=[
            ("make", "Manufacturer"),
            ("model", "Model"),
            ("year", "Year"),
            ("features", "Features"),
            ("price", "Asking Price"),
            ("contact", "Contact"),
        ],
        make_field="manufacturer",
    )
    config = CarSiteConfig(
        host=HOST,
        title="NY Times Auto Classifieds",
        vocabulary=vocabulary,
        page_size=12,
        refine_threshold=None,
        form_method="get",
        entry_link_name="Automobiles",
        search_path="/classified/autos",
        results_path="/cgi-bin/autosearch",
        model_in_first_form=True,
    )
    return CarSite(config, dataset)
