"""The simulated Car and Driver reliability site.

Serves the ``carAndDriver(Car Safety)`` VPS relation of Table 1: safety
ratings per (make, model, year), looked up by make.
"""

from __future__ import annotations

from repro.sites.dataset import CAR_CATALOG, Dataset, MAKES, YEARS, Car
from repro.web import html as H
from repro.web.http import Request
from repro.web.server import Site

HOST = "www.caranddriver.com"


class CarAndDriverSite(Site):
    def __init__(self, dataset: Dataset) -> None:
        super().__init__(HOST)
        self.dataset = dataset
        self.route("/", self.entry_page)
        self.route("/ratings", self.ratings_form_page)
        self.route("/cgi-bin/ratings", self.ratings_page)

    def entry_page(self, request: Request) -> H.Element:
        return H.page(
            "Car and Driver",
            H.bullet_links(
                [("Safety Ratings", "/ratings"), ("Road Tests", "/roadtests")]
            ),
        )

    def ratings_form_page(self, request: Request) -> H.Element:
        form = H.form(
            "/cgi-bin/ratings",
            H.labeled("Make", H.select("make", MAKES)),
            H.submit_button("Show Ratings"),
            method="get",
        )
        return H.page("Safety Ratings", form)

    def ratings_page(self, request: Request) -> H.Element:
        make = request.params.get("make", "").lower()
        rows = []
        for catalog_make, model, _ in CAR_CATALOG:
            if catalog_make != make:
                continue
            for year in YEARS:
                rating = self.dataset.safety_of(Car(make, model, year))
                if rating is not None:
                    rows.append([make, model, str(year), rating.safety])
        if not rows:
            return H.page("Safety Ratings", H.el("p", "No ratings for %s." % make))
        return H.page(
            "Safety Ratings for %s" % make,
            H.table(["Make", "Model", "Year", "Safety"], rows),
        )


def build(dataset: Dataset) -> CarAndDriverSite:
    return CarAndDriverSite(dataset)
