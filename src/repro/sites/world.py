"""Assembles the full simulated Web: one server hosting every site.

``build_world`` is the single entry point the examples, tests and
benchmarks use to stand up the paper's evaluation environment.  Per-site
latency models are seeded deterministically so the timing table varies by
site (as the paper's does) but is reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.sites import (
    caranddriver,
    carfinance,
    dealers,
    extra,
    kellys,
    newsday,
    nytimes,
    usedcarmart,
)
from repro.sites.dataset import Dataset, generate
from repro.web.clock import LatencyModel
from repro.web.server import Site, WebServer

# The ten sites of the paper's Section 7 timing table, plus the two
# non-classified sources (blue book, reliability, finance) from Table 1.
TIMING_TABLE_HOSTS = [
    "www.autoweb.com",
    "www.wwwheels.com",
    "www.nytimes.com",
    "www.carreviews.com",
    "www.nydailynews.com",
    "www.caranddriver.com",
    "www.autoconnect.com",
    "www.newsday.com",
    "cars.yahoo.com",
    "www.kbb.com",
]


@dataclass
class World:
    """The assembled simulated Web plus its backing dataset."""

    server: WebServer
    dataset: Dataset

    def site(self, host: str) -> Site:
        return self.server.site(host)


def build_world(seed: int = 1999, ads_per_host: int = 120) -> World:
    """Build the dataset and register every simulated site on one server."""
    dataset = generate(seed=seed, ads_per_host=ads_per_host)
    server = WebServer()
    sites: list[Site] = [
        newsday.build(dataset),
        nytimes.build(dataset),
        dealers.build_carpoint(dataset),
        dealers.build_autoweb(dataset),
        kellys.build(dataset),
        caranddriver.build(dataset),
        carfinance.build(dataset),
        extra.build_wwwheels(dataset),
        extra.build_carreviews(dataset),
        extra.build_nydailynews(dataset),
        extra.build_autoconnect(dataset),
        extra.build_yahoocars(dataset),
        usedcarmart.build(dataset),
    ]
    for site in sites:
        # Deterministic per-host network characteristics: distant sites have
        # larger round trips, so the elapsed column varies by site.
        roll = random.Random("%s:latency:%s" % (seed, site.host))
        site.latency = LatencyModel(
            rtt=round(roll.uniform(0.2, 0.8), 3),
            per_kilobyte=round(roll.uniform(0.008, 0.02), 4),
        )
        server.add_site(site)
    return World(server=server, dataset=dataset)
