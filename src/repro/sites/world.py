"""Assembles the full simulated Web: one server hosting every site.

``build_world`` is the single entry point the examples, tests and
benchmarks use to stand up the paper's evaluation environment.  Per-site
latency models are seeded deterministically so the timing table varies by
site (as the paper's does) but is reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.sites import (
    caranddriver,
    carfinance,
    dealers,
    extra,
    kellys,
    newsday,
    nytimes,
    usedcarmart,
)
from repro.sites.base import CarSite
from repro.sites.dataset import Ad, Car, Dataset, FEATURE_POOL, NY_ZIPCODES, generate
from repro.web.clock import LatencyModel
from repro.web.server import Site, WebServer

# The ten sites of the paper's Section 7 timing table, plus the two
# non-classified sources (blue book, reliability, finance) from Table 1.
TIMING_TABLE_HOSTS = [
    "www.autoweb.com",
    "www.wwwheels.com",
    "www.nytimes.com",
    "www.carreviews.com",
    "www.nydailynews.com",
    "www.caranddriver.com",
    "www.autoconnect.com",
    "www.newsday.com",
    "cars.yahoo.com",
    "www.kbb.com",
]


@dataclass
class World:
    """The assembled simulated Web plus its backing dataset."""

    server: WebServer
    dataset: Dataset

    def site(self, host: str) -> Site:
        return self.server.site(host)


def mutate_site_listings(
    world: World,
    host: str,
    make: str = "ford",
    model: str = "escort",
    count: int = 3,
    seed: int = 0,
    change: str = "auto",
) -> list[Ad]:
    """Churn one live site between queries (the dynamic-content hazard).

    Posts ``count`` new classified ads for ``make model`` on ``host`` —
    so query answers genuinely change — and applies one *structural* edit
    the maintenance machinery can detect on its next sweep:

    * ``change="auto"``   — the search form's make list gains an option
      (``domain_value_added``, absorbed by ``apply_auto_changes``; the
      cache invalidates the host via a revision bump);
    * ``change="manual"`` — the search form grows a brand-new text
      attribute (``new_form_attribute``; the cache quarantines the host
      until a designer re-demonstrates the flow).

    Returns the ads added.  Deterministic for a given ``seed``.
    """
    site = world.site(host)
    if not isinstance(site, CarSite):
        raise ValueError("host %r is not a mutable classified/dealer site" % host)
    rng = random.Random("%s:mutate:%s:%s" % (seed, host, change))
    added: list[Ad] = []
    for _ in range(count):
        car = Car(make=make, model=model, year=rng.choice(range(1993, 2000)))
        added.append(
            world.dataset.add_ad(
                Ad(
                    ad_id=world.dataset.next_ad_id(),
                    host=host,
                    car=car,
                    price=int(round(rng.uniform(4000, 9000), -1)),
                    contact="New Seller %d" % rng.randint(100, 999),
                    zipcode=rng.choice(NY_ZIPCODES),
                    features=tuple(sorted(rng.sample(FEATURE_POOL, 2))),
                    picture="/pics/new%d.jpg" % rng.randint(1, 99),
                    condition=rng.choice(["excellent", "good"]),
                )
            )
        )
    if change == "auto":
        # Every call must produce a *fresh* structural divergence, or a
        # second mutation would be invisible to the map diff and the cache
        # would serve the pre-change answers: new select option when the
        # form has one, otherwise a new (auto-classified) entry-page link.
        if site.config.make_widget == "select":
            site.extra_makes.append("newmake%d" % (len(site.extra_makes) + 1))
        else:
            idx = len(site.config.extra_entry_links) + 1
            path = "/specials%d" % idx
            site.config.extra_entry_links.append(("Specials %d" % idx, path))
            site.route(path, site.dead_end_page)
    elif change == "manual":
        field = "extra%d" % (len(site.extra_search_widgets) + 1)
        site.extra_search_widgets.append(("Extra %s" % field, field))
    else:
        raise ValueError("change must be 'auto' or 'manual'; got %r" % change)
    return added


def build_world(seed: int = 1999, ads_per_host: int = 120) -> World:
    """Build the dataset and register every simulated site on one server."""
    dataset = generate(seed=seed, ads_per_host=ads_per_host)
    server = WebServer()
    sites: list[Site] = [
        newsday.build(dataset),
        nytimes.build(dataset),
        dealers.build_carpoint(dataset),
        dealers.build_autoweb(dataset),
        kellys.build(dataset),
        caranddriver.build(dataset),
        carfinance.build(dataset),
        extra.build_wwwheels(dataset),
        extra.build_carreviews(dataset),
        extra.build_nydailynews(dataset),
        extra.build_autoconnect(dataset),
        extra.build_yahoocars(dataset),
        usedcarmart.build(dataset),
    ]
    for site in sites:
        # Deterministic per-host network characteristics: distant sites have
        # larger round trips, so the elapsed column varies by site.
        roll = random.Random("%s:latency:%s" % (seed, site.host))
        site.latency = LatencyModel(
            rtt=round(roll.uniform(0.2, 0.8), 3),
            per_kilobyte=round(roll.uniform(0.008, 0.02), 4),
        )
        server.add_site(site)
    return World(server=server, dataset=dataset)
