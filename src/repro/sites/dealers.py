"""The simulated dealer sites: CarPoint and AutoWeb.

Dealer sites expose inventories keyed by zip code (Table 1's
``carPoint(Dealer Cars Price Features ZipCode Contact)`` and
``autoWeb(Car Price Features ZipCode Contact)``).  Both sites ask for a
zip code in the first form; CarPoint refines large result sets through a
second form, AutoWeb returns everything paginated.
"""

from __future__ import annotations

from repro.sites.base import CarSite, CarSiteConfig, SiteVocabulary
from repro.sites.dataset import Dataset

CARPOINT_HOST = "www.carpoint.com"
AUTOWEB_HOST = "www.autoweb.com"


def build_carpoint(dataset: Dataset) -> CarSite:
    vocabulary = SiteVocabulary(
        columns=[
            ("make", "Make"),
            ("model", "Model"),
            ("year", "Year"),
            ("price", "Price"),
            ("features", "Features"),
            ("zipcode", "Zip"),
            ("contact", "Dealer"),
        ],
        zip_field="zipcode",
    )
    config = CarSiteConfig(
        host=CARPOINT_HOST,
        title="CarPoint Used Inventory",
        vocabulary=vocabulary,
        page_size=10,
        refine_threshold=15,
        form_method="post",
        entry_link_name="Used Inventory",
        search_path="/used",
        results_path="/cgi-bin/inventory",
        ask_zipcode=True,
    )
    return CarSite(config, dataset)


def build_autoweb(dataset: Dataset) -> CarSite:
    vocabulary = SiteVocabulary(
        columns=[
            ("year", "Year"),
            ("make", "Make"),
            ("model", "Model"),
            ("features", "Options"),
            ("price", "Price"),
            ("zipcode", "Zip Code"),
            ("contact", "Seller"),
        ],
    )
    config = CarSiteConfig(
        host=AUTOWEB_HOST,
        title="AutoWeb Marketplace",
        vocabulary=vocabulary,
        page_size=8,
        refine_threshold=None,
        form_method="get",
        entry_link_name="Browse Cars",
        search_path="/marketplace",
        results_path="/cgi-bin/find",
        ask_zipcode=True,
        model_in_first_form=True,
    )
    return CarSite(config, dataset)
