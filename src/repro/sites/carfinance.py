"""The simulated Car Finance site.

Serves the interest-rate VPS relation (Table 1's ``carFinance``): annual
percentage rates by zip code and loan duration.  In our synthetic world
rates are car-independent (a simplification documented in DESIGN.md); the
relation is ``carFinance(ZipCode, Duration, Rate)``.

The zip-code field is free text, so the map builder cannot infer its
mandatoriness from the widget — this is exactly the case where the paper's
designer must supply a hint.
"""

from __future__ import annotations

from repro.sites.dataset import Dataset
from repro.web import html as H
from repro.web.http import Request
from repro.web.server import Site

HOST = "www.carfinance.com"


class CarFinanceSite(Site):
    def __init__(self, dataset: Dataset) -> None:
        super().__init__(HOST)
        self.dataset = dataset
        self.route("/", self.entry_page)
        self.route("/rates", self.rates_form_page)
        self.route("/cgi-bin/quote", self.quote_page)

    def entry_page(self, request: Request) -> H.Element:
        return H.page(
            "Car Finance",
            H.bullet_links([("Loan Rates", "/rates"), ("Apply Online", "/apply")]),
        )

    def rates_form_page(self, request: Request) -> H.Element:
        form = H.form(
            "/cgi-bin/quote",
            H.labeled("Zip Code", H.text_input("zipcode", size=5)),
            H.labeled("Duration", H.select("duration", ["", "24", "36", "48", "60"])),
            H.submit_button("Get Quote"),
            method="post",
        )
        return H.page("Loan Rates", form)

    def quote_page(self, request: Request) -> H.Element:
        zipcode = request.params.get("zipcode", "")
        duration_param = request.params.get("duration", "")
        duration = int(duration_param) if duration_param.isdigit() else None
        rates = self.dataset.rates_for(zipcode, duration)
        if not rates:
            return H.page("Loan Quote", H.el("p", "No rates for zip %s." % zipcode))
        rows = [
            [r.zipcode, str(r.duration), "%.2f%%" % r.rate]
            for r in sorted(rates, key=lambda r: r.duration)
        ]
        return H.page(
            "Loan Quote for %s" % zipcode,
            H.table(["Zip Code", "Duration", "Rate"], rows),
        )


def build(dataset: Dataset) -> CarFinanceSite:
    return CarFinanceSite(dataset)
