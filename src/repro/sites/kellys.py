"""The simulated Kelley Blue Book site.

Serves the ``kellys(Car Condition BBPrice)`` VPS relation of Table 1.  The
pricing form asks for make, model and condition; condition is a radio group,
which lets the map builder infer its mandatoriness from the widget alone
(Section 7: "if an attribute is represented by a radio button we can safely
assume it is mandatory").  The result page lists one row per model year.
"""

from __future__ import annotations

from repro.sites.dataset import Dataset, CONDITIONS, MAKES, YEARS, Car
from repro.web import html as H
from repro.web.http import Request
from repro.web.server import Site

HOST = "www.kbb.com"


class KellysSite(Site):
    def __init__(self, dataset: Dataset) -> None:
        super().__init__(HOST)
        self.dataset = dataset
        self.route("/", self.entry_page)
        self.route("/usedcar", self.pricing_page)
        self.route("/cgi-bin/bbprice", self.price_page)

    def entry_page(self, request: Request) -> H.Element:
        return H.page(
            "Kelley Blue Book",
            H.bullet_links(
                [
                    ("Used Car Values", "/usedcar"),
                    ("New Car Pricing", "/newcar"),
                ]
            ),
        )

    def pricing_page(self, request: Request) -> H.Element:
        form = H.form(
            "/cgi-bin/bbprice",
            H.labeled("Make", H.select("make", MAKES)),
            H.labeled("Model", H.text_input("model")),
            H.el("p", H.el("b", "Condition: "), *H.radio_group("condition", CONDITIONS)),
            H.submit_button("Get Value"),
            method="post",
        )
        return H.page("Used Car Values", form)

    def price_page(self, request: Request) -> H.Element:
        params = request.params
        make = params.get("make", "").lower()
        model = params.get("model", "").lower()
        condition = params.get("condition", "").lower()
        rows = []
        for year in YEARS:
            entry = self.dataset.bluebook_price(Car(make, model, year), condition)
            if entry is not None:
                rows.append(
                    [make, model, str(year), condition, "${:,}".format(entry.bb_price)]
                )
        if not rows:
            return H.page(
                "Blue Book Value",
                H.el("p", "No pricing available for %s %s." % (make, model)),
            )
        return H.page(
            "Blue Book Value",
            H.table(["Make", "Model", "Year", "Condition", "Blue Book Price"], rows),
        )


def build(dataset: Dataset) -> KellysSite:
    return KellysSite(dataset)
