"""Shared scaffolding for the simulated car-domain sites.

Most classified/dealer sites follow the same skeleton the paper describes
for Newsday (Figure 2): an entry page with links, a search form, optionally
a dynamically generated refinement form when too many ads match, then data
pages with a "More" link for pagination.  :class:`CarSite` implements that
skeleton once, parameterized by a :class:`SiteVocabulary` so each site keeps
its own attribute names, column order, price formatting and HTML style —
the representational discrepancies the logical layer must smooth out.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sites.dataset import Ad, CAR_CATALOG, Dataset, MAKES
from repro.web import html as H
from repro.web.html import RenderStyle
from repro.web.http import Request, Response, Url
from repro.web.server import Site


def format_usd(amount: int) -> str:
    return "${:,}".format(amount)


def format_cad(amount_usd: int, cad_per_usd: float) -> str:
    return "CAD {:,}".format(int(round(amount_usd * cad_per_usd, -1)))


@dataclass
class SiteVocabulary:
    """Site-specific naming and formatting of the shared ad data.

    ``columns`` maps the canonical ad fields (``make``, ``model``, ``year``,
    ``price``, ``contact``, ``features``, ``zipcode``) to the column header
    the site displays, in display order.
    """

    columns: list[tuple[str, str]] = field(
        default_factory=lambda: [
            ("make", "Make"),
            ("model", "Model"),
            ("year", "Year"),
            ("price", "Price"),
            ("contact", "Contact"),
        ]
    )
    make_field: str = "make"
    model_field: str = "model"
    zip_field: str = "zip"
    price_formatter: str = "usd"  # 'usd' | 'cad'
    cad_per_usd: float = 1.48

    def format_price(self, amount_usd: int) -> str:
        if self.price_formatter == "cad":
            return format_cad(amount_usd, self.cad_per_usd)
        return format_usd(amount_usd)

    def cell(self, ad: Ad, fieldname: str) -> str:
        if fieldname == "make":
            return ad.car.make
        if fieldname == "model":
            return ad.car.model
        if fieldname == "year":
            return str(ad.car.year)
        if fieldname == "price":
            return self.format_price(ad.price)
        if fieldname == "contact":
            return ad.contact
        if fieldname == "features":
            return ", ".join(ad.features)
        if fieldname == "zipcode":
            return ad.zipcode
        raise KeyError("unknown ad field %r" % fieldname)


@dataclass
class CarSiteConfig:
    """Topology knobs for a :class:`CarSite`."""

    host: str
    title: str
    vocabulary: SiteVocabulary = field(default_factory=SiteVocabulary)
    style: RenderStyle = field(default_factory=RenderStyle.clean)
    page_size: int = 10
    refine_threshold: int | None = 15  # None disables the second form
    form_method: str = "post"
    entry_link_name: str = "Used Cars"
    search_path: str = "/search"
    results_path: str = "/cgi-bin/results"
    features_path: str | None = None  # detail pages if set
    ask_zipcode: bool = False
    extra_entry_links: list[tuple[str, str]] = field(default_factory=list)
    make_widget: str = "select"  # 'select' | 'text'
    model_in_first_form: bool = False
    # CGI-era pattern: POST submissions redirect to a GET results URL, so
    # reloading/paginating never re-posts the form.
    redirect_after_post: bool = False


class CarSite(Site):
    """A classified-ads or dealer site generated from a config and a dataset."""

    def __init__(self, config: CarSiteConfig, dataset: Dataset) -> None:
        super().__init__(config.host, style=config.style)
        self.config = config
        self.dataset = dataset
        # Live-site churn knobs (maintenance scenarios): extra select
        # options are *auto-absorbable* changes, extra widgets require
        # manual intervention — see repro.navigation.maintenance.
        self.extra_makes: list[str] = []
        self.extra_search_widgets: list[tuple[str, str]] = []  # (label, field)
        self.route("/", self.entry_page)
        self.route(config.search_path, self.search_page)
        self.route(config.results_path, self.results_page)
        if config.features_path:
            self.route(config.features_path, self.features_page)
        for _, path in config.extra_entry_links:
            self.route(path, self.dead_end_page)

    # -- pages ---------------------------------------------------------------

    def entry_page(self, request: Request) -> H.Element:
        cfg = self.config
        items = [(cfg.entry_link_name, cfg.search_path)]
        items.extend((name, path) for name, path in cfg.extra_entry_links)
        return H.page(cfg.title, H.bullet_links(items))

    def dead_end_page(self, request: Request) -> H.Element:
        return H.page(
            "%s - Other Listings" % self.config.title,
            H.el("p", "Nothing to see here."),
        )

    def search_form(self) -> H.Element:
        """The first search form (the paper's ``form f1``)."""
        cfg = self.config
        voc = cfg.vocabulary
        makes = MAKES + [m for m in self.extra_makes if m not in MAKES]
        if cfg.make_widget == "select":
            make_widget = H.select(voc.make_field, makes)
        else:
            make_widget = H.text_input(voc.make_field)
        rows = [H.labeled("Make", make_widget)]
        if cfg.model_in_first_form:
            models = sorted({model for _, model, _ in CAR_CATALOG})
            rows.append(H.labeled("Model", H.select(voc.model_field, [""] + models)))
        if cfg.ask_zipcode:
            rows.append(H.labeled("Zip Code", H.text_input(voc.zip_field, size=5)))
        for label, field_name in self.extra_search_widgets:
            rows.append(H.labeled(label, H.text_input(field_name)))
        rows.append(H.submit_button("Search"))
        return H.form(cfg.results_path, *rows, method=cfg.form_method)

    def search_page(self, request: Request) -> H.Element:
        return H.page("%s Search" % self.config.title, self.search_form())

    def refine_form(self, make: str, zipcode: str) -> H.Element:
        """The dynamically generated refinement form (the paper's ``form f2``)."""
        cfg = self.config
        voc = cfg.vocabulary
        models = self.dataset.models_of(make)
        rows = [
            H.hidden_input(voc.make_field, make),
            H.labeled("Model", H.select(voc.model_field, models)),
            H.labeled("Features", H.text_input("featrs")),
        ]
        if zipcode:
            rows.append(H.hidden_input(voc.zip_field, zipcode))
        rows.append(H.submit_button("Refine"))
        return H.form(cfg.results_path, *rows, method=cfg.form_method)

    def select_ads(self, params: dict[str, str]) -> list[Ad]:
        voc = self.config.vocabulary
        return self.dataset.ads_for(
            self.host,
            make=params.get(voc.make_field) or None,
            model=params.get(voc.model_field) or None,
            zipcode=params.get(voc.zip_field) or None,
        )

    def results_page(self, request: Request) -> "H.Element | Response":
        cfg = self.config
        voc = cfg.vocabulary
        params = request.params
        if cfg.redirect_after_post and request.method == "POST":
            target = Url(self.host, cfg.results_path).with_params(params)
            return Response.redirect(target)
        make = params.get(voc.make_field, "")
        model = params.get(voc.model_field, "")
        ads = self.select_ads(params)

        needs_refinement = (
            cfg.refine_threshold is not None
            and not model
            and len(ads) > cfg.refine_threshold
        )
        if needs_refinement:
            return H.page(
                "%s - Narrow Your Search" % cfg.title,
                H.el("p", "%d ads matched; please narrow your search." % len(ads)),
                self.refine_form(make, params.get(voc.zip_field, "")),
            )
        return self.data_page(params, ads)

    def data_page(self, params: dict[str, str], ads: list[Ad]) -> H.Element:
        """One page of results with an optional "More" continuation link."""
        cfg = self.config
        voc = cfg.vocabulary
        start = int(params.get("start", "0") or 0)
        chunk = ads[start : start + cfg.page_size]

        headers = [header for _, header in voc.columns]
        if cfg.features_path:
            headers.append("Details")
        table = H.el("table", border="1")
        table.add(H.el("tr", *[H.el("th", h) for h in headers]))
        for ad in chunk:
            cells = [H.el("td", voc.cell(ad, fieldname)) for fieldname, _ in voc.columns]
            if cfg.features_path:
                href = "%s?ad=%d" % (cfg.features_path, ad.ad_id)
                cells.append(H.el("td", H.link(href, "Car Features")))
            table.add(H.el("tr", *cells))

        body: list[H.Element] = [
            H.el("p", "Listings %d-%d of %d" % (start + 1, start + len(chunk), len(ads))),
            table,
        ]
        if start + cfg.page_size < len(ads):
            next_params = dict(params)
            next_params["start"] = str(start + cfg.page_size)
            more_url = Url(self.host, cfg.results_path).with_params(next_params)
            body.append(H.el("p", H.link(str(more_url), "More")))
        return H.page("%s Listings" % cfg.title, *body)

    def features_page(self, request: Request) -> H.Element:
        ad_id = request.params.get("ad", "")
        ad = self.dataset.ad_by_id(int(ad_id)) if ad_id.isdigit() else None
        if ad is None or ad.host != self.host:
            return H.page("Unknown Listing", H.el("p", "No such ad."))
        return H.page(
            "%s %s details" % (ad.car.make, ad.car.model),
            H.el(
                "dl",
                H.el("dt", "Features"),
                H.el("dd", ", ".join(ad.features)),
                H.el("dt", "Picture"),
                H.el("dd", H.el("img", src=ad.picture), ad.picture),
            ),
        )
