"""UsedCarMart: a site whose listings have two alternative access forms.

Section 3: "There can be several handles for the same relation.
Different handles for the same relation must use different sets of
mandatory attributes ... (for instance, the same HTML form might have two
alternative sets of attributes; at least one of them must be filled in
order to get a result)."

UsedCarMart offers exactly that: a *Search by Make* form and a *Search by
Zip Code* form, both feeding the same results listing.  Mapping the site
yields one VPS relation with two handles — mandatory {make} and mandatory
{zip} — and the handle-agreement property (supplying both attributes
through either handle returns the same tuples) becomes testable against a
live site.
"""

from __future__ import annotations

from repro.sites.dataset import Dataset, MAKES, NY_ZIPCODES, OTHER_ZIPCODES
from repro.web import html as H
from repro.web.http import Request, Url
from repro.web.server import Site

HOST = "www.usedcarmart.com"
PAGE_SIZE = 10


class UsedCarMartSite(Site):
    def __init__(self, dataset: Dataset) -> None:
        super().__init__(HOST)
        self.dataset = dataset
        self.route("/", self.entry_page)
        self.route("/bymake", self.by_make_page)
        self.route("/byzip", self.by_zip_page)
        self.route("/cgi-bin/mart", self.results_page)

    def entry_page(self, request: Request) -> H.Element:
        return H.page(
            "UsedCarMart",
            H.bullet_links(
                [("Search by Make", "/bymake"), ("Search by Zip Code", "/byzip")]
            ),
        )

    def by_make_page(self, request: Request) -> H.Element:
        form = H.form(
            "/cgi-bin/mart",
            H.labeled("Make", H.select("make", MAKES)),
            H.labeled("Model", H.text_input("model")),
            H.submit_button("Search"),
            method="get",
        )
        return H.page("Search by Make", form)

    def by_zip_page(self, request: Request) -> H.Element:
        zips = sorted(NY_ZIPCODES + OTHER_ZIPCODES)
        form = H.form(
            "/cgi-bin/mart",
            H.labeled("Zip Code", H.select("zip", zips)),
            H.labeled("Model", H.text_input("model")),
            H.submit_button("Search"),
            method="get",
        )
        return H.page("Search by Zip Code", form)

    def results_page(self, request: Request) -> H.Element:
        params = request.params
        ads = self.dataset.ads_for(
            HOST,
            make=params.get("make") or None,
            model=params.get("model") or None,
            zipcode=params.get("zip") or None,
        )
        start = int(params.get("start", "0") or 0)
        chunk = ads[start : start + PAGE_SIZE]
        table = H.el("table", border="1")
        table.add(
            H.el(
                "tr",
                *[H.el("th", h) for h in ["Make", "Model", "Year", "Price", "Zip", "Contact"]],
            )
        )
        for ad in chunk:
            table.add(
                H.el(
                    "tr",
                    H.el("td", ad.car.make),
                    H.el("td", ad.car.model),
                    H.el("td", str(ad.car.year)),
                    H.el("td", "${:,}".format(ad.price)),
                    H.el("td", ad.zipcode),
                    H.el("td", ad.contact),
                )
            )
        body = [
            H.el("p", "Listings %d-%d of %d" % (start + 1, start + len(chunk), len(ads))),
            table,
        ]
        if start + PAGE_SIZE < len(ads):
            next_params = dict(params)
            next_params["start"] = str(start + PAGE_SIZE)
            more = Url(HOST, "/cgi-bin/mart").with_params(next_params)
            body.append(H.el("p", H.link(str(more), "More")))
        return H.page("UsedCarMart Listings", *body)


def build(dataset: Dataset) -> UsedCarMartSite:
    return UsedCarMartSite(dataset)
