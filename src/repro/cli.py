"""Command-line interface to the webbase.

::

    python -m repro query "SELECT make, model, price WHERE make = 'ford'"
    python -m repro trace "SELECT make, model, price WHERE make = 'ford'" [--export-json [PATH]]
    python -m repro plan  "SELECT make, bb_price WHERE condition = 'good'"
    python -m repro explain "SELECT make, model, rate WHERE make = 'honda' AND duration = 36"
    python -m repro schema vps|logical|ur
    python -m repro expression newsday
    python -m repro map www.newsday.com [--dot]
    python -m repro timing
    python -m repro metrics [--repeat N]
    python -m repro maintenance [host]
    python -m repro baselines
    python -m repro resilience [--slow-host HOST] [--passes N]
    python -m repro serve [--port N] [--queue-limit N] [--service-workers N]
    python -m repro client "SELECT ..." [--port N] [--deadline-ms MS]
    python -m repro --store DIR store inspect|compact|rebuild
    python -m repro cluster serve --store-root DIR [--shards N] [--port N]
    python -m repro cluster status [--port N] [--metrics]
    python -m repro cluster drain [--port N]

Every invocation builds the simulated Web and maps it by example (fast
and deterministic); ``--seed`` and ``--ads-per-host`` change the world,
``--workers`` sizes the execution engine's pool, and ``--fault-rate``
injects deterministic transient faults for the retry machinery to absorb
(watch them in ``trace``).  ``--store DIR`` layers the tiered persistent
store under the webbase: every served page lands in the bronze log,
cache fills mirror to silver, answers materialize to gold, and a later
invocation over the same directory warms its cache from silver (watch
``store.warm_hits`` in ``metrics``; ``--no-store-warm`` starts cold,
``--store-fsync`` makes every append durable before it returns).  The
offline ``store`` subcommand inspects, compacts, or rebuilds such a
directory without touching the simulated Web — ``rebuild`` re-derives
silver and gold from the bronze log alone and exits non-zero on any
byte-level mismatch.  ``--optimizer off`` reverts to the fixed
(pre-cost-model) join order for A/B comparison — ``explain`` under both
settings shows what the planner saves.  ``--cache``/``--no-cache``
explicitly enable or disable the cross-query result cache (default: on
for ``metrics`` and ``serve``, whose workloads are meaningless without a
storing cache; off elsewhere); ``--cache-ttl`` bounds how long its
entries live and ``--stale-mode`` picks what happens to entries of a
site flagged by maintenance as needing manual attention (refetch them,
or serve them with an explicit staleness flag).  ``--batch``/``--no-batch``
toggles batched navigation (default: on) — the query-scoped prefix page
cache, binding-batched dependent-join probes and speculative prefetch;
``--no-batch`` is the paper's per-binding navigation baseline, and
``metrics`` reports the ``nav.prefix_hits``/``nav.prefix_misses``/
``nav.batch_size`` instruments either way.  ``--fabric async`` swaps the
thread-pool engine for the virtual-time async navigation fabric (one
event loop multiplexing every in-flight binding; identical rows).

``serve`` runs the long-lived multi-client query service on a TCP
socket; ``client`` talks to it (no webbase is built client-side).
``query --deadline-ms`` bounds a one-shot query's wall-clock time the
same way a served request's deadline does.

Per-host resilience (on by default; ``--no-resilience`` disables):
``--breaker-threshold`` consecutive failures trip a host's circuit
breaker, ``--breaker-slow`` makes successes slower than that many
simulated seconds count as failure signals, ``--breaker-recovery`` sets
the open → half-open delay, and ``--bulkhead`` caps one host's share of
the worker pool.  ``--speculate`` turns on speculative dependent-join
probing and ``--no-prune`` stops the join revoking probes whose outer
partition emptied.  The ``resilience`` subcommand is the demo: it spikes
``--slow-host`` with latency faults, runs ``--passes`` rounds of the
ten-site workload, and prints the per-host breaker table, quarantine
state, the healthy/degraded p95 split and the ``resilience.*`` counters.
"""

from __future__ import annotations

import argparse
import json
from typing import Sequence

from repro.core.execution import WebBaseConfig
from repro.core.resilience import ResiliencePolicy
from repro.core.stats import format_timing_table, site_query_timings
from repro.core.webbase import WebBase
from repro.vps.cache import CachePolicy
from repro.web.server import FaultPlan


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="A webbase over a simulated dynamic Web (SIGMOD 1999 reproduction).",
    )
    parser.add_argument("--seed", type=int, default=1999, help="world seed")
    parser.add_argument(
        "--ads-per-host", type=int, default=120, help="listing depth per site"
    )
    parser.add_argument(
        "--cache",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="enable/disable the cross-query VPS result cache (default: "
        "--cache for 'metrics' and 'serve', --no-cache otherwise)",
    )
    parser.add_argument(
        "--cache-ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help="default time-to-live of cross-query cache entries",
    )
    parser.add_argument(
        "--stale-mode",
        choices=["refetch", "serve-stale"],
        default="refetch",
        help="quarantined cache entries: refetch from the site, or serve "
        "them flagged as stale",
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="tiered persistent store directory (bronze page log, silver "
        "extractions, gold answers); created on first use",
    )
    parser.add_argument(
        "--store-fsync",
        action="store_true",
        help="fsync every store append before it returns",
    )
    parser.add_argument(
        "--store-warm",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="warm the result cache from the store's silver tier at startup",
    )
    parser.add_argument(
        "--workers", type=int, default=8, help="execution-engine worker pool size"
    )
    parser.add_argument(
        "--batch",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="batched navigation: query-scoped prefix page reuse, "
        "binding-batched dependent-join probes, and speculative prefetch "
        "(--no-batch = the per-binding navigation baseline)",
    )
    parser.add_argument(
        "--optimizer",
        choices=["cost", "off"],
        default="cost",
        help="join-order strategy: the cost-based planner, or the fixed "
        "binding-feasible order (A/B baseline)",
    )
    parser.add_argument(
        "--fabric",
        choices=["thread", "async"],
        default="thread",
        help="concurrency fabric for engine fetches: the bundle-capped "
        "thread pool, or the virtual-time async loop that multiplexes "
        "every in-flight binding (same rows either way)",
    )
    parser.add_argument(
        "--fault-rate",
        type=float,
        default=0.0,
        help="inject deterministic transient faults at this per-request rate",
    )
    parser.add_argument(
        "--fault-seed", type=int, default=7, help="seed of the injected fault schedule"
    )
    parser.add_argument(
        "--resilience",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="per-host circuit breakers and bulkheads (--no-resilience = "
        "the bare engine: every access goes straight to the site)",
    )
    parser.add_argument(
        "--breaker-threshold",
        type=int,
        default=5,
        metavar="N",
        help="consecutive per-host failures that open the host's breaker",
    )
    parser.add_argument(
        "--breaker-recovery",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="how long an open breaker waits before letting a probe through",
    )
    parser.add_argument(
        "--breaker-slow",
        type=float,
        default=None,
        metavar="SECONDS",
        help="treat fetches slower than this (simulated network seconds) "
        "as failure signals for the breaker",
    )
    parser.add_argument(
        "--bulkhead",
        type=int,
        default=None,
        metavar="N",
        help="cap concurrent fetches per host at N worker slots (default: "
        "no per-host cap)",
    )
    parser.add_argument(
        "--speculate",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="speculative dependent-join probes: start inner-side fetches "
        "from candidate bindings before the outer side finishes",
    )
    parser.add_argument(
        "--prune",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="runtime relevance pruning: revoke in-flight and queued "
        "accesses whose justifying bindings the outer side disproved",
    )
    parser.add_argument(
        "--mqo",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="multi-query optimization: shared subplan execution across "
        "concurrent identical-fingerprint queries, plus containment-based "
        "reuse of revision-current gold answers (needs --store for reuse)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    query = sub.add_parser("query", help="answer a universal-relation query")
    query.add_argument("text", help="SELECT attrs WHERE conditions")
    query.add_argument("--limit", type=int, default=25, help="rows to print")
    query.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        metavar="MS",
        help="wall-clock deadline; an expired query stops fetching and "
        "exits with a structured DeadlineExceeded error",
    )

    trace = sub.add_parser(
        "trace", help="answer a query and print the engine's structured trace"
    )
    trace.add_argument("text", help="SELECT attrs WHERE conditions")
    trace.add_argument(
        "--export-json",
        nargs="?",
        const="-",
        default=None,
        metavar="PATH",
        help="emit the span tree as JSON ('-' or no value for stdout)",
    )

    plan = sub.add_parser("plan", help="show a query's maximal objects")
    plan.add_argument("text")

    explain = sub.add_parser(
        "explain",
        help="run a query and print the plan tree with per-node cost "
        "estimates vs. measured fetches",
    )
    explain.add_argument("text")

    schema = sub.add_parser("schema", help="print a layer's schema")
    schema.add_argument("layer", choices=["vps", "logical", "ur"])

    expression = sub.add_parser(
        "expression", help="show a relation's navigation expression"
    )
    expression.add_argument("relation")

    navmap = sub.add_parser("map", help="render a site's navigation map")
    navmap.add_argument("host")
    navmap.add_argument("--dot", action="store_true", help="emit Graphviz DOT")

    sub.add_parser("timing", help="the Section 7 per-site timing table")

    metrics = sub.add_parser(
        "metrics",
        help="run the 10-site workload through the cache and reconcile the "
        "metrics registry against the trace spans",
    )
    metrics.add_argument(
        "--repeat", type=int, default=2, help="workload passes (first is cold)"
    )

    maintenance = sub.add_parser(
        "maintenance",
        help="re-check the navigation maps against the live sites and drive "
        "cache invalidation",
    )
    maintenance.add_argument("host", nargs="?", default=None)

    sub.add_parser("baselines", help="link-only and canned-interface baselines")

    resilience = sub.add_parser(
        "resilience",
        help="demonstrate the per-host breakers: one site slows down, its "
        "breaker opens, the others keep their latency",
    )
    resilience.add_argument(
        "--slow-host",
        default="www.newsday.com",
        help="the site the demo degrades with injected latency spikes "
        "(must be one of the ten timing-table sites)",
    )
    resilience.add_argument(
        "--passes", type=int, default=6, help="workload passes to run"
    )

    serve = sub.add_parser(
        "serve", help="run the long-lived multi-client query service"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8571, help="0 = ephemeral")
    serve.add_argument(
        "--queue-limit", type=int, default=16, help="admission queue bound"
    )
    serve.add_argument(
        "--service-workers", type=int, default=4, help="query executor threads"
    )
    serve.add_argument(
        "--per-client", type=int, default=2, help="concurrent queries per connection"
    )
    serve.add_argument(
        "--page-size", type=int, default=50, help="rows per streamed result page"
    )
    serve.add_argument(
        "--default-deadline-ms",
        type=float,
        default=None,
        metavar="MS",
        help="deadline applied to requests that carry none",
    )
    serve.add_argument(
        "--mqo-window-ms",
        type=float,
        default=0.0,
        metavar="MS",
        help="with --mqo: hold each query this long at admission so "
        "concurrent identical-fingerprint arrivals share one execution "
        "(0 = no batching window)",
    )

    client = sub.add_parser("client", help="query a running service")
    client.add_argument("text", help="SELECT attrs WHERE conditions")
    client.add_argument("--host", default="127.0.0.1")
    client.add_argument("--port", type=int, default=8571)
    client.add_argument("--deadline-ms", type=float, default=None, metavar="MS")
    client.add_argument("--page-size", type=int, default=None)
    client.add_argument("--limit", type=int, default=25, help="rows to print")
    client.add_argument(
        "--connect-timeout",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="keep retrying the connection this long (a freshly started "
        "server maps its world by example before it listens)",
    )

    cluster = sub.add_parser(
        "cluster",
        help="the sharded multi-process tier: router + N worker processes "
        "with host-affinity routing and cross-shard cache federation",
    )
    cluster_sub = cluster.add_subparsers(dest="cluster_command", required=True)

    cserve = cluster_sub.add_parser(
        "serve", help="run a router and spawn its worker processes"
    )
    cserve.add_argument("--host", default="127.0.0.1")
    cserve.add_argument("--port", type=int, default=8570, help="0 = ephemeral")
    cserve.add_argument("--shards", type=int, default=3)
    cserve.add_argument(
        "--store-root",
        required=True,
        metavar="DIR",
        help="per-shard store directories are created under here",
    )
    cserve.add_argument(
        "--queue-limit", type=int, default=16, help="per-worker admission bound"
    )
    cserve.add_argument(
        "--service-workers", type=int, default=4, help="threads per worker"
    )
    cserve.add_argument(
        "--max-inflight", type=int, default=64, help="router admission bound"
    )
    cserve.add_argument(
        "--federation",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="the cross-shard cache federation bus",
    )
    cserve.add_argument(
        "--health-interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="worker health-check ping period",
    )
    cserve.add_argument(
        "--mqo",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="multi-query optimization on every worker, plus "
        "fingerprint-sticky co-routing at the router",
    )
    cserve.add_argument(
        "--mqo-window-ms",
        type=float,
        default=0.0,
        metavar="MS",
        help="per-worker admission batching window for shared execution",
    )

    cstatus = cluster_sub.add_parser(
        "status", help="topology and health of a running cluster router"
    )
    cstatus.add_argument("--host", default="127.0.0.1")
    cstatus.add_argument("--port", type=int, default=8570)
    cstatus.add_argument(
        "--metrics",
        action="store_true",
        help="also print the merged cross-shard metrics snapshot",
    )

    cdrain = cluster_sub.add_parser(
        "drain", help="gracefully drain a running cluster (workers first)"
    )
    cdrain.add_argument("--host", default="127.0.0.1")
    cdrain.add_argument("--port", type=int, default=8570)

    cworker = cluster_sub.add_parser(
        "worker", help="one shard worker process (spawned by 'cluster serve')"
    )
    cworker.add_argument("--shard-id", required=True)
    cworker.add_argument("--store-dir", required=True)
    cworker.add_argument("--addr-file", default="")
    cworker.add_argument("--host", default="127.0.0.1")
    cworker.add_argument("--port", type=int, default=0)
    cworker.add_argument("--seed", type=int, default=1999)
    cworker.add_argument("--ads-per-host", type=int, default=120)
    cworker.add_argument("--queue-limit", type=int, default=16)
    cworker.add_argument("--threads", type=int, default=4)
    cworker.add_argument(
        "--federation", default="", metavar="HOST:PORT",
        help="federation bus address (empty = no federation)",
    )
    cworker.add_argument("--allow-mutation", action="store_true")
    cworker.add_argument("--mqo", action="store_true")
    cworker.add_argument("--mqo-window-ms", type=float, default=0.0)

    store = sub.add_parser(
        "store",
        help="inspect, compact, or rebuild a tiered store directory "
        "offline (requires --store DIR)",
    )
    store.add_argument(
        "action",
        choices=["inspect", "compact", "rebuild"],
        help="inspect: tier sizes and state; compact: drop superseded "
        "records; rebuild: re-derive silver/gold from the bronze log and "
        "verify byte equality",
    )
    store.add_argument(
        "--write",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="rebuild: write the re-derived tiers next to the originals "
        "(silver.rebuilt / gold.rebuilt)",
    )
    return parser


def _cluster_main(args: argparse.Namespace) -> int:
    if args.cluster_command == "worker":
        from repro.cluster.worker import worker_main

        return worker_main(args)

    if args.cluster_command == "serve":
        import threading

        from repro.cluster.router import ClusterConfig, LocalCluster

        cluster = LocalCluster(
            ClusterConfig(
                store_root=args.store_root,
                host=args.host,
                port=args.port,
                shards=args.shards,
                seed=args.seed,
                ads_per_host=args.ads_per_host,
                worker_queue_limit=args.queue_limit,
                worker_threads=args.service_workers,
                federation=args.federation,
                max_inflight=args.max_inflight,
                health_interval_seconds=args.health_interval,
                mqo=args.mqo,
                mqo_window_ms=args.mqo_window_ms,
            )
        )
        host, port = cluster.start()
        print(
            "cluster router on %s:%d (%d worker processes under %s, "
            "federation=%s)"
            % (
                host,
                port,
                args.shards,
                args.store_root,
                "on" if args.federation else "off",
            ),
            flush=True,
        )
        try:
            # Serve until a remote `cluster drain` stops the router ...
            cluster.router.wait_stopped()
            print("\ncluster drained")
        except KeyboardInterrupt:  # ... or the operator interrupts us.
            print("\ndraining cluster ...")
        snapshot = cluster.stop()
        print("final router metrics:")
        for name, value in sorted(snapshot.get("counters", {}).items()):
            if name.startswith("cluster."):
                print("  %-28s %d" % (name, value))
        return 0

    # status / drain: pure network client against a running router.
    from repro.service.client import ServiceClient, ServiceError

    try:
        with ServiceClient(
            host=args.host, port=args.port, connect_timeout=5.0
        ) as client:
            if args.cluster_command == "drain":
                print(json.dumps(client.drain(), indent=2, sort_keys=True))
                return 0
            print(json.dumps(client.status(), indent=2, sort_keys=True))
            if args.metrics:
                merged = client.metrics()
                print("merged cross-shard metrics:")
                print(json.dumps(merged, indent=2, sort_keys=True))
    except ServiceError as exc:
        print("cluster error [%s]: %s" % (exc.code, exc))
        return 2
    except OSError as exc:
        print("cannot reach %s:%d: %s" % (args.host, args.port, exc))
        return 1
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.command == "cluster":
        return _cluster_main(args)

    if args.command == "client":
        # Pure network client: no webbase is built on this side.
        from repro.service.client import ServiceClient, ServiceError

        try:
            with ServiceClient(
                host=args.host,
                port=args.port,
                connect_timeout=args.connect_timeout,
            ) as client:
                outcome = client.query(
                    args.text,
                    deadline_ms=args.deadline_ms,
                    page_size=args.page_size,
                )
        except ServiceError as exc:
            print(
                "service error [%s%s]: %s"
                % (exc.code, ", retriable" if exc.retriable else "", exc)
            )
            return 2
        except OSError as exc:
            print("cannot reach %s:%d: %s" % (args.host, args.port, exc))
            return 1
        from repro.relational.relation import Relation

        print(Relation(outcome.schema, outcome.rows).pretty(limit=args.limit))
        print(
            "(%d rows in %d page(s); %s)"
            % (
                len(outcome),
                outcome.pages,
                ", ".join("%s=%s" % kv for kv in sorted(outcome.stats.items())),
            )
        )
        return 0

    if args.command == "store":
        # Offline: operates on the persisted tiers alone — no simulated
        # Web is built (rebuild replays bronze through the persisted
        # navigation maps instead of fetching live).
        if args.store is None:
            print("the store subcommand needs --store DIR")
            return 1
        from repro.store import TieredStore

        store = TieredStore(args.store, fsync=args.store_fsync)
        try:
            if args.action == "inspect":
                print(json.dumps(store.describe(), indent=2, sort_keys=True))
                return 0
            if args.action == "compact":
                outcome = store.compact()
                print(
                    "compacted %s: %d -> %d bytes (%d freed)"
                    % (
                        args.store,
                        outcome["bytes_before"],
                        outcome["bytes_after"],
                        outcome["freed"],
                    )
                )
                return 0
            from repro.store.rebuild import rebuild

            try:
                report = rebuild(store, write=args.write)
            except ValueError as exc:
                print("cannot rebuild: %s" % exc)
                return 1
            print(report.summary())
            return 0 if report.clean else 2
        finally:
            store.close()

    # Both serving and one-shot paths configure the cache the same way: an
    # explicit --cache/--no-cache wins; the default is on only for the two
    # commands whose workloads are meaningless without a storing cache.
    # The resilience demo degrades one host with latency spikes and trips
    # its breaker on the slow calls; other commands inject --fault-rate.
    # Demo defaults: zero-TTL entries keep every pass fetching (so slow
    # calls keep signalling the breaker) until the breaker opens and
    # quarantines the host — after which serve-stale answers from the
    # cache instead of waiting on the degraded site.
    if args.command == "resilience":
        faults = FaultPlan(
            seed=args.fault_seed,
            error_rate=args.fault_rate,
            spike_rate=1.0,
            spike_seconds=6.0,
            hosts=(args.slow_host,),
        )
        if args.breaker_slow is None:
            args.breaker_slow = 10.0
        if args.cache_ttl is None:
            args.cache_ttl = 0.0
        args.stale_mode = "serve-stale"
    elif args.fault_rate > 0:
        faults = FaultPlan(seed=args.fault_seed, error_rate=args.fault_rate)
    else:
        faults = None
    use_cache = (
        args.cache
        if args.cache is not None
        # A store implies a storing cache: silver warming has nowhere to
        # land (and fills nothing to mirror) with the noop policy.
        else args.command in ("metrics", "serve", "resilience")
        or args.store is not None
    )
    cache_policy = (
        CachePolicy.lru(
            ttl_seconds=args.cache_ttl,
            stale_mode=args.stale_mode.replace("-", "_"),
        )
        if use_cache
        else CachePolicy.noop()
    )
    resilience_policy = (
        ResiliencePolicy(
            failure_threshold=args.breaker_threshold,
            recovery_seconds=args.breaker_recovery,
            slow_seconds=args.breaker_slow,
            bulkhead_per_host=args.bulkhead,
            speculate_probes=args.speculate,
            prune=args.prune,
        )
        if args.resilience
        else ResiliencePolicy.off()
    )
    webbase = WebBase.create(
        WebBaseConfig(
            seed=args.seed,
            ads_per_host=args.ads_per_host,
            cache=cache_policy,
            max_workers=args.workers,
            optimizer=args.optimizer,
            batch=args.batch,
            fabric=args.fabric,
            faults=faults,
            resilience=resilience_policy,
            store_dir=args.store,
            store_fsync=args.store_fsync,
            store_warm=args.store_warm,
            mqo=args.mqo,
        )
    )

    if args.command == "query":
        from repro.core.execution import DeadlineExceeded

        context = None
        if args.deadline_ms is not None:
            context = webbase.execution_context(
                label=args.text, deadline_seconds=args.deadline_ms / 1000.0
            )
        try:
            result = webbase.query(args.text, context=context)
        except DeadlineExceeded as exc:
            print("deadline exceeded [stage=%s]: %s" % (exc.stage, exc))
            return 2
        print(result.pretty(limit=args.limit))
        print("(%d rows)" % len(result))
        return 0

    if args.command == "serve":
        from repro.service.server import ServiceConfig, WebBaseService

        service = WebBaseService(
            webbase,
            ServiceConfig(
                host=args.host,
                port=args.port,
                queue_limit=args.queue_limit,
                workers=args.service_workers,
                per_client_limit=args.per_client,
                default_deadline_ms=args.default_deadline_ms,
                page_size=args.page_size,
                mqo_window_ms=args.mqo_window_ms,
            ),
        )
        host, port = service.start()
        print(
            "serving on %s:%d (queue=%d, workers=%d, per-client=%d, cache=%s)"
            % (
                host,
                port,
                args.queue_limit,
                args.service_workers,
                args.per_client,
                "on" if use_cache else "off",
            ),
            flush=True,
        )
        try:
            import threading

            threading.Event().wait()  # serve until interrupted
        except KeyboardInterrupt:
            print("\ndraining ...")
        snapshot = service.shutdown()
        print("final service metrics:")
        for name, value in sorted(snapshot["counters"].items()):
            if name.startswith("service."):
                print("  %-28s %d" % (name, value))
        return 0

    if args.command == "trace":
        report = webbase.query_report(args.text)
        if args.export_json is not None:
            payload = json.dumps(report.trace.to_dict(), indent=2)
            if args.export_json == "-":
                print(payload)
            else:
                with open(args.export_json, "w") as handle:
                    handle.write(payload + "\n")
                print("trace written to %s" % args.export_json)
            return 0
        print(report.pretty())
        print()
        print(report.trace.render())
        return 0

    if args.command == "explain":
        print(webbase.explain(args.text).render())
        return 0

    if args.command == "plan":
        plan = webbase.plan(args.text)
        print(plan.describe())
        for obj in plan.feasible_objects:
            if obj.rewrites:
                print("  optimizer on %s:" % " ⋈ ".join(obj.relations))
                for rewrite in obj.rewrites:
                    print("    %s" % rewrite)
        return 0

    if args.command == "schema":
        if args.layer == "vps":
            print(webbase.vps_summary())
        elif args.layer == "logical":
            print(webbase.logical_summary())
        else:
            print(webbase.ur.hierarchy.pretty())
            print("\nmaximal objects:")
            for obj in webbase.ur.maximal_objects():
                print("  %s" % " ⋈ ".join(sorted(obj)))
        return 0

    if args.command == "expression":
        try:
            print(webbase.navigation_expression(args.relation))
        except KeyError:
            print("no VPS relation %r; known: %s" % (
                args.relation, ", ".join(webbase.vps.relation_names)))
            return 1
        return 0

    if args.command == "map":
        builder = webbase.builders.get(args.host)
        if builder is None:
            print("no map for host %r; known: %s" % (
                args.host, ", ".join(sorted(webbase.builders))))
            return 1
        from repro.navigation.visualize import to_dot, to_text

        print(to_dot(builder.map) if args.dot else to_text(builder.map))
        return 0

    if args.command == "timing":
        print(format_timing_table(site_query_timings(webbase)))
        return 0

    if args.command == "metrics":
        from repro.core.parallel import cached_site_query

        contexts = []
        for run in range(max(1, args.repeat)):
            outcome = cached_site_query(webbase, label="metrics-run-%d" % (run + 1))
            contexts.append(outcome.context)
        print("metrics after %d pass(es) of the 10-site workload:" % len(contexts))
        print(webbase.metrics.render())
        print()
        spans = [s for ctx in contexts for s in ctx.root.spans("fetch")]
        hit_spans = sum(1 for s in spans if s.cache in ("hit", "stale"))
        miss_spans = sum(1 for s in spans if s.cache == "miss")
        counters = webbase.metrics.snapshot()["counters"]
        counted_hits = (
            counters.get("cache.hits", 0)
            + counters.get("cache.stale_serves", 0)
            + counters.get("engine.context_cache_hits", 0)
        )
        counted_fetches = counters.get("engine.fetches", 0)
        prefix_hits = counters.get("nav.prefix_hits", 0)
        prefix_misses = counters.get("nav.prefix_misses", 0)
        batch_sizes = webbase.metrics.snapshot()["histograms"].get(
            "nav.batch_size", {}
        )
        print("batched navigation:")
        print("  nav.prefix_hits        %d" % prefix_hits)
        print("  nav.prefix_misses      %d" % prefix_misses)
        print(
            "  nav.batch_size         count=%d mean=%.1f max=%.0f"
            % (
                batch_sizes.get("count", 0),
                batch_sizes.get("mean", 0.0),
                batch_sizes.get("max", 0.0),
            )
        )
        print()
        print("reconciliation (registry vs trace spans):")
        checks = [
            ("cache serves", counted_hits, hit_spans),
            ("live fetches", counted_fetches, miss_spans),
            ("total fetch requests", counted_hits + counted_fetches, len(spans)),
        ]
        clean = True
        for name, counted, traced in checks:
            ok = counted == traced
            clean = clean and ok
            print(
                "  %-22s registry=%-5d spans=%-5d %s"
                % (name, counted, traced, "ok" if ok else "MISMATCH")
            )
        return 0 if clean else 1

    if args.command == "maintenance":
        reports = webbase.run_maintenance(args.host)
        if not reports:
            print("all navigation maps agree with the live sites; cache untouched")
            return 0
        for host, report in sorted(reports.items()):
            print(report.summary())
        quarantined = sorted(webbase.cache.quarantined_hosts())
        if quarantined:
            print("quarantined hosts (manual intervention pending): %s"
                  % ", ".join(quarantined))
        print("cache after maintenance: %s" % webbase.cache.stats)
        return 0

    if args.command == "resilience":
        from repro.core.parallel import cached_site_query

        passes = max(1, args.passes)
        contexts = []
        for run in range(passes):
            outcome = cached_site_query(
                webbase, label="resilience-pass-%d" % (run + 1)
            )
            contexts.append(outcome.context)
        print(
            "breakers after %d pass(es) of the 10-site workload "
            "(degraded host: %s):" % (passes, args.slow_host)
        )
        print(webbase.resilience.describe())
        quarantined = sorted(webbase.cache.quarantined_hosts())
        if quarantined:
            print(
                "quarantined hosts (cache serves per --stale-mode): %s"
                % ", ".join(quarantined)
            )
        print()
        healthy: list[float] = []
        degraded: list[float] = []
        for ctx in contexts:
            for span in ctx.root.spans("fetch"):
                host = span.attrs.get("host", "")
                bucket = degraded if host == args.slow_host else healthy
                bucket.append(span.network_seconds)
        if healthy and degraded:
            healthy.sort()
            degraded.sort()

            def p95(values: list[float]) -> float:
                return values[min(len(values) - 1, int(0.95 * len(values)))]

            print(
                "fetch network seconds: healthy hosts p95=%.2fs, "
                "%s p95=%.2fs" % (p95(healthy), args.slow_host, p95(degraded))
            )
        print("resilience metrics:")
        counters = webbase.metrics.snapshot()["counters"]
        for name, value in sorted(counters.items()):
            if name.startswith("resilience."):
                print("  %-28s %d" % (name, value))
        return 0

    if args.command == "baselines":
        from repro.baselines.canned import coverage, used_car_canned_catalog
        from repro.baselines.websql import (
            PathPattern,
            crawl,
            dynamic_content_coverage,
        )
        from repro.web.browser import Browser

        result = crawl(
            Browser(webbase.world.server),
            "http://www.newsday.com/",
            PathPattern(max_depth=4),
        )
        link_cov = dynamic_content_coverage(webbase.world, result, "www.newsday.com")
        print(
            "link-only crawl of www.newsday.com: %d pages, sees %.0f%% of the ads"
            % (result.pages_fetched, link_cov * 100)
        )
        workload = [
            "SELECT make, model, price, bb_price WHERE make = 'jaguar' "
            "AND condition = 'good' AND price < bb_price",
            "SELECT make, model, year, price, contact WHERE make = 'ford' AND model = 'escort'",
        ]
        fraction, unanswered = coverage(used_car_canned_catalog(), workload)
        print("canned catalog answers %.0f%% of the sample workload" % (fraction * 100))
        for task in unanswered:
            print("  cannot express: %s" % task)
        return 0

    raise AssertionError("unreachable")


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
