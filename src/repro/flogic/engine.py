"""The Transaction F-logic interpreter.

Implements the procedural semantics of the serial-Horn subset used as the
navigation calculus.  Truth of a formula is defined over *paths* — finite
sequences of database states — and the interpreter makes that operational:

* solving a query goal leaves the state unchanged;
* solving ``Ins``/``Del`` steps to a new state (stores are persistent, so
  earlier states survive for backtracking);
* solving ``Serial(a, b)`` threads the state from ``a`` into ``b``;
* solving ``Choice`` explores the alternatives on backtracking;
* defined predicates resolve SLD-style against the program's rules, with
  full support for recursion (a depth bound guards against runaway
  programs, and navigation expressions compiled from cyclic maps — the
  "More"-button loop — rely on recursion).

External *action* predicates (follow a link, submit a form, extract
tuples) are registered as builtins by :mod:`repro.navigation.executor`;
to the logic they are ordinary goals that happen to bind variables to
pages and tuples.

:class:`AsyncEngine` is the interpreter's coroutine twin, used by the
async navigation fabric: builtins may be *async* generators (a page
navigation awaits simulated network latency instead of charging a
clock), and :meth:`AsyncEngine.asolve` yields the exact same solutions
in the exact same order as :meth:`Engine.solve` — which is what makes
the fabric's answers byte-identical to the threaded engine's.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.flogic.formulas import (
    Choice,
    Del,
    Formula,
    Ins,
    Naf,
    Pred,
    Program,
    Rule,
    Serial,
)
from repro.flogic.store import ObjectStore
from repro.flogic.terms import Subst, Term, Var, resolve, unify

# A builtin receives the (unresolved) argument terms, the current
# substitution, and the current state; it yields (substitution, state)
# pairs for each solution.
Builtin = Callable[[tuple[Term, ...], Subst, ObjectStore], Iterator[tuple[dict, ObjectStore]]]


class DepthLimitExceeded(Exception):
    """The SLD derivation exceeded the engine's depth bound."""


class UnknownPredicate(Exception):
    """A goal matched no rule, builtin, or primitive."""


class Engine:
    """Interpreter for a :class:`~repro.flogic.formulas.Program`."""

    def __init__(
        self,
        program: Program | None = None,
        store: ObjectStore | None = None,
        depth_limit: int = 4000,
    ) -> None:
        self.program = program or Program()
        self.store = store or ObjectStore()
        self.depth_limit = depth_limit
        self._builtins: dict[tuple[str, int], Builtin] = {}
        self._rename_counter = 0
        self._register_core_builtins()

    # -- public API -----------------------------------------------------------

    def register_builtin(self, name: str, arity: int, fn: Builtin) -> None:
        """Register an external action/primitive predicate."""
        self._builtins[(name, arity)] = fn

    def solve(
        self,
        goal: Formula,
        subst: Subst | None = None,
        store: ObjectStore | None = None,
    ) -> Iterator[tuple[dict, ObjectStore]]:
        """All solutions of ``goal``: (substitution, final state) pairs."""
        yield from self._solve(goal, dict(subst or {}), store or self.store, 0)

    def ask(self, goal: Formula, bindings_of: list[Var] | None = None) -> list[dict]:
        """Convenience: solve and project each solution onto ``bindings_of``."""
        out = []
        for subst, _state in self.solve(goal):
            if bindings_of is None:
                out.append(subst)
            else:
                out.append({v.name: resolve(v, subst) for v in bindings_of})
        return out

    def succeeds(self, goal: Formula) -> bool:
        """True when ``goal`` has at least one solution."""
        for _ in self.solve(goal):
            return True
        return False

    def run(self, goal: Formula) -> ObjectStore | None:
        """Execute ``goal`` as a transaction: commit the first solution's
        final state into the engine and return it; None if the goal fails."""
        for _subst, state in self.solve(goal):
            self.store = state
            return state
        return None

    # -- the interpreter --------------------------------------------------------

    def _solve(
        self, goal: Formula, subst: dict, state: ObjectStore, depth: int
    ) -> Iterator[tuple[dict, ObjectStore]]:
        if depth > self.depth_limit:
            raise DepthLimitExceeded(
                "depth %d exceeded solving %r" % (self.depth_limit, goal)
            )
        if isinstance(goal, Serial):
            yield from self._solve_serial(goal.parts, 0, subst, state, depth)
        elif isinstance(goal, Choice):
            for part in goal.parts:
                yield from self._solve(part, subst, state, depth + 1)
        elif isinstance(goal, Naf):
            for _ in self._solve(goal.goal, subst, state, depth + 1):
                return
            yield subst, state
        elif isinstance(goal, Ins):
            yield from self._apply_update(goal, subst, state, insert=True)
        elif isinstance(goal, Del):
            yield from self._apply_update(goal, subst, state, insert=False)
        elif isinstance(goal, Pred):
            yield from self._solve_pred(goal, subst, state, depth)
        else:
            raise TypeError("cannot solve %r" % (goal,))

    def _solve_serial(
        self,
        parts: tuple[Formula, ...],
        index: int,
        subst: dict,
        state: ObjectStore,
        depth: int,
    ) -> Iterator[tuple[dict, ObjectStore]]:
        if index == len(parts):
            yield subst, state
            return
        for mid_subst, mid_state in self._solve(parts[index], subst, state, depth + 1):
            yield from self._solve_serial(parts, index + 1, mid_subst, mid_state, depth)

    def _solve_pred(
        self, goal: Pred, subst: dict, state: ObjectStore, depth: int
    ) -> Iterator[tuple[dict, ObjectStore]]:
        indicator = goal.indicator
        builtin = self._builtins.get(indicator)
        if builtin is not None:
            yield from builtin(goal.args, subst, state)
            return
        if indicator == ("isa", 2):
            for solution in state.query_isa(goal.args[0], goal.args[1], subst):
                yield solution, state
            return
        if indicator == ("attr", 3):
            for solution in state.query_attr(goal.args[0], goal.args[1], goal.args[2], subst):
                yield solution, state
            return
        rules = self.program.rules_for(indicator)
        if not rules and not self.program.defines(indicator):
            raise UnknownPredicate("no rules or builtin for %s/%d" % indicator)
        for rule in rules:
            self._rename_counter += 1
            fresh = rule.rename(self._rename_counter)
            head_subst = self._unify_pred(goal, fresh.head, subst)
            if head_subst is None:
                continue
            yield from self._solve(fresh.body, head_subst, state, depth + 1)

    @staticmethod
    def _unify_pred(goal: Pred, head: Pred, subst: dict) -> dict | None:
        current = subst
        for goal_arg, head_arg in zip(goal.args, head.args):
            current = unify(goal_arg, head_arg, current)
            if current is None:
                return None
        return dict(current)

    def _apply_update(
        self, goal: Ins | Del, subst: dict, state: ObjectStore, insert: bool
    ) -> Iterator[tuple[dict, ObjectStore]]:
        args = tuple(resolve(a, subst) for a in goal.args)
        if any(isinstance(a, Var) for a in args):
            raise ValueError("update %r has unbound arguments" % (goal,))
        if goal.kind == "isa":
            obj, cls = args
            if insert:
                yield subst, state.with_member(obj, cls)
            else:
                raise ValueError("deleting class membership is not supported")
        elif goal.kind == "attr":
            obj, attribute, value = args
            if insert:
                yield subst, state.with_attr(obj, attribute, value)
            else:
                yield subst, state.without_attr(obj, attribute, value)
        else:
            raise ValueError("unknown update kind %r" % goal.kind)

    @staticmethod
    def _term_to_goal(term: Term) -> Formula:
        """Interpret a term as a goal (for meta-predicates like findall)."""
        from repro.flogic.terms import Struct

        if isinstance(term, Struct):
            return Pred(term.functor, term.args)
        if isinstance(term, str):
            return Pred(term)
        raise ValueError("cannot call %r as a goal" % (term,))

    # -- core builtins -----------------------------------------------------------

    def _register_core_builtins(self) -> None:
        def bi_true(args, subst, state):
            yield subst, state

        def bi_fail(args, subst, state):
            return
            yield  # pragma: no cover

        def bi_eq(args, subst, state):
            unified = unify(args[0], args[1], subst)
            if unified is not None:
                yield unified, state

        def comparison(op):
            def bi(args, subst, state):
                left = resolve(args[0], subst)
                right = resolve(args[1], subst)
                if isinstance(left, Var) or isinstance(right, Var):
                    raise ValueError("comparison on unbound terms: %r %r" % (left, right))
                try:
                    if op(left, right):
                        yield subst, state
                except TypeError:
                    return

            return bi

        def bi_member(args, subst, state):
            collection = resolve(args[1], subst)
            if isinstance(collection, Var):
                raise ValueError("member/2 requires a bound collection")
            if not isinstance(collection, tuple):
                raise TypeError("member/2 expects a tuple, got %r" % (collection,))
            for item in collection:
                unified = unify(args[0], item, subst)
                if unified is not None:
                    yield unified, state

        def bi_ground(args, subst, state):
            from repro.flogic.terms import is_ground

            if is_ground(args[0], subst):
                yield subst, state

        def arithmetic(op):
            def bi(args, subst, state):
                left = resolve(args[0], subst)
                right = resolve(args[1], subst)
                if isinstance(left, Var) or isinstance(right, Var):
                    raise ValueError("arithmetic on unbound terms")
                try:
                    value = op(left, right)
                except TypeError:
                    return
                bound = unify(args[2], value, subst)
                if bound is not None:
                    yield bound, state

            return bi

        def bi_findall(args, subst, state):
            """findall(Template, Goal, List): collect every solution of Goal
            (state changes inside Goal are speculative and discarded, as in
            Prolog's findall)."""
            template, goal_term, out = args
            goal = self._term_to_goal(resolve(goal_term, subst))
            collected = tuple(
                resolve(template, solution)
                for solution, _ in self._solve(goal, dict(subst), state, 0)
            )
            bound = unify(out, collected, subst)
            if bound is not None:
                yield bound, state

        self.register_builtin("plus", 3, arithmetic(lambda a, b: a + b))
        self.register_builtin("minus", 3, arithmetic(lambda a, b: a - b))
        self.register_builtin("times", 3, arithmetic(lambda a, b: a * b))
        self.register_builtin("findall", 3, bi_findall)
        self.register_builtin("true", 0, bi_true)
        self.register_builtin("fail", 0, bi_fail)
        self.register_builtin("eq", 2, bi_eq)
        self.register_builtin("neq", 2, comparison(lambda a, b: a != b))
        self.register_builtin("lt", 2, comparison(lambda a, b: a < b))
        self.register_builtin("le", 2, comparison(lambda a, b: a <= b))
        self.register_builtin("gt", 2, comparison(lambda a, b: a > b))
        self.register_builtin("ge", 2, comparison(lambda a, b: a >= b))
        self.register_builtin("member", 2, bi_member)
        self.register_builtin("ground", 1, bi_ground)


class AsyncEngine(Engine):
    """The interpreter as a coroutine: same semantics, awaitable actions.

    Builtins registered on an async engine may be either ordinary sync
    generators (all the core builtins) or *async* generators — the
    navigation fabric registers its page-fetching actions as the latter,
    so a solve suspends at each network wait and thousands of solves can
    interleave on one event loop.  Everything else — rule renaming,
    unification, state threading, the order alternatives are explored
    in — is byte-for-byte the sync interpreter's, so solution order (and
    therefore extracted row order) is identical.
    """

    async def asolve(
        self,
        goal: Formula,
        subst: Subst | None = None,
        store: ObjectStore | None = None,
    ):
        """Async twin of :meth:`Engine.solve`."""
        async for solution in self._asolve(
            goal, dict(subst or {}), store or self.store, 0
        ):
            yield solution

    async def _asolve(
        self, goal: Formula, subst: dict, state: ObjectStore, depth: int
    ):
        if depth > self.depth_limit:
            raise DepthLimitExceeded(
                "depth %d exceeded solving %r" % (self.depth_limit, goal)
            )
        if isinstance(goal, Serial):
            async for solution in self._asolve_serial(
                goal.parts, 0, subst, state, depth
            ):
                yield solution
        elif isinstance(goal, Choice):
            for part in goal.parts:
                async for solution in self._asolve(part, subst, state, depth + 1):
                    yield solution
        elif isinstance(goal, Naf):
            inner = self._asolve(goal.goal, subst, state, depth + 1)
            try:
                async for _ in inner:
                    return
            finally:
                await inner.aclose()
            yield subst, state
        elif isinstance(goal, (Ins, Del)):
            for solution in self._apply_update(
                goal, subst, state, insert=isinstance(goal, Ins)
            ):
                yield solution
        elif isinstance(goal, Pred):
            async for solution in self._asolve_pred(goal, subst, state, depth):
                yield solution
        else:
            raise TypeError("cannot solve %r" % (goal,))

    async def _asolve_serial(
        self,
        parts: tuple[Formula, ...],
        index: int,
        subst: dict,
        state: ObjectStore,
        depth: int,
    ):
        if index == len(parts):
            yield subst, state
            return
        async for mid_subst, mid_state in self._asolve(
            parts[index], subst, state, depth + 1
        ):
            async for solution in self._asolve_serial(
                parts, index + 1, mid_subst, mid_state, depth
            ):
                yield solution

    async def _asolve_pred(
        self, goal: Pred, subst: dict, state: ObjectStore, depth: int
    ):
        indicator = goal.indicator
        builtin = self._builtins.get(indicator)
        if builtin is not None:
            solutions = builtin(goal.args, subst, state)
            if hasattr(solutions, "__aiter__"):
                async for solution in solutions:
                    yield solution
            else:
                for solution in solutions:
                    yield solution
            return
        if indicator == ("isa", 2):
            for solution in state.query_isa(goal.args[0], goal.args[1], subst):
                yield solution, state
            return
        if indicator == ("attr", 3):
            for solution in state.query_attr(
                goal.args[0], goal.args[1], goal.args[2], subst
            ):
                yield solution, state
            return
        rules = self.program.rules_for(indicator)
        if not rules and not self.program.defines(indicator):
            raise UnknownPredicate("no rules or builtin for %s/%d" % indicator)
        for rule in rules:
            self._rename_counter += 1
            fresh = rule.rename(self._rename_counter)
            head_subst = self._unify_pred(goal, fresh.head, subst)
            if head_subst is None:
                continue
            async for solution in self._asolve(
                fresh.body, head_subst, state, depth + 1
            ):
                yield solution
