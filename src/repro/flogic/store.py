"""The F-logic object store: frames, class membership, and signatures.

F-logic "extends classical logic by making it possible to represent complex
objects on a par with traditional flat relations".  The store holds three
kinds of facts:

* ``isa(object, class)`` — class membership (``form01 : action``);
* ``sub(class, superclass)`` — the class hierarchy (``form <:: action``);
* ``attr(object, attribute, value)`` — attribute values; whether an
  attribute is scalar (``->``) or multi-valued (``->>``) is recorded in the
  class *signature*.

Stores are persistent (immutable): ``ins``/``delete`` return new stores
sharing structure with the old one.  That is what makes Transaction Logic's
backtracking over database states trivial — the interpreter simply keeps
references to earlier states.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from repro.flogic.terms import Subst, Term, Var, unify, walk


@dataclass(frozen=True)
class Signature:
    """Declared attribute of a class: ``cls[attr => result]`` (scalar) or
    ``cls[attr =>> result]`` (multi-valued)."""

    cls: str
    attr: str
    result: str
    scalar: bool = True


class SignatureError(Exception):
    """A scalar attribute received a second, different value."""


class ObjectStore:
    """An immutable collection of isa/sub/attr facts plus signatures."""

    def __init__(
        self,
        isa: frozenset[tuple[Any, str]] = frozenset(),
        sub: frozenset[tuple[str, str]] = frozenset(),
        attrs: frozenset[tuple[Any, str, Any]] = frozenset(),
        signatures: frozenset[Signature] = frozenset(),
    ) -> None:
        self._isa = isa
        self._sub = sub
        self._attrs = attrs
        self._signatures = signatures

    # -- construction --------------------------------------------------------

    def with_subclass(self, cls: str, superclass: str) -> "ObjectStore":
        return ObjectStore(
            self._isa, self._sub | {(cls, superclass)}, self._attrs, self._signatures
        )

    def with_signature(self, sig: Signature) -> "ObjectStore":
        return ObjectStore(self._isa, self._sub, self._attrs, self._signatures | {sig})

    def with_member(self, obj: Any, cls: str) -> "ObjectStore":
        return ObjectStore(
            self._isa | {(obj, cls)}, self._sub, self._attrs, self._signatures
        )

    def with_attr(self, obj: Any, attr: str, value: Any) -> "ObjectStore":
        """Add an attribute value, enforcing scalar signatures."""
        sig = self.signature_for(obj, attr)
        if sig is not None and sig.scalar:
            for existing in self.values(obj, attr):
                if existing != value:
                    raise SignatureError(
                        "scalar attribute %s of %r already holds %r"
                        % (attr, obj, existing)
                    )
        return ObjectStore(
            self._isa, self._sub, self._attrs | {(obj, attr, value)}, self._signatures
        )

    def without_attr(self, obj: Any, attr: str, value: Any) -> "ObjectStore":
        return ObjectStore(
            self._isa, self._sub, self._attrs - {(obj, attr, value)}, self._signatures
        )

    # -- class hierarchy ------------------------------------------------------

    def superclasses(self, cls: str) -> set[str]:
        """``cls`` plus all transitive superclasses."""
        closed = {cls}
        frontier = [cls]
        while frontier:
            current = frontier.pop()
            for sub, sup in self._sub:
                if sub == current and sup not in closed:
                    closed.add(sup)
                    frontier.append(sup)
        return closed

    def classes_of(self, obj: Any) -> set[str]:
        """All classes ``obj`` belongs to, closed under the hierarchy."""
        direct = {cls for member, cls in self._isa if member == obj}
        closed: set[str] = set()
        for cls in direct:
            closed |= self.superclasses(cls)
        return closed

    def is_member(self, obj: Any, cls: str) -> bool:
        return cls in self.classes_of(obj)

    # -- attribute access ------------------------------------------------------

    def values(self, obj: Any, attr: str) -> list[Any]:
        return [v for o, a, v in self._attrs if o == obj and a == attr]

    def value(self, obj: Any, attr: str) -> Any:
        """The single value of a scalar attribute; raises if absent/ambiguous."""
        found = self.values(obj, attr)
        if len(found) != 1:
            raise KeyError(
                "attribute %s of %r has %d values" % (attr, obj, len(found))
            )
        return found[0]

    def signature_for(self, obj: Any, attr: str) -> Signature | None:
        """The signature governing ``obj.attr``, if any class declares one."""
        classes = self.classes_of(obj)
        for sig in self._signatures:
            if sig.attr == attr and sig.cls in classes:
                return sig
        return None

    def signatures_of(self, cls: str) -> list[Signature]:
        wanted = self.superclasses(cls)
        return sorted(
            (s for s in self._signatures if s.cls in wanted),
            key=lambda s: (s.cls, s.attr),
        )

    # -- logical queries (used by the engine) -----------------------------------

    def query_isa(self, obj: Term, cls: Term, subst: Subst) -> Iterator[dict]:
        """Solve ``obj : cls`` — yields extended substitutions."""
        obj_w = walk(obj, subst)
        cls_w = walk(cls, subst)
        if not isinstance(obj_w, Var) and not isinstance(cls_w, Var):
            if self.is_member(obj_w, cls_w):
                yield dict(subst)
            return
        for member, direct_cls in sorted(self._isa, key=lambda f: (repr(f[0]), f[1])):
            for cls_name in sorted(self.superclasses(direct_cls)):
                one = unify(obj, member, subst)
                if one is None:
                    continue
                two = unify(cls, cls_name, one)
                if two is not None:
                    yield two

    def query_attr(self, obj: Term, attr: Term, value: Term, subst: Subst) -> Iterator[dict]:
        """Solve ``obj[attr -> value]`` — yields extended substitutions."""
        for o, a, v in sorted(self._attrs, key=lambda f: (repr(f[0]), f[1], repr(f[2]))):
            one = unify(obj, o, subst)
            if one is None:
                continue
            two = unify(attr, a, one)
            if two is None:
                continue
            three = unify(value, v, two)
            if three is not None:
                yield three

    # -- misc ---------------------------------------------------------------

    @property
    def fact_count(self) -> int:
        return len(self._isa) + len(self._attrs)

    @property
    def attr_fact_count(self) -> int:
        return len(self._attrs)

    def all_objects(self) -> set[Any]:
        objs = {o for o, _ in self._isa}
        objs |= {o for o, _, _ in self._attrs}
        return objs

    def describe(self, obj: Any) -> dict[str, list[Any]]:
        """All attributes of ``obj`` as a dict (testing/debugging aid)."""
        out: dict[str, list[Any]] = {}
        for o, a, v in self._attrs:
            if o == obj:
                out.setdefault(a, []).append(v)
        return out
